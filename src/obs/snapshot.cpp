#include "obs/snapshot.hpp"

#include <bit>
#include <cstring>

namespace dust::obs {

namespace {

// Little-endian primitives, mirroring the wire codec's but local to obs so
// the snapshot schema carries no dust_wire dependency (dust_wire links
// dust_obs, not the other way around).

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str16(const std::string& s) {
    const std::size_t n = s.size() > 0xFFFF ? 0xFFFF : s.size();
    u16(static_cast<std::uint16_t>(n));
    out_->insert(out_->end(), s.begin(), s.begin() + static_cast<long>(n));
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(data_[pos_ - 2] |
                                      (data_[pos_ - 1] << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str16() {
    const std::uint16_t n = u16();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }
  /// Count prefix with a minimum-bytes-per-element sanity bound, so a
  /// corrupt count fails fast instead of looping or ballooning a reserve.
  std::uint32_t count32(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (ok_ && min_element_bytes > 0 &&
        static_cast<std::uint64_t>(n) * min_element_bytes > size_ - pos_)
      ok_ = false;
    return ok_ ? n : 0;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

constexpr std::uint8_t kFlagFull = 0x01;

void put_span(Writer& w, const SpanRecord& span) {
  w.str16(span.name);
  w.str16(span.track);
  w.f64(span.wall_ms);
  w.i64(span.sim_start_ms);
  w.i64(span.sim_duration_ms);
  w.f64(span.wall_start_ms);
  w.u64(span.trace_id);
  w.u64(span.span_id);
  w.u64(span.parent_span_id);
}

SpanRecord get_span(Reader& r) {
  SpanRecord span;
  span.name = r.str16();
  span.track = r.str16();
  span.wall_ms = r.f64();
  span.sim_start_ms = r.i64();
  span.sim_duration_ms = r.i64();
  span.wall_start_ms = r.f64();
  span.trace_id = r.u64();
  span.span_id = r.u64();
  span.parent_span_id = r.u64();
  return span;
}

}  // namespace

SnapshotEncoder::SnapshotEncoder(const MetricRegistry& registry)
    : registry_(&registry) {
  span_buffer_.reserve(MetricRegistry::kMaxSpans);
}

void SnapshotEncoder::discover() {
  // The registry is append-only, so state index i always matches the i-th
  // registered metric of that kind; only the tail can be new.
  if (registry_->counter_count() > counters_.size()) {
    std::size_t index = 0;
    registry_->for_each_counter([&](const std::string& name,
                                    const Counter& metric) {
      if (index++ < counters_.size()) return;
      CounterState state;
      state.metric = &metric;
      state.name = name;
      counters_.push_back(std::move(state));
    });
  }
  if (registry_->gauge_count() > gauges_.size()) {
    std::size_t index = 0;
    registry_->for_each_gauge([&](const std::string& name,
                                  const Gauge& metric) {
      if (index++ < gauges_.size()) return;
      GaugeState state;
      state.metric = &metric;
      state.name = name;
      gauges_.push_back(std::move(state));
    });
  }
  if (registry_->histogram_count() > histograms_.size()) {
    std::size_t index = 0;
    registry_->for_each_histogram([&](const std::string& name,
                                      const Histogram& metric) {
      if (index++ < histograms_.size()) return;
      HistogramState state;
      state.metric = &metric;
      state.name = name;
      histograms_.push_back(std::move(state));
    });
  }
}

bool SnapshotEncoder::dirty() const {
  for (const CounterState& c : counters_)
    if (c.metric->value() != c.acked) return true;
  for (const GaugeState& g : gauges_)
    if (std::bit_cast<std::uint64_t>(g.metric->value()) != g.acked_bits)
      return true;
  // Every observe bumps the histogram count, so count alone decides.
  for (const HistogramState& h : histograms_)
    if (h.metric->count() != h.acked_count) return true;
  return registry_->spans_recorded() != acked_spans_;
}

bool SnapshotEncoder::encode(std::int64_t source_now_ms,
                             std::vector<std::uint8_t>& out) {
  // Discovery first: a brand-new metric is itself a change, but its state
  // starts at a zero baseline so the dirty check below still sees it (a
  // registered-but-never-touched metric correctly stays invisible).
  if (registry_->counter_count() > counters_.size() ||
      registry_->gauge_count() > gauges_.size() ||
      registry_->histogram_count() > histograms_.size())
    discover();
  if (!dirty()) return false;  // the hot-tick path: no frame, no allocation

  out.clear();
  Writer w(out);
  ++seq_;
  w.u8(kSnapshotVersion);
  w.u8(acked_seq_ == 0 ? kFlagFull : 0);
  w.u16(0);
  w.u64(seq_);
  w.u64(acked_seq_);
  w.i64(source_now_ms);

  // Definitions: every metric emitted below whose (kind, id, name) the
  // scraper has not acked yet. Re-sent until acked — the reply carrying the
  // first copy may have been shed.
  std::uint32_t def_count = 0;
  const std::size_t def_count_at = out.size();
  w.u32(0);  // patched below
  const auto put_def = [&](SnapshotKind kind, std::uint32_t id,
                           const std::string& name) {
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(id);
    w.str16(name);
    ++def_count;
  };
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    CounterState& c = counters_[i];
    if (c.metric->value() != c.acked && !c.def_acked) {
      put_def(SnapshotKind::kCounter, i, c.name);
      c.def_pending = true;
    }
  }
  for (std::uint32_t i = 0; i < gauges_.size(); ++i) {
    GaugeState& g = gauges_[i];
    if (std::bit_cast<std::uint64_t>(g.metric->value()) != g.acked_bits &&
        !g.def_acked) {
      put_def(SnapshotKind::kGauge, i, g.name);
      g.def_pending = true;
    }
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    HistogramState& h = histograms_[i];
    if (h.metric->count() != h.acked_count && !h.def_acked) {
      put_def(SnapshotKind::kHistogram, i, h.name);
      h.def_pending = true;
    }
  }
  out[def_count_at + 0] = static_cast<std::uint8_t>(def_count);
  out[def_count_at + 1] = static_cast<std::uint8_t>(def_count >> 8);
  out[def_count_at + 2] = static_cast<std::uint8_t>(def_count >> 16);
  out[def_count_at + 3] = static_cast<std::uint8_t>(def_count >> 24);

  // Counter deltas.
  std::uint32_t emitted = 0;
  std::size_t count_at = out.size();
  w.u32(0);
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    CounterState& c = counters_[i];
    const std::uint64_t value = c.metric->value();
    c.pending = value;
    if (value == c.acked) continue;
    w.u32(i);
    w.u64(value - c.acked);  // counters are monotonic; wrap is a reset
    ++emitted;
  }
  const auto patch_u32 = [&](std::size_t at, std::uint32_t v) {
    out[at + 0] = static_cast<std::uint8_t>(v);
    out[at + 1] = static_cast<std::uint8_t>(v >> 8);
    out[at + 2] = static_cast<std::uint8_t>(v >> 16);
    out[at + 3] = static_cast<std::uint8_t>(v >> 24);
  };
  patch_u32(count_at, emitted);

  // Gauge values (absolute — a gauge has no meaningful delta).
  emitted = 0;
  count_at = out.size();
  w.u32(0);
  for (std::uint32_t i = 0; i < gauges_.size(); ++i) {
    GaugeState& g = gauges_[i];
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(g.metric->value());
    g.pending_bits = bits;
    if (bits == g.acked_bits) continue;
    w.u32(i);
    w.u64(bits);
    ++emitted;
  }
  patch_u32(count_at, emitted);

  // Histogram deltas: count/sum plus only the buckets that moved.
  emitted = 0;
  count_at = out.size();
  w.u32(0);
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    HistogramState& h = histograms_[i];
    const std::uint64_t count = h.metric->count();
    const double sum = h.metric->sum();
    h.pending_count = count;
    h.pending_sum = sum;
    for (int b = 0; b < Histogram::kBuckets; ++b)
      h.pending_buckets[b] = h.metric->bucket_count(b);
    if (count == h.acked_count) continue;
    w.u32(i);
    w.u64(count - h.acked_count);
    w.f64(sum - h.acked_sum);
    w.f64(count > 0 ? h.metric->observed_min() : 0.0);
    w.f64(count > 0 ? h.metric->observed_max() : 0.0);
    std::uint16_t moved = 0;
    const std::size_t moved_at = out.size();
    w.u16(0);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.pending_buckets[b] == h.acked_buckets[b]) continue;
      w.u8(static_cast<std::uint8_t>(b));
      w.u64(h.pending_buckets[b] - h.acked_buckets[b]);
      ++moved;
    }
    out[moved_at + 0] = static_cast<std::uint8_t>(moved);
    out[moved_at + 1] = static_cast<std::uint8_t>(moved >> 8);
    ++emitted;
  }
  patch_u32(count_at, emitted);

  // Span tail: everything recorded since the acked baseline that the ring
  // still holds.
  span_buffer_.clear();
  pending_spans_ = registry_->copy_spans_since(acked_spans_, span_buffer_);
  w.u32(static_cast<std::uint32_t>(span_buffer_.size()));
  for (const SpanRecord& span : span_buffer_) put_span(w, span);
  return true;
}

void SnapshotEncoder::ack(std::uint64_t seq) {
  if (seq == 0 || seq != seq_ || seq == acked_seq_) return;
  for (CounterState& c : counters_) {
    c.acked = c.pending;
    c.def_acked = c.def_acked || c.def_pending;
    c.def_pending = false;
  }
  for (GaugeState& g : gauges_) {
    g.acked_bits = g.pending_bits;
    g.def_acked = g.def_acked || g.def_pending;
    g.def_pending = false;
  }
  for (HistogramState& h : histograms_) {
    h.acked_count = h.pending_count;
    h.acked_sum = h.pending_sum;
    std::memcpy(h.acked_buckets, h.pending_buckets, sizeof(h.acked_buckets));
    h.def_acked = h.def_acked || h.def_pending;
    h.def_pending = false;
  }
  acked_spans_ = pending_spans_;
  acked_seq_ = seq;
}

void SnapshotEncoder::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  seq_ = 0;
  acked_seq_ = 0;
  acked_spans_ = 0;
  pending_spans_ = 0;
}

bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                     SnapshotDelta& out) {
  out = SnapshotDelta{};
  Reader r(data, size);
  if (r.u8() != kSnapshotVersion) return false;
  const std::uint8_t flags = r.u8();
  if ((flags & ~kFlagFull) != 0) return false;
  out.full = (flags & kFlagFull) != 0;
  if (r.u16() != 0) return false;  // reserved must be zero
  out.seq = r.u64();
  out.base_seq = r.u64();
  out.source_now_ms = r.i64();
  if (!r.ok() || out.seq == 0) return false;
  if (out.full != (out.base_seq == 0)) return false;

  const std::uint32_t def_count = r.count32(1 + 4 + 2);
  out.defs.reserve(def_count);
  for (std::uint32_t i = 0; i < def_count && r.ok(); ++i) {
    SnapshotDelta::Def def;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(SnapshotKind::kHistogram))
      return false;
    def.kind = static_cast<SnapshotKind>(kind);
    def.id = r.u32();
    def.name = r.str16();
    out.defs.push_back(std::move(def));
  }

  const std::uint32_t counter_count = r.count32(4 + 8);
  out.counters.reserve(counter_count);
  for (std::uint32_t i = 0; i < counter_count && r.ok(); ++i) {
    SnapshotDelta::CounterDelta delta;
    delta.id = r.u32();
    delta.delta = r.u64();
    out.counters.push_back(delta);
  }

  const std::uint32_t gauge_count = r.count32(4 + 8);
  out.gauges.reserve(gauge_count);
  for (std::uint32_t i = 0; i < gauge_count && r.ok(); ++i) {
    SnapshotDelta::GaugeValue value;
    value.id = r.u32();
    value.value = r.f64();
    out.gauges.push_back(value);
  }

  const std::uint32_t hist_count = r.count32(4 + 8 + 8 + 8 + 8 + 2);
  out.histograms.reserve(hist_count);
  for (std::uint32_t i = 0; i < hist_count && r.ok(); ++i) {
    SnapshotDelta::HistogramDelta delta;
    delta.id = r.u32();
    delta.count_delta = r.u64();
    delta.sum_delta = r.f64();
    delta.min = r.f64();
    delta.max = r.f64();
    const std::uint16_t moved = r.u16();
    if (moved > Histogram::kBuckets) return false;
    delta.buckets.reserve(moved);
    for (std::uint16_t b = 0; b < moved && r.ok(); ++b) {
      SnapshotDelta::BucketDelta bucket;
      bucket.index = r.u8();
      if (bucket.index >= Histogram::kBuckets) return false;
      bucket.delta = r.u64();
      delta.buckets.push_back(bucket);
    }
    out.histograms.push_back(std::move(delta));
  }

  const std::uint32_t span_count = r.count32(2 + 2 + 8 * 7);
  out.spans.reserve(span_count);
  for (std::uint32_t i = 0; i < span_count && r.ok(); ++i)
    out.spans.push_back(get_span(r));

  return r.ok() && r.exhausted();
}

}  // namespace dust::obs
