#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace dust::obs {

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i].count;
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : buckets[i - 1].upper;
      const double upper = buckets[i].upper;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      // Clamp into the observed range so tiny samples don't report a
      // quantile beyond the true extremes.
      return std::clamp(lower + fraction * (upper - lower), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // also catches NaN
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1) => v <= 2^exp
  return std::clamp(exp - kMinExp, 0, kBuckets - 1);
}

double Histogram::bucket_upper(int index) noexcept {
  return std::ldexp(1.0, index + kMinExp);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    snap.min = snap.max = 0.0;
  } else {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  // Trim trailing empty buckets; keep leading ones so cumulative counts in
  // the Prometheus exporter stay simple.
  int last_nonzero = -1;
  std::uint64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    if (counts[i] > 0) last_nonzero = i;
  }
  snap.buckets.reserve(static_cast<std::size_t>(last_nonzero + 1));
  for (int i = 0; i <= last_nonzero; ++i)
    snap.buckets.push_back(BucketSnapshot{bucket_upper(i), counts[i]});
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const CounterSnapshot* RegistrySnapshot::find_counter(
    const std::string& name) const {
  for (const CounterSnapshot& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSnapshot* RegistrySnapshot::find_gauge(
    const std::string& name) const {
  for (const GaugeSnapshot& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const NamedHistogramSnapshot* RegistrySnapshot::find_histogram(
    const std::string& name) const {
  for (const NamedHistogramSnapshot& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

template <typename T>
T& MetricRegistry::find_or_create(std::vector<Entry<T>>& entries,
                                  const std::string& name) {
  for (Entry<T>& entry : entries)
    if (entry.name == name) return *entry.metric;
  entries.push_back(Entry<T>{name, std::make_unique<T>()});
  return *entries.back().metric;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return find_or_create(histograms_, name);
}

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const Entry<Counter>& entry : counters_)
    snap.counters.push_back(CounterSnapshot{entry.name, entry.metric->value()});
  snap.gauges.reserve(gauges_.size());
  for (const Entry<Gauge>& entry : gauges_)
    snap.gauges.push_back(GaugeSnapshot{entry.name, entry.metric->value()});
  snap.histograms.reserve(histograms_.size());
  for (const Entry<Histogram>& entry : histograms_) {
    NamedHistogramSnapshot h;
    static_cast<HistogramSnapshot&>(h) = entry.metric->snapshot();
    h.name = entry.name;
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  // Ring buffer -> chronological order.
  snap.spans.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i)
    snap.spans.push_back(spans_[(span_head_ + i) % spans_.size()]);
  snap.spans_recorded = spans_recorded_.load(std::memory_order_relaxed);
  return snap;
}

void MetricRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Entry<Counter>& entry : counters_) entry.metric->reset();
  for (Entry<Gauge>& entry : gauges_) entry.metric->reset();
  for (Entry<Histogram>& entry : histograms_) entry.metric->reset();
  spans_.clear();
  span_head_ = 0;
  spans_recorded_.store(0, std::memory_order_relaxed);
}

void MetricRegistry::record_span(SpanRecord record) {
  std::lock_guard lock(mutex_);
  if (spans_.size() < kMaxSpans) {
    spans_.push_back(std::move(record));
  } else {
    spans_[span_head_] = std::move(record);
    span_head_ = (span_head_ + 1) % kMaxSpans;
  }
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t MetricRegistry::copy_spans_since(
    std::uint64_t after_index, std::vector<SpanRecord>& out) const {
  std::lock_guard lock(mutex_);
  const std::uint64_t total = spans_recorded_.load(std::memory_order_relaxed);
  if (total <= after_index) return total;
  std::uint64_t available = total - after_index;
  if (available > spans_.size()) available = spans_.size();  // ring evicted
  // i-th oldest surviving span sits at (span_head_ + i) % size.
  const std::size_t skip = spans_.size() - static_cast<std::size_t>(available);
  for (std::size_t i = skip; i < spans_.size(); ++i)
    out.push_back(spans_[(span_head_ + i) % spans_.size()]);
  return total;
}

std::size_t MetricRegistry::counter_count() const {
  std::lock_guard lock(mutex_);
  return counters_.size();
}

std::size_t MetricRegistry::gauge_count() const {
  std::lock_guard lock(mutex_);
  return gauges_.size();
}

std::size_t MetricRegistry::histogram_count() const {
  std::lock_guard lock(mutex_);
  return histograms_.size();
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace dust::obs
