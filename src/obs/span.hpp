// Lightweight tracing on top of the metric registry.
//
// ScopedTimer is the zero-ceremony primitive: it observes its wall-clock
// lifetime (milliseconds) into a Histogram the caller already holds.
//
// Span is the named, registry-recorded form. On destruction it observes
// `<name>_wall_ms` (and, when a virtual clock is attached, `<name>_sim_ms`)
// histograms in the registry and appends a SpanRecord to the registry's
// bounded trace buffer. The virtual clock is any callable returning the
// current virtual time in ms — pass `[&]{ return sim.now(); }` to trace
// sim::Simulator time without obs depending on dust_sim. Wall time and
// virtual time deliberately coexist: in the discrete-event testbed a
// placement cycle costs real CPU (wall) while the protocol around it runs
// on virtual time; both are needed to reason about overhead (DESIGN.md).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace dust::obs {

/// Observes the timer's wall-clock lifetime into `hist` (milliseconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept : hist_(&hist) {}
  ~ScopedTimer() { hist_->observe(timer_.millis()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed wall milliseconds so far (the destructor observes the final value).
  [[nodiscard]] double elapsed_ms() const noexcept { return timer_.millis(); }

 private:
  Histogram* hist_;
  util::Timer timer_;
};

/// Returns the current virtual time in milliseconds (e.g. Simulator::now).
using VirtualClock = std::function<std::int64_t()>;

class Span {
 public:
  Span(MetricRegistry& registry, std::string name)
      : Span(registry, std::move(name), VirtualClock{}) {}

  Span(MetricRegistry& registry, std::string name, VirtualClock clock);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  MetricRegistry* registry_;  ///< null when obs was disabled at construction
  std::string name_;
  VirtualClock clock_;
  std::int64_t sim_start_ms_ = -1;
  util::Timer timer_;
};

}  // namespace dust::obs
