// Lightweight tracing on top of the metric registry.
//
// ScopedTimer is the zero-ceremony primitive: it observes its wall-clock
// lifetime (milliseconds) into a Histogram the caller already holds.
//
// Span is the named, registry-recorded form. On destruction it observes
// `<name>_wall_ms` (and, when a virtual clock is attached, `<name>_sim_ms`)
// histograms in the registry and appends a SpanRecord to the registry's
// bounded trace buffer. The virtual clock is any callable returning the
// current virtual time in ms — pass `[&]{ return sim.now(); }` to trace
// sim::Simulator time without obs depending on dust_sim. Wall time and
// virtual time deliberately coexist: in the discrete-event testbed a
// placement cycle costs real CPU (wall) while the protocol around it runs
// on virtual time; both are needed to reason about overhead (DESIGN.md).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace dust::obs {

/// Wall-clock milliseconds since the process trace epoch (first call). Used
/// as the Perfetto wall-time axis so spans from different layers line up.
[[nodiscard]] double wall_now_ms() noexcept;

/// Observes the timer's wall-clock lifetime into `hist` (milliseconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept : hist_(&hist) {}
  ~ScopedTimer() { hist_->observe(timer_.millis()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed wall milliseconds so far (the destructor observes the final value).
  [[nodiscard]] double elapsed_ms() const noexcept { return timer_.millis(); }

 private:
  Histogram* hist_;
  util::Timer timer_;
};

/// Returns the current virtual time in milliseconds (e.g. Simulator::now).
using VirtualClock = std::function<std::int64_t()>;

/// Causal/track options for a Span. Passing SpanOptions makes the span
/// traced: it allocates trace/span IDs (inheriting `parent`'s trace, or
/// rooting a new one when parent is invalid) and records them in the
/// SpanRecord so assemble_traces() can rebuild the tree.
struct SpanOptions {
  TraceContext parent{};  ///< invalid → this span roots a new trace
  std::string track;      ///< timeline row; "" = unlabelled
};

class Span {
 public:
  Span(MetricRegistry& registry, std::string name)
      : Span(registry, std::move(name), VirtualClock{}) {}

  Span(MetricRegistry& registry, std::string name, VirtualClock clock)
      : Span(registry, std::move(name), std::move(clock), SpanOptions{},
             /*traced=*/false) {}

  Span(MetricRegistry& registry, std::string name, VirtualClock clock,
       SpanOptions options)
      : Span(registry, std::move(name), std::move(clock), std::move(options),
             /*traced=*/true) {}

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's identity, for propagating causality (e.g. into a protocol
  /// message). Invalid ({0,0}) when the span is untraced or obs is disabled.
  [[nodiscard]] TraceContext context() const noexcept { return context_; }

 private:
  Span(MetricRegistry& registry, std::string name, VirtualClock clock,
       SpanOptions options, bool traced);

  MetricRegistry* registry_;  ///< null when obs was disabled at construction
  std::string name_;
  VirtualClock clock_;
  SpanOptions options_;
  TraceContext context_{};       ///< {0,0} when untraced
  std::uint64_t parent_id_ = 0;
  std::int64_t sim_start_ms_ = -1;
  double wall_start_ms_ = -1.0;
  util::Timer timer_;
};

/// Record an instantaneous traced event span (duration 0) and return its
/// context for downstream propagation. This is the primitive protocol hops
/// use ("stat" sent, "offload_ack" sent, ...): the event is a point on the
/// sim timeline, not a scope. No histograms are observed (a zero duration
/// carries no latency information). Returns an invalid context when obs is
/// disabled — propagating it is harmless, downstream records nothing either.
TraceContext record_instant(MetricRegistry& registry, std::string name,
                            std::string track, const TraceContext& parent,
                            std::int64_t sim_now_ms = -1);

}  // namespace dust::obs
