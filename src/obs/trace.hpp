// Causal trace identity for dust::obs v2 (DESIGN.md §10).
//
// A TraceContext names one causal chain (trace_id) and the position inside
// it (span_id). Protocol messages in core::messages carry a TraceContext so
// the receiver can parent its own spans under the sender's — that is what
// lets one offload (STAT → solve → Offload-Request → Offload-ACK → REP) be
// reconstructed as a single span tree across manager, clients, and the
// simulated transport.
//
// This header is deliberately tiny (no registry, no strings) so that
// core/messages.hpp can embed a TraceContext without pulling in the metric
// machinery. IDs come from one process-wide atomic counter: a root span's
// span_id doubles as its trace_id, so a valid context always has
// trace_id != 0. Within the single-threaded simulator, allocation order —
// and therefore every ID — is deterministic for a fixed scenario.
#pragma once

#include <cstdint>

namespace dust::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = untraced
  std::uint64_t span_id = 0;   ///< the span that caused what carries this

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id;
  }
};

/// Allocate a fresh span id (never 0).
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// Start a new trace: a context whose trace_id == span_id (a root).
[[nodiscard]] TraceContext new_trace() noexcept;

/// Child context of `parent`: same trace, fresh span id. A context that is
/// not valid() roots a new trace instead, so propagation code never has to
/// branch on whether the upstream hop was traced.
[[nodiscard]] TraceContext child_of(const TraceContext& parent) noexcept;

/// Reset the ID counter (tests only — makes allocation order assertable).
void reset_trace_ids() noexcept;

/// Move the ID counter into a per-process range. Every process starts its
/// counter at 1, so spans recorded by different daemons would collide on
/// span_id when the fleet aggregator stitches them into one trace; daemons
/// call this once at startup with a process-distinct seed (a hash of the
/// node name) to give each process a disjoint 2^40-id block. A no-op when
/// seed maps to block 0, preserving single-process determinism.
void seed_span_ids(std::uint64_t seed) noexcept;

}  // namespace dust::obs
