#include "obs/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/table.hpp"

namespace dust::obs {

namespace {

// Same formatting rules as obs/export.cpp: compact, no inf/nan literals.
std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

std::string label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

Aggregator::ApplyResult Aggregator::apply(const std::string& node,
                                          const SnapshotDelta& delta,
                                          std::int64_t now_ms,
                                          std::size_t encoded_bytes) {
  NodeState& state = nodes_[node];
  if (delta.full) {
    // A full snapshot restates everything from a zero baseline: drop the
    // metric state (spans are a stream and survive — dedup below handles
    // the re-sent tail).
    state.counter_names.clear();
    state.gauge_names.clear();
    state.hist_names.clear();
    state.counters.clear();
    state.gauges.clear();
    state.histograms.clear();
  } else if (delta.base_seq != state.status.applied_seq) {
    // This delta was diffed against a baseline we do not hold (our ack got
    // lost, or we restarted). Applying it would double-count or drop
    // changes; reject and let the scraper request a full snapshot.
    ++state.status.snapshots_rejected;
    return ApplyResult::kRejected;
  }

  for (const SnapshotDelta::Def& def : delta.defs) {
    switch (def.kind) {
      case SnapshotKind::kCounter:
        state.counter_names[def.id] = def.name;
        break;
      case SnapshotKind::kGauge:
        state.gauge_names[def.id] = def.name;
        break;
      case SnapshotKind::kHistogram:
        state.hist_names[def.id] = def.name;
        break;
    }
  }

  // Every referenced id must have a definition by now (defs are re-sent
  // until acked, and we only ack what we applied). A miss means the stream
  // is inconsistent — reject so recovery goes through a full snapshot.
  for (const SnapshotDelta::CounterDelta& c : delta.counters)
    if (state.counter_names.find(c.id) == state.counter_names.end()) {
      ++state.status.snapshots_rejected;
      return ApplyResult::kRejected;
    }
  for (const SnapshotDelta::GaugeValue& g : delta.gauges)
    if (state.gauge_names.find(g.id) == state.gauge_names.end()) {
      ++state.status.snapshots_rejected;
      return ApplyResult::kRejected;
    }
  for (const SnapshotDelta::HistogramDelta& h : delta.histograms)
    if (state.hist_names.find(h.id) == state.hist_names.end()) {
      ++state.status.snapshots_rejected;
      return ApplyResult::kRejected;
    }

  for (const SnapshotDelta::CounterDelta& c : delta.counters)
    state.counters[state.counter_names[c.id]] += c.delta;
  for (const SnapshotDelta::GaugeValue& g : delta.gauges)
    state.gauges[state.gauge_names[g.id]] = g.value;
  for (const SnapshotDelta::HistogramDelta& h : delta.histograms) {
    HistState& hist = state.histograms[state.hist_names[h.id]];
    const bool was_empty = hist.count == 0;
    hist.count += h.count_delta;
    hist.sum += h.sum_delta;
    if (h.count_delta > 0) {
      hist.min = was_empty ? h.min : std::min(hist.min, h.min);
      hist.max = was_empty ? h.max : std::max(hist.max, h.max);
    }
    for (const SnapshotDelta::BucketDelta& bucket : h.buckets)
      hist.buckets[bucket.index] += bucket.delta;
  }

  merge_spans(node, state, delta.spans);

  state.status.applied_seq = delta.seq;
  state.status.last_update_ms = now_ms;
  state.status.source_now_ms = delta.source_now_ms;
  ++state.status.snapshots_applied;
  state.status.bytes_received += encoded_bytes;
  return ApplyResult::kApplied;
}

void Aggregator::merge_spans(const std::string& node, NodeState& state,
                             const std::vector<SpanRecord>& spans) {
  for (const SpanRecord& span : spans) {
    // Re-sent tails (unacked snapshot, or a full after a reject) repeat
    // spans we already merged; span ids are process-unique, so they dedup.
    if (span.span_id != 0 && !state.seen_span_ids.insert(span.span_id).second)
      continue;
    SpanRecord merged = span;
    merged.track =
        node + "/" + (merged.track.empty() ? "untracked" : merged.track);
    spans_.push_back(std::move(merged));
    ++state.status.spans_merged;
  }
  if (spans_.size() > kMaxFleetSpans)
    spans_.erase(spans_.begin(),
                 spans_.begin() +
                     static_cast<long>(spans_.size() - kMaxFleetSpans));
}

void Aggregator::ingest_local(const std::string& node,
                              const MetricRegistry& registry,
                              std::int64_t now_ms) {
  LocalFeed& feed = local_feeds_[node];
  if (!feed.encoder)
    feed.encoder = std::make_unique<SnapshotEncoder>(registry);
  if (!feed.encoder->encode(now_ms, local_buffer_)) return;  // nothing new
  SnapshotDelta delta;
  if (!decode_snapshot(local_buffer_.data(), local_buffer_.size(), delta))
    return;  // cannot happen for our own encoder; stay defensive
  if (apply(node, delta, now_ms, local_buffer_.size()) ==
      ApplyResult::kApplied) {
    feed.encoder->ack(feed.encoder->last_seq());
  } else {
    feed.encoder->reset();  // next call re-sends a full snapshot
  }
}

std::vector<std::string> Aggregator::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, state] : nodes_) out.push_back(name);
  return out;
}

const FleetNodeStatus* Aggregator::status(const std::string& node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second.status;
}

std::int64_t Aggregator::staleness_ms(const std::string& node,
                                      std::int64_t now_ms) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.status.last_update_ms < 0) return -1;
  return now_ms - it->second.status.last_update_ms;
}

std::uint64_t Aggregator::counter_value(const std::string& node,
                                        const std::string& name) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  auto metric = it->second.counters.find(name);
  return metric == it->second.counters.end() ? 0 : metric->second;
}

std::uint64_t Aggregator::fleet_counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [node, state] : nodes_) {
    auto metric = state.counters.find(name);
    if (metric != state.counters.end()) total += metric->second;
  }
  return total;
}

double Aggregator::gauge_value(const std::string& node,
                               const std::string& name) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0.0;
  auto metric = it->second.gauges.find(name);
  return metric == it->second.gauges.end() ? 0.0 : metric->second;
}

double Aggregator::fleet_gauge_sum(const std::string& name) const {
  double total = 0.0;
  for (const auto& [node, state] : nodes_) {
    auto metric = state.gauges.find(name);
    if (metric != state.gauges.end()) total += metric->second;
  }
  return total;
}

double Aggregator::fleet_gauge_max(const std::string& name) const {
  double best = 0.0;
  bool any = false;
  for (const auto& [node, state] : nodes_) {
    auto metric = state.gauges.find(name);
    if (metric == state.gauges.end()) continue;
    best = any ? std::max(best, metric->second) : metric->second;
    any = true;
  }
  return best;
}

HistogramSnapshot Aggregator::fleet_histogram(const std::string& name) const {
  HistogramSnapshot out;
  std::uint64_t buckets[Histogram::kBuckets] = {};
  bool any = false;
  for (const auto& [node, state] : nodes_) {
    auto metric = state.histograms.find(name);
    if (metric == state.histograms.end() || metric->second.count == 0)
      continue;
    const HistState& hist = metric->second;
    out.count += hist.count;
    out.sum += hist.sum;
    out.min = any ? std::min(out.min, hist.min) : hist.min;
    out.max = any ? std::max(out.max, hist.max) : hist.max;
    any = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) buckets[i] += hist.buckets[i];
  }
  int last_nonzero = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i)
    if (buckets[i] > 0) last_nonzero = i;
  out.buckets.reserve(static_cast<std::size_t>(last_nonzero + 1));
  for (int i = 0; i <= last_nonzero; ++i)
    out.buckets.push_back(BucketSnapshot{Histogram::bucket_upper(i), buckets[i]});
  return out;
}

RegistrySnapshot Aggregator::trace_snapshot() const {
  RegistrySnapshot snap;
  snap.spans = spans_;
  snap.spans_recorded = spans_.size();
  return snap;
}

void Aggregator::write_prometheus(std::ostream& os) const {
  // Families in sorted order, one # TYPE line each, one labeled series per
  // node that has the metric. std::map keeps both levels deterministic.
  std::map<std::string, std::map<std::string, std::uint64_t>> counters;
  std::map<std::string, std::map<std::string, double>> gauges;
  std::map<std::string, std::map<std::string, const HistState*>> histograms;
  for (const auto& [node, state] : nodes_) {
    for (const auto& [name, value] : state.counters)
      counters[name][node] = value;
    for (const auto& [name, value] : state.gauges) gauges[name][node] = value;
    for (const auto& [name, hist] : state.histograms)
      histograms[name][node] = &hist;
  }

  for (const auto& [name, series] : counters) {
    os << "# TYPE " << name << " counter\n";
    for (const auto& [node, value] : series)
      os << name << "{node=\"" << label_escape(node) << "\"} " << value
         << "\n";
  }
  for (const auto& [name, series] : gauges) {
    os << "# TYPE " << name << " gauge\n";
    for (const auto& [node, value] : series)
      os << name << "{node=\"" << label_escape(node) << "\"} "
         << number(value) << "\n";
  }
  for (const auto& [name, series] : histograms) {
    os << "# TYPE " << name << " histogram\n";
    for (const auto& [node, hist] : series) {
      const std::string label = "node=\"" + label_escape(node) + "\"";
      std::uint64_t cumulative = 0;
      int last_nonzero = -1;
      for (int i = 0; i < Histogram::kBuckets; ++i)
        if (hist->buckets[i] > 0) last_nonzero = i;
      for (int i = 0; i <= last_nonzero; ++i) {
        cumulative += hist->buckets[i];
        os << name << "_bucket{" << label << ",le=\""
           << number(Histogram::bucket_upper(i)) << "\"} " << cumulative
           << "\n";
      }
      os << name << "_bucket{" << label << ",le=\"+Inf\"} " << hist->count
         << "\n";
      os << name << "_sum{" << label << "} " << number(hist->sum) << "\n";
      os << name << "_count{" << label << "} " << hist->count << "\n";
    }
  }
  // Interpolated tail quantiles per (histogram, node) — the log buckets
  // make these cheap, and fleet dashboards want tails, not means.
  for (const auto& [name, series] : histograms) {
    os << "# TYPE " << name << "_quantile gauge\n";
    for (const auto& [node, hist] : series) {
      HistogramSnapshot snap;
      snap.count = hist->count;
      snap.sum = hist->sum;
      snap.min = hist->min;
      snap.max = hist->max;
      int last_nonzero = -1;
      for (int i = 0; i < Histogram::kBuckets; ++i)
        if (hist->buckets[i] > 0) last_nonzero = i;
      for (int i = 0; i <= last_nonzero; ++i)
        snap.buckets.push_back(
            BucketSnapshot{Histogram::bucket_upper(i), hist->buckets[i]});
      const std::string label = "node=\"" + label_escape(node) + "\"";
      for (const double q : {0.5, 0.9, 0.99})
        os << name << "_quantile{" << label << ",quantile=\"" << number(q)
           << "\"} " << number(snap.quantile(q)) << "\n";
    }
  }
  // Scrape-plane health as first-class series.
  os << "# TYPE dust_obs_fleet_scrape_age_ms gauge\n";
  for (const auto& [node, state] : nodes_)
    os << "dust_obs_fleet_scrape_age_ms{node=\"" << label_escape(node)
       << "\"} " << state.status.last_update_ms << "\n";
  os << "# TYPE dust_obs_fleet_snapshots_applied_total counter\n";
  for (const auto& [node, state] : nodes_)
    os << "dust_obs_fleet_snapshots_applied_total{node=\""
       << label_escape(node) << "\"} " << state.status.snapshots_applied
       << "\n";
  os << "# TYPE dust_obs_fleet_snapshot_bytes_total counter\n";
  for (const auto& [node, state] : nodes_)
    os << "dust_obs_fleet_snapshot_bytes_total{node=\"" << label_escape(node)
       << "\"} " << state.status.bytes_received << "\n";
}

void Aggregator::write_jsonl(std::ostream& os) const {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(static_cast<unsigned char>(ch) < 0x20 ? ' ' : ch);
    }
    return out;
  };
  for (const auto& [node, state] : nodes_) {
    os << "{\"node\":\"" << escape(node)
       << "\",\"type\":\"status\",\"applied_seq\":" << state.status.applied_seq
       << ",\"last_update_ms\":" << state.status.last_update_ms
       << ",\"snapshots_applied\":" << state.status.snapshots_applied
       << ",\"snapshots_rejected\":" << state.status.snapshots_rejected
       << ",\"bytes_received\":" << state.status.bytes_received
       << ",\"spans_merged\":" << state.status.spans_merged << "}\n";
    for (const auto& [name, value] : state.counters)
      os << "{\"node\":\"" << escape(node) << "\",\"name\":\"" << escape(name)
         << "\",\"type\":\"counter\",\"value\":" << value << "}\n";
    for (const auto& [name, value] : state.gauges)
      os << "{\"node\":\"" << escape(node) << "\",\"name\":\"" << escape(name)
         << "\",\"type\":\"gauge\",\"value\":" << number(value) << "}\n";
    for (const auto& [name, hist] : state.histograms)
      os << "{\"node\":\"" << escape(node) << "\",\"name\":\"" << escape(name)
         << "\",\"type\":\"histogram\",\"count\":" << hist.count
         << ",\"sum\":" << number(hist.sum) << ",\"min\":" << number(hist.min)
         << ",\"max\":" << number(hist.max) << "}\n";
  }
}

void Aggregator::write_top(std::ostream& os, std::int64_t now_ms,
                           std::size_t max_rows) const {
  util::Table nodes_table("fleet nodes (" + std::to_string(nodes_.size()) +
                          " scraped, " + std::to_string(spans_.size()) +
                          " spans merged)");
  nodes_table.set_precision(0).header(
      {"node", "seq", "applied", "rejected", "bytes", "stale_ms", "spans"});
  for (const auto& [node, state] : nodes_) {
    const FleetNodeStatus& s = state.status;
    nodes_table.row({node, static_cast<std::int64_t>(s.applied_seq),
                     static_cast<std::int64_t>(s.snapshots_applied),
                     static_cast<std::int64_t>(s.snapshots_rejected),
                     static_cast<std::int64_t>(s.bytes_received),
                     staleness_ms(node, now_ms),
                     static_cast<std::int64_t>(s.spans_merged)});
  }
  nodes_table.print(os);
  os << "\n";

  // Largest fleet counters: the metrics currently dominating the run.
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [node, state] : nodes_)
    for (const auto& [name, value] : state.counters) totals[name] += value;
  std::vector<std::pair<std::string, std::uint64_t>> ranked(totals.begin(),
                                                            totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  util::Table counters_table("fleet counters (top " +
                             std::to_string(std::min(max_rows, ranked.size())) +
                             " of " + std::to_string(ranked.size()) + ")");
  counters_table.set_precision(0).header({"counter", "fleet total"});
  for (std::size_t i = 0; i < ranked.size() && i < max_rows; ++i)
    counters_table.row(
        {ranked[i].first, static_cast<std::int64_t>(ranked[i].second)});
  counters_table.print(os);
  os << "\n";

  std::map<std::string, double> gauge_sums;
  std::map<std::string, const HistState*> hist_any;
  for (const auto& [node, state] : nodes_) {
    for (const auto& [name, value] : state.gauges) gauge_sums[name] += value;
    for (const auto& [name, hist] : state.histograms) hist_any[name] = &hist;
  }
  if (!gauge_sums.empty()) {
    util::Table gauges_table("fleet gauges (sum over nodes)");
    gauges_table.set_precision(3).header({"gauge", "fleet sum"});
    std::size_t shown = 0;
    for (const auto& [name, value] : gauge_sums) {
      if (shown++ >= max_rows) break;
      gauges_table.row({name, value});
    }
    gauges_table.print(os);
    os << "\n";
  }
  if (!hist_any.empty()) {
    util::Table hist_table("fleet histograms (merged across nodes)");
    hist_table.set_precision(3).header({"histogram", "count", "p50", "p99"});
    std::size_t shown = 0;
    for (const auto& [name, unused] : hist_any) {
      if (shown++ >= max_rows) break;
      const HistogramSnapshot merged = fleet_histogram(name);
      hist_table.row({name, static_cast<std::int64_t>(merged.count),
                      merged.quantile(0.5), merged.quantile(0.99)});
    }
    hist_table.print(os);
  }
}

FleetWatchdog::FleetWatchdog(FleetWatchdogConfig config,
                             MetricRegistry& registry)
    : config_(std::move(config)),
      registry_(&registry),
      alerts_total_(&registry.counter("dust_obs_fleet_alerts_total")) {}

void FleetWatchdog::raise(std::vector<FleetAlert>& out, std::string rule,
                          std::string node, std::string message, double value,
                          std::int64_t now_ms) {
  alerts_total_->inc();
  registry_->counter("dust_obs_fleet_alert_" + rule + "_total").inc();
  ++alerts_raised_;
  out.push_back(FleetAlert{std::move(rule), std::move(node),
                           std::move(message), value, now_ms});
}

std::vector<FleetAlert> FleetWatchdog::evaluate(const Aggregator& aggregator,
                                                std::int64_t now_ms) {
  std::vector<FleetAlert> alerts;
  if (!enabled()) return alerts;

  // --- node-silent --------------------------------------------------------
  if (config_.scrape_gap_ms > 0 && primed_) {
    for (const std::string& node : aggregator.nodes()) {
      const std::int64_t age = aggregator.staleness_ms(node, now_ms);
      if (age > config_.scrape_gap_ms) {
        std::ostringstream msg;
        msg << "node '" << node << "' last snapshot " << age
            << " ms ago (limit " << config_.scrape_gap_ms
            << " ms) — scrapes are not coming back";
        raise(alerts, "node-silent", node, msg.str(),
              static_cast<double>(age), now_ms);
      }
    }
  }

  // --- fleet-undeclared-loss ---------------------------------------------
  if (config_.check_undeclared_loss) {
    const std::uint64_t undeclared = aggregator.fleet_counter_total(
        "dust_dataplane_undeclared_gap_batches_total");
    if (undeclared < undeclared_seen_) {
      undeclared_seen_ = undeclared;  // a node's registry was reset
    } else {
      const std::uint64_t grew = undeclared - undeclared_seen_;
      undeclared_seen_ = undeclared;
      if (primed_ && grew > 0) {
        std::ostringstream msg;
        msg << grew << " undeclared gap batch(es) appeared fleet-wide — "
            << "telemetry was lost without a degradation announcement";
        raise(alerts, "fleet-undeclared-loss", "", msg.str(),
              static_cast<double>(grew), now_ms);
      }
    }
  }

  // --- fleet-distrust-spike ----------------------------------------------
  const double distrusted =
      aggregator.fleet_gauge_sum("dust_core_distrusted_nodes");
  if (primed_ && distrusted > config_.distrusted_nodes_limit) {
    std::ostringstream msg;
    msg << distrusted << " node(s) distrusted across the fleet (limit "
        << config_.distrusted_nodes_limit << ")";
    raise(alerts, "fleet-distrust-spike", "", msg.str(), distrusted, now_ms);
  }

  // --- fleet-tail-latency -------------------------------------------------
  if (!config_.tail_histogram.empty() && config_.tail_limit_ms > 0.0) {
    const HistogramSnapshot total =
        aggregator.fleet_histogram(config_.tail_histogram);
    if (total.count < tail_cursor_.count) {
      tail_cursor_ = {};  // registry reset somewhere; resync below
    }
    // Windowed histogram: bucket deltas since the previous evaluation, so
    // the quantile tracks *recent* tail latency, not the lifetime mix.
    HistogramSnapshot window;
    window.count = total.count - tail_cursor_.count;
    window.sum = total.sum - tail_cursor_.sum;
    // total.buckets is dense from index 0, so position == bucket index.
    std::uint64_t totals[Histogram::kBuckets] = {};
    for (std::size_t i = 0;
         i < total.buckets.size() && i < Histogram::kBuckets; ++i)
      totals[i] = total.buckets[i].count;
    int last_nonzero = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t delta = totals[i] - tail_cursor_.buckets[i];
      if (delta > 0) last_nonzero = i;
    }
    window.min = 0.0;
    window.max =
        last_nonzero >= 0 ? Histogram::bucket_upper(last_nonzero) : 0.0;
    for (int i = 0; i <= last_nonzero; ++i)
      window.buckets.push_back(BucketSnapshot{
          Histogram::bucket_upper(i), totals[i] - tail_cursor_.buckets[i]});
    tail_cursor_.count = total.count;
    tail_cursor_.sum = total.sum;
    for (int i = 0; i < Histogram::kBuckets; ++i)
      tail_cursor_.buckets[i] = totals[i];

    if (primed_ && window.count >= config_.min_tail_samples) {
      const double tail = window.quantile(config_.tail_quantile);
      if (tail > config_.tail_limit_ms) {
        std::ostringstream msg;
        msg << config_.tail_histogram << " p"
            << static_cast<int>(config_.tail_quantile * 100.0) << " = "
            << tail << " ms exceeds " << config_.tail_limit_ms << " ms ("
            << window.count << " samples in window)";
        raise(alerts, "fleet-tail-latency", "", msg.str(), tail, now_ms);
      }
    }
  }

  primed_ = true;
  return alerts;
}

}  // namespace dust::obs
