// Compact binary metric-snapshot codec for the fleet observability plane
// (DESIGN.md §15). A SnapshotEncoder turns one MetricRegistry into a stream
// of *deltas* against the last baseline the scraper acknowledged:
//
//   - metric names are interned: each metric gets a small integer id on
//     first emission and a (kind, id, name) definition that is re-sent until
//     the scraper acks a snapshot containing it — after that only the id
//     crosses the wire;
//   - counters ship u64 deltas, gauges ship raw IEEE-754 bits when the bit
//     pattern changed, histograms ship per-bucket-index count deltas plus
//     count/sum deltas — a metric that did not move since the acked
//     baseline costs zero bytes;
//   - completed spans ride as an optional tail, keyed off the registry's
//     monotonic spans_recorded index, so cross-process traces can be
//     stitched by the aggregator.
//
// The ack protocol tolerates shed replies: snapshots travel at kLow QoS
// (DUST dogfoods its own telemetry tier) and may be dropped at a full
// queue, so the encoder only advances its baseline when the *scraper* echos
// the last sent seq back in the next scrape. An unacked snapshot is simply
// re-computed against the old baseline — deltas are cumulative-since-ack,
// never applied twice, never lost.
//
// This header lives in dust::obs (not dust::wire) so the schema has no wire
// dependency; the kObsSnapshot frame carries the encoded payload as opaque
// bytes. decode_snapshot() is fully bounds-checked and never throws — it is
// fuzzed alongside the wire decoder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dust::obs {

inline constexpr std::uint8_t kSnapshotVersion = 1;

/// Metric kind tags inside definitions (u8 on the wire).
enum class SnapshotKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One decoded snapshot payload, before merging into an Aggregator.
struct SnapshotDelta {
  std::uint64_t seq = 0;       ///< this snapshot's sequence number
  std::uint64_t base_seq = 0;  ///< baseline it was diffed against (0 = full)
  bool full = false;           ///< receiver must reset its node state first
  std::int64_t source_now_ms = 0;  ///< responder clock at encode time

  struct Def {
    SnapshotKind kind = SnapshotKind::kCounter;
    std::uint32_t id = 0;
    std::string name;
  };
  struct CounterDelta {
    std::uint32_t id = 0;
    std::uint64_t delta = 0;
  };
  struct GaugeValue {
    std::uint32_t id = 0;
    double value = 0.0;
  };
  struct BucketDelta {
    std::uint8_t index = 0;  ///< log-bucket index, < Histogram::kBuckets
    std::uint64_t delta = 0;
  };
  struct HistogramDelta {
    std::uint32_t id = 0;
    std::uint64_t count_delta = 0;
    double sum_delta = 0.0;
    double min = 0.0;  ///< absolute observed extremes (monotone, not deltas)
    double max = 0.0;
    std::vector<BucketDelta> buckets;
  };

  std::vector<Def> defs;
  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDelta> histograms;
  std::vector<SpanRecord> spans;  ///< spans recorded since the acked baseline
};

/// Decode one snapshot payload. Returns false on any structural violation
/// (bad version, out-of-range kind or bucket index, truncation, trailing
/// bytes); never throws, never reads past `size`.
[[nodiscard]] bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                                   SnapshotDelta& out);

/// Per-scraper delta state over one registry. Single-threaded, like the
/// transport that drives it.
class SnapshotEncoder {
 public:
  explicit SnapshotEncoder(const MetricRegistry& registry);

  /// Encode the delta since the acked baseline into `out`. Returns false —
  /// without touching `out` and without allocating — when nothing changed:
  /// the responder then sends no frame at all (the hot-tick guarantee the
  /// obs-overhead bench holds the scrape path to). On true, `out` holds the
  /// payload and last_seq() names it for the ack round trip.
  bool encode(std::int64_t source_now_ms, std::vector<std::uint8_t>& out);

  /// The scraper applied snapshot `seq`: promote that encode's captured
  /// values to the delta baseline. Acks for any other seq are ignored — the
  /// kLow reply carrying it was shed and the next encode re-diffs from the
  /// old baseline.
  void ack(std::uint64_t seq);

  /// Drop all baselines: the next encode is a full snapshot (base_seq 0).
  void reset();

  [[nodiscard]] std::uint64_t last_seq() const noexcept { return seq_; }
  [[nodiscard]] std::uint64_t acked_seq() const noexcept { return acked_seq_; }

 private:
  struct CounterState {
    const Counter* metric = nullptr;
    std::string name;
    std::uint64_t acked = 0;
    std::uint64_t pending = 0;
    bool def_acked = false;
    bool def_pending = false;
  };
  struct GaugeState {
    const Gauge* metric = nullptr;
    std::string name;
    std::uint64_t acked_bits = 0;  ///< IEEE-754 bits at the baseline
    std::uint64_t pending_bits = 0;
    bool def_acked = false;
    bool def_pending = false;
  };
  struct HistogramState {
    const Histogram* metric = nullptr;
    std::string name;
    std::uint64_t acked_buckets[Histogram::kBuckets] = {};
    std::uint64_t pending_buckets[Histogram::kBuckets] = {};
    std::uint64_t acked_count = 0;
    std::uint64_t pending_count = 0;
    double acked_sum = 0.0;
    double pending_sum = 0.0;
    bool def_acked = false;
    bool def_pending = false;
  };

  /// Pick up metrics registered since the last call (appends only — the
  /// registry never removes entries, so indices stay aligned).
  void discover();
  [[nodiscard]] bool dirty() const;

  const MetricRegistry* registry_;
  std::vector<CounterState> counters_;
  std::vector<GaugeState> gauges_;
  std::vector<HistogramState> histograms_;
  std::uint64_t seq_ = 0;        ///< last encoded snapshot
  std::uint64_t acked_seq_ = 0;  ///< baseline the next encode diffs against
  std::uint64_t acked_spans_ = 0;
  std::uint64_t pending_spans_ = 0;
  std::vector<SpanRecord> span_buffer_;  ///< reused per encode
};

}  // namespace dust::obs
