#include "obs/trace.hpp"

#include <atomic>

namespace dust::obs {

namespace {
std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace

std::uint64_t next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext new_trace() noexcept {
  const std::uint64_t id = next_span_id();
  return TraceContext{id, id};
}

TraceContext child_of(const TraceContext& parent) noexcept {
  if (!parent.valid()) return new_trace();
  return TraceContext{parent.trace_id, next_span_id()};
}

void reset_trace_ids() noexcept {
  g_next_span_id.store(1, std::memory_order_relaxed);
}

}  // namespace dust::obs
