#include "obs/trace.hpp"

#include <atomic>

namespace dust::obs {

namespace {
std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace

std::uint64_t next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext new_trace() noexcept {
  const std::uint64_t id = next_span_id();
  return TraceContext{id, id};
}

TraceContext child_of(const TraceContext& parent) noexcept {
  if (!parent.valid()) return new_trace();
  return TraceContext{parent.trace_id, next_span_id()};
}

void reset_trace_ids() noexcept {
  g_next_span_id.store(1, std::memory_order_relaxed);
}

void seed_span_ids(std::uint64_t seed) noexcept {
  // Spread the seed (splitmix64 finalizer) before taking the block index so
  // similar node names still land in distant blocks.
  std::uint64_t mixed = seed + 0x9E3779B97F4A7C15ull;
  mixed = (mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9ull;
  mixed = (mixed ^ (mixed >> 27)) * 0x94D049BB133111EBull;
  mixed ^= mixed >> 31;
  g_next_span_id.store(((mixed & 0xFFFFFF) << 40) | 1,
                       std::memory_order_relaxed);
}

}  // namespace dust::obs
