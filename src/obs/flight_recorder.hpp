// Flight recorder: a fixed-capacity lock-free ring of typed structured
// events, recorded from every layer of the control plane (placement cycle
// boundaries, solver outcomes, message tx/rx/drop with cause, role
// transitions, cache behaviour, watchdog alerts). It is the post-mortem
// counterpart of the metric registry: counters tell you *how much*, the
// recorder tells you *what happened last*, in order, with trace IDs linking
// events back to the causal span trees (obs/trace.hpp).
//
// dust::check attaches the recorder tail to every invariant failure and
// shrunk repro (DESIGN.md §10); `write_flight_text` renders the ring as a
// human-readable timeline.
//
// Concurrency: record() claims a sequence number with one fetch_add, writes
// the event payload as relaxed per-word atomic stores, then publishes the
// slot with a release store of seq+1. snapshot() validates each slot's
// stamp before and after copying, dropping slots a writer raced past. All
// payload access is through atomics (no torn reads at the memory-model
// level); if two writers collide on the same slot a full capacity apart,
// the loser's fields can interleave — acceptable for a diagnostic ring,
// impossible in the single-threaded simulator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace dust::obs {

enum class FlightEventKind : std::uint8_t {
  kCycleStart,       ///< placement cycle began (value = cycle index)
  kCycleEnd,         ///< placement cycle ended (value = offloads created)
  kSolverOutcome,    ///< detail = status, value = objective
  kMessageTx,        ///< transport send accepted (detail = kind from>to)
  kMessageRx,        ///< delivery (not emitted by sim::Transport, which
                     ///< records msg_tx + msg_drop and implies delivery)
  kMessageDrop,      ///< dropped; detail leads with the cause
  kRoleChange,       ///< node role transition (detail = "old>new")
  kOffloadCreated,   ///< node = busy, peer = destination, value = amount
  kOffloadAcked,     ///< busy node acknowledged (node = busy)
  kRetransmit,       ///< unacked Offload-Request re-sent (value = attempt)
  kKeepaliveFailure, ///< destination declared dead (node = destination)
  kReplicaSubstitution,  ///< node = failed destination, peer = replica
  kRelease,          ///< offload torn down (node = busy, peer = destination)
  kCacheStats,       ///< per-cycle Trmin cache delta (value=hits, peer=misses)
  kAlert,            ///< watchdog alert (detail = rule, value = observed)
  kInvariantViolation,  ///< dust::check tripped (detail = invariant)
  kCustom,
};

[[nodiscard]] const char* to_string(FlightEventKind kind) noexcept;

struct FlightEvent {
  static constexpr std::size_t kDetailCapacity = 32;  ///< incl. NUL
  static constexpr std::int32_t kNoNode = -1;

  std::uint64_t seq = 0;   ///< global order of recording
  FlightEventKind kind = FlightEventKind::kCustom;
  std::int64_t sim_ms = -1;
  std::uint64_t trace_id = 0;  ///< 0 = not tied to a causal trace
  std::int32_t node = kNoNode;
  std::int32_t peer = kNoNode;
  double value = 0.0;
  char detail[kDetailCapacity] = {};  ///< NUL-terminated, truncating
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event. No-op while obs::enabled() is false. Lock-free and
  /// allocation-free; `detail` is truncated to kDetailCapacity - 1 chars.
  void record(FlightEventKind kind, std::int64_t sim_ms,
              std::uint64_t trace_id, std::int32_t node, std::int32_t peer,
              double value, std::string_view detail) noexcept;

  /// Convenience for events with no endpoints or value.
  void record(FlightEventKind kind, std::int64_t sim_ms,
              std::string_view detail) noexcept {
    record(kind, sim_ms, 0, FlightEvent::kNoNode, FlightEvent::kNoNode, 0.0,
           detail);
  }

  /// All currently held events, oldest first. Slots a writer was mutating
  /// during the copy are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// The most recent `n` events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> tail(std::size_t n) const;

  /// Total events ever recorded (including those the ring has evicted).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Empty the ring. NOT safe against concurrent writers — call from test
  /// setup / scenario-run boundaries only.
  void clear() noexcept;

  /// Process-wide recorder the built-in instrumentation writes to.
  static FlightRecorder& global();

 private:
  // An event is serialized into fixed 64-bit words so every payload access
  // is an atomic word op (see header comment). kWords covers the packed
  // FlightEvent exactly.
  static constexpr std::size_t kWords =
      (sizeof(FlightEvent) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< seq + 1 once published
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

/// Human-readable timeline, one event per line, oldest first.
void write_flight_text(const std::vector<FlightEvent>& events,
                       std::ostream& os);
[[nodiscard]] std::string flight_text(const std::vector<FlightEvent>& events);

}  // namespace dust::obs
