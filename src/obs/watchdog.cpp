#include "obs/watchdog.hpp"

#include <sstream>
#include <utility>

#include "obs/flight_recorder.hpp"

namespace dust::obs {

Watchdog::Watchdog(MetricRegistry& registry, WatchdogConfig config)
    : registry_(&registry),
      config_(config),
      alerts_total_(&registry.counter("dust_obs_alerts_total")) {}

bool Watchdog::window_mean(const RegistrySnapshot& snapshot,
                           const std::string& name, HistCursor& cursor,
                           std::uint64_t min_count, double* mean_out,
                           std::uint64_t* count_out) {
  const NamedHistogramSnapshot* hist = snapshot.find_histogram(name);
  if (hist == nullptr) return false;
  // A registry reset mid-flight rewinds the totals; resync and skip the
  // window rather than reporting a negative delta.
  if (hist->count < cursor.count) {
    cursor = HistCursor{};
    cursor.count = hist->count;
    cursor.sum = hist->sum;
    for (std::size_t i = 0; i < hist->buckets.size(); ++i)
      cursor.buckets[i] = hist->buckets[i].count;
    return false;
  }
  const std::uint64_t count = hist->count - cursor.count;
  const double sum = hist->sum - cursor.sum;
  cursor.count = hist->count;
  cursor.sum = hist->sum;
  for (std::size_t i = 0; i < hist->buckets.size(); ++i)
    cursor.buckets[i] = hist->buckets[i].count;
  if (count_out != nullptr) *count_out = count;
  if (count < min_count || count == 0) return false;
  if (mean_out != nullptr) *mean_out = sum / static_cast<double>(count);
  return true;
}

bool Watchdog::window_quantile(const RegistrySnapshot& snapshot,
                               const std::string& name, HistCursor& cursor,
                               std::uint64_t min_count, double q,
                               double* value_out, std::uint64_t* count_out) {
  const NamedHistogramSnapshot* hist = snapshot.find_histogram(name);
  if (hist == nullptr) return false;
  if (hist->count < cursor.count) {
    // Registry reset rewound the totals: resync and skip the window.
    cursor = HistCursor{};
    cursor.count = hist->count;
    cursor.sum = hist->sum;
    for (std::size_t i = 0; i < hist->buckets.size(); ++i)
      cursor.buckets[i] = hist->buckets[i].count;
    return false;
  }
  HistogramSnapshot window;
  window.count = hist->count - cursor.count;
  window.sum = hist->sum - cursor.sum;
  // Lifetime extremes are valid (if loose) clamp bounds for any window.
  window.min = hist->min;
  window.max = hist->max;
  window.buckets.reserve(hist->buckets.size());
  for (std::size_t i = 0; i < hist->buckets.size(); ++i) {
    window.buckets.push_back(BucketSnapshot{
        hist->buckets[i].upper, hist->buckets[i].count - cursor.buckets[i]});
    cursor.buckets[i] = hist->buckets[i].count;
  }
  cursor.count = hist->count;
  cursor.sum = hist->sum;
  if (count_out != nullptr) *count_out = window.count;
  if (window.count < min_count || window.count == 0) return false;
  if (value_out != nullptr) *value_out = window.quantile(q);
  return true;
}

void Watchdog::raise(std::vector<Alert>& out, std::string rule,
                     std::string message, double value, std::int64_t sim_ms) {
  alerts_total_->inc();
  registry_->counter("dust_obs_alert_" + rule + "_total").inc();
  FlightRecorder::global().record(FlightEventKind::kAlert, sim_ms, 0,
                                  FlightEvent::kNoNode, FlightEvent::kNoNode,
                                  value, rule);
  ++alerts_raised_;
  out.push_back(Alert{std::move(rule), std::move(message), value, sim_ms});
}

std::vector<Alert> Watchdog::evaluate(std::int64_t sim_now_ms) {
  std::vector<Alert> alerts;
  if (!enabled()) return alerts;
  const RegistrySnapshot snapshot = registry_->snapshot();

  // --- placement-latency-regression -------------------------------------
  double solve_mean = 0.0;
  std::uint64_t solve_count = 0;
  const bool have_solve =
      window_mean(snapshot, "dust_core_placement_solve_ms", solve_cursor_,
                  config_.min_latency_samples, &solve_mean, &solve_count);
  if (have_solve && primed_) {
    if (latency_baseline_ms_ >= 0.0 &&
        solve_mean >
            latency_baseline_ms_ * config_.latency_regression_factor) {
      std::ostringstream msg;
      msg << "placement solve latency " << solve_mean
          << " ms exceeds rolling baseline " << latency_baseline_ms_
          << " ms x " << config_.latency_regression_factor << " ("
          << solve_count << " samples)";
      raise(alerts, "placement-latency-regression", msg.str(), solve_mean,
            sim_now_ms);
    } else {
      // Only healthy windows move the baseline — a regressed window must
      // not teach the watchdog that slow is normal.
      latency_baseline_ms_ =
          latency_baseline_ms_ < 0.0
              ? solve_mean
              : latency_baseline_ms_ +
                    config_.latency_baseline_alpha *
                        (solve_mean - latency_baseline_ms_);
    }
  } else if (have_solve) {
    latency_baseline_ms_ = solve_mean;  // first window seeds the baseline
  }

  // --- hfr-spike --------------------------------------------------------
  if (const GaugeSnapshot* hfr = snapshot.find_gauge("dust_core_hfr_percent");
      hfr != nullptr && primed_ && hfr->value > config_.hfr_spike_percent) {
    std::ostringstream msg;
    msg << "heuristic failure rate " << hfr->value << "% above "
        << config_.hfr_spike_percent << "% threshold";
    raise(alerts, "hfr-spike", msg.str(), hfr->value, sim_now_ms);
  }

  // --- trust-collapse ---------------------------------------------------
  if (config_.check_trust_collapse) {
    if (const GaugeSnapshot* distrusted =
            snapshot.find_gauge("dust_core_distrusted_nodes");
        distrusted != nullptr && primed_ &&
        distrusted->value > config_.distrusted_nodes_limit) {
      std::ostringstream msg;
      msg << distrusted->value << " node(s) below the trust exclusion "
          << "threshold (limit " << config_.distrusted_nodes_limit
          << ") — byzantine behavior detected in the fleet";
      raise(alerts, "trust-collapse", msg.str(), distrusted->value,
            sim_now_ms);
    }
  }

  // --- nmdb-staleness ---------------------------------------------------
  // Tail threshold, not mean: one placement cycle planned on a badly stale
  // network view is a problem even when the window average looks healthy.
  double stale_tail = 0.0;
  if (window_quantile(snapshot, "dust_core_nmdb_staleness_ms",
                      staleness_cursor_, 1, config_.staleness_quantile,
                      &stale_tail, nullptr) &&
      primed_ && stale_tail > config_.staleness_limit_ms) {
    std::ostringstream msg;
    msg << "NMDB staleness p"
        << static_cast<int>(config_.staleness_quantile * 100.0) << " = "
        << stale_tail << " ms exceeds " << config_.staleness_limit_ms
        << " ms — placement is planning on an outdated network view";
    raise(alerts, "nmdb-staleness", msg.str(), stale_tail, sim_now_ms);
  }

  // --- replica-substitution --------------------------------------------
  if (config_.check_replica_substitution) {
    const CounterSnapshot* failures =
        snapshot.find_counter("dust_core_keepalive_failures_total");
    const CounterSnapshot* reps =
        snapshot.find_counter("dust_core_tx_rep_total");
    const std::uint64_t failures_now = failures != nullptr ? failures->value : 0;
    const std::uint64_t reps_now = reps != nullptr ? reps->value : 0;
    if (failures_now < keepalive_failures_seen_ || reps_now < reps_seen_) {
      keepalive_failures_seen_ = failures_now;  // registry was reset
      reps_seen_ = reps_now;
    } else {
      const std::uint64_t new_failures =
          failures_now - keepalive_failures_seen_;
      const std::uint64_t new_reps = reps_now - reps_seen_;
      keepalive_failures_seen_ = failures_now;
      reps_seen_ = reps_now;
      if (primed_ && new_failures > new_reps) {
        std::ostringstream msg;
        msg << new_failures << " keepalive failure(s) but only " << new_reps
            << " REP(s) in this window — dead destinations not re-homed";
        raise(alerts, "replica-substitution", msg.str(),
              static_cast<double>(new_failures - new_reps), sim_now_ms);
      }
    }
  }

  // --- federation-failover / federation-stale-epoch ---------------------
  if (config_.check_federation) {
    const CounterSnapshot* takeovers =
        snapshot.find_counter("dust_fed_takeovers_total");
    const CounterSnapshot* stale =
        snapshot.find_counter("dust_fed_stale_frames_total");
    const std::uint64_t takeovers_now = takeovers != nullptr ? takeovers->value : 0;
    const std::uint64_t stale_now = stale != nullptr ? stale->value : 0;
    if (takeovers_now < fed_takeovers_seen_ ||
        stale_now < fed_stale_frames_seen_) {
      fed_takeovers_seen_ = takeovers_now;  // registry was reset
      fed_stale_frames_seen_ = stale_now;
    } else {
      const std::uint64_t new_takeovers = takeovers_now - fed_takeovers_seen_;
      const std::uint64_t new_stale = stale_now - fed_stale_frames_seen_;
      fed_takeovers_seen_ = takeovers_now;
      fed_stale_frames_seen_ = stale_now;
      if (primed_ && new_takeovers > 0) {
        std::ostringstream msg;
        msg << new_takeovers << " standby takeover(s) in this window — a "
            << "shard primary went silent and was replaced";
        raise(alerts, "federation-failover", msg.str(),
              static_cast<double>(new_takeovers), sim_now_ms);
      }
      if (primed_ && new_stale > config_.stale_epoch_frames_limit) {
        std::ostringstream msg;
        msg << new_stale << " stale-epoch frame(s) rejected in this window "
            << "(limit " << config_.stale_epoch_frames_limit
            << ") — a superseded primary is still emitting";
        raise(alerts, "federation-stale-epoch", msg.str(),
              static_cast<double>(new_stale), sim_now_ms);
      }
    }
  }

  primed_ = true;
  return alerts;
}

}  // namespace dust::obs
