// dust::obs — self-observability for the DUST reproduction.
//
// DUST's thesis is that telemetry has a measurable resource cost; this
// subsystem lets the system measure *its own* cost. A MetricRegistry holds
// named Counter / Gauge / Histogram primitives with lock-free hot paths
// (relaxed atomics); registration and scraping take a mutex, so callers on
// hot paths fetch a handle once and keep it. Exporters (table / JSON lines /
// Prometheus text) live in obs/export.hpp, span tracing in obs/span.hpp.
//
// Naming scheme (see DESIGN.md §Observability): `dust_<layer>_<name>`, with
// `_total` for counters and a unit suffix (`_ms`, `_bytes`, ...) otherwise.
//
// Instrumentation can be disabled two ways:
//  - at runtime: obs::set_enabled(false) turns every update into a cheap
//    relaxed-load-and-return (what bench_sys_obs_overhead compares against);
//  - at compile time: -DDUST_OBS_COMPILED_OUT makes updates empty inline
//    functions, for measuring the cost of the runtime check itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dust::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}

/// Global instrumentation switch (cheap relaxed load on every update).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count. Thread-safe; updates are relaxed atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef DUST_OBS_COMPILED_OUT
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value. Thread-safe.
class Gauge {
 public:
  void set(double v) noexcept {
#ifndef DUST_OBS_COMPILED_OUT
    if (enabled()) value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(double delta) noexcept {
#ifndef DUST_OBS_COMPILED_OUT
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One histogram bucket in a snapshot: count of observations <= upper.
struct BucketSnapshot {
  double upper = 0.0;
  std::uint64_t count = 0;  ///< non-cumulative (this bucket only)
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<BucketSnapshot> buckets;  ///< ascending upper bounds

  [[nodiscard]] double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// power-of-two bucket containing the target rank. Accurate to the bucket
  /// resolution (a factor of 2 worst case), which is what log-bucketed
  /// latency tracking trades for O(1) lock-free updates.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Log-bucketed (power-of-two bounds) histogram for latency-style values.
/// observe() is a handful of relaxed atomic operations; no locks, no
/// allocation. Negative/zero values land in the lowest bucket; values above
/// the highest bound clamp into the top bucket (min/max stay exact).
class Histogram {
 public:
  /// Bucket i covers (2^(i-1+kMinExp), 2^(i+kMinExp)]; with kMinExp = -12
  /// the range spans ~0.24 µs to ~25 days when observing milliseconds.
  static constexpr int kMinExp = -12;
  static constexpr int kBuckets = 44;

  void observe(double v) noexcept {
#ifndef DUST_OBS_COMPILED_OUT
    if (!enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, v);
    atomic_min(min_, v);
    atomic_max(max_, v);
#else
    (void)v;
#endif
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Raw (non-cumulative) count of one bucket — the allocation-free read
  /// path the snapshot delta encoder diffs against its baseline.
  [[nodiscard]] std::uint64_t bucket_count(int index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double observed_min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double observed_max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  [[nodiscard]] static int bucket_index(double v) noexcept;
  /// Upper bound of bucket `index` (2^(index + kMinExp)).
  [[nodiscard]] static double bucket_upper(int index) noexcept;

 private:
  static void atomic_add(std::atomic<double>& target, double v) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& target, double v) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (v < cur &&
           !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& target, double v) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (v > cur &&
           !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct NamedHistogramSnapshot : HistogramSnapshot {
  std::string name;
};

/// One completed trace span (see obs/span.hpp). The first four fields are
/// the PR-1 layout (kept in order — SpanRecord is aggregate-initialized);
/// the causal-tracing fields (DESIGN.md §10) are appended after them. A
/// span with trace_id == 0 is untraced: it still shows up on its track in
/// the Perfetto export but belongs to no causal tree.
struct SpanRecord {
  std::string name;
  double wall_ms = 0.0;
  std::int64_t sim_start_ms = -1;  ///< -1 when no virtual clock was attached
  std::int64_t sim_duration_ms = -1;
  std::string track;               ///< timeline row ("manager", "client-3", ...)
  double wall_start_ms = -1.0;     ///< ms since process epoch (wall_now_ms)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = root of its trace
};

struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<NamedHistogramSnapshot> histograms;
  std::vector<SpanRecord> spans;  ///< most recent completed spans, oldest first
  /// Lifetime total of record_span() calls (the ring keeps only the last
  /// kMaxSpans of them) — the cursor the snapshot span tail keys off.
  std::uint64_t spans_recorded = 0;

  [[nodiscard]] const CounterSnapshot* find_counter(const std::string& name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(const std::string& name) const;
  [[nodiscard]] const NamedHistogramSnapshot* find_histogram(
      const std::string& name) const;
};

/// Named-metric registry. Metrics are created on first access and never
/// destroyed (reset() zeroes values but keeps registrations), so handles
/// returned by counter()/gauge()/histogram() stay valid for the registry's
/// lifetime — fetch them once, outside hot loops.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Consistent-enough scrape: each metric is read atomically, the set as a
  /// whole is not a point-in-time cut (standard for live registries).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zero every metric and clear the span buffer; registrations (and thus
  /// previously handed-out handles) survive.
  void reset();

  /// Append a completed span to the bounded trace buffer (oldest evicted).
  void record_span(SpanRecord record);

  /// Lifetime total of record_span() calls. Lock-free read: the snapshot
  /// responder's dirty check polls this on every scrape.
  [[nodiscard]] std::uint64_t spans_recorded() const noexcept {
    return spans_recorded_.load(std::memory_order_relaxed);
  }

  /// Append the spans recorded after global index `after_index` to `out`
  /// (oldest first) and return the new high-water index. The ring bounds
  /// history: at most the newest kMaxSpans spans are still available, older
  /// ones were evicted and are silently skipped.
  std::uint64_t copy_spans_since(std::uint64_t after_index,
                                 std::vector<SpanRecord>& out) const;

  /// Allocation-free iteration over registered metrics, in registration
  /// order (append-only, so indices are stable for the registry's
  /// lifetime). Callbacks run under the registry mutex: read values, don't
  /// call back into the registry.
  template <typename F>
  void for_each_counter(F&& fn) const {
    std::lock_guard lock(mutex_);
    for (const Entry<Counter>& entry : counters_) fn(entry.name, *entry.metric);
  }
  template <typename F>
  void for_each_gauge(F&& fn) const {
    std::lock_guard lock(mutex_);
    for (const Entry<Gauge>& entry : gauges_) fn(entry.name, *entry.metric);
  }
  template <typename F>
  void for_each_histogram(F&& fn) const {
    std::lock_guard lock(mutex_);
    for (const Entry<Histogram>& entry : histograms_)
      fn(entry.name, *entry.metric);
  }

  [[nodiscard]] std::size_t counter_count() const;
  [[nodiscard]] std::size_t gauge_count() const;
  [[nodiscard]] std::size_t histogram_count() const;

  /// Process-wide registry the built-in instrumentation writes to.
  static MetricRegistry& global();

  static constexpr std::size_t kMaxSpans = 512;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> metric;
  };
  template <typename T>
  static T& find_or_create(std::vector<Entry<T>>& entries,
                           const std::string& name);

  mutable std::mutex mutex_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<SpanRecord> spans_;
  std::size_t span_head_ = 0;  ///< ring cursor once spans_ is full
  std::atomic<std::uint64_t> spans_recorded_{0};
};

}  // namespace dust::obs
