// Bridge from util::log into the metric registry.
//
// util lives below obs in the layering, so the logger cannot link against
// the registry directly; instead it exposes an emit-observer hook and this
// bridge installs a callback that counts emitted lines per level:
//
//   dust_util_log_trace_total ... dust_util_log_error_total
//
// making LOG_AT volume itself observable (a chatty placement loop shows up
// in the same scrape as its latency histogram).
#pragma once

#include "obs/metrics.hpp"

namespace dust::obs {

/// Install the emit observer counting log lines per level into `registry`.
/// Replaces any previously attached observer.
void attach_log_metrics(MetricRegistry& registry);

/// Remove the observer (safe if none attached).
void detach_log_metrics();

}  // namespace dust::obs
