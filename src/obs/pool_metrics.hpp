// Bridge from util::ThreadPool into the metric registry.
//
// util lives below obs in the layering, so the pool cannot link against the
// registry directly; instead it exposes a pool-observer hook and this bridge
// installs a callback that accumulates per-region chunk activity:
//
//   dust_pool_tasks_total — chunks executed by parallel_for_chunks regions
//   dust_pool_steal_total — chunks claimed by a worker other than their
//                           static block owner (dynamic-schedule steals)
//
// making solver-parallelism load balance observable in the same scrape as
// the placement latency it is supposed to improve.
#pragma once

#include "obs/metrics.hpp"

namespace dust::obs {

/// Install the pool observer counting chunk executions and steals into
/// `registry`. Replaces any previously attached observer.
void attach_pool_metrics(MetricRegistry& registry);

/// Remove the observer (safe if none attached).
void detach_pool_metrics();

}  // namespace dust::obs
