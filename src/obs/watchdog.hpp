// Health watchdogs: a small rule engine over MetricRegistry snapshots
// (DESIGN.md §10). The caller pumps evaluate() on whatever cadence it likes
// (a sim::PeriodicTask, a scrape loop, once at end of run); each evaluation
// scrapes the registry, diffs it against the previous evaluation (so rules
// see *windows*, not lifetime aggregates), applies the rules, and raises
// structured alerts — into the returned vector, into the flight recorder
// (kAlert), and onto `dust_obs_alerts_total` / `dust_obs_alert_<rule>_total`
// counters in the same registry.
//
// Rules (all windows are deltas between consecutive evaluate() calls):
//   placement-latency-regression  window mean of dust_core_placement_solve_ms
//                                 exceeds `latency_regression_factor` × a
//                                 rolling EWMA baseline of earlier windows
//   hfr-spike                     dust_core_hfr_percent gauge above
//                                 `hfr_spike_percent` (heuristic failure rate)
//   nmdb-staleness                window p{staleness_quantile} of
//                                 dust_core_nmdb_staleness_ms above
//                                 `staleness_limit_ms` — the optimizer is
//                                 planning on an outdated network view (a
//                                 tail threshold: one badly stale view
//                                 matters even when the mean looks fine)
//   replica-substitution          keepalive failures in the window without a
//                                 matching REP: a dead destination's workload
//                                 was not re-homed
//   federation-failover           dust_fed_takeovers_total grew in the
//                                 window: a standby bumped the epoch and took
//                                 over a shard (DESIGN.md §16) — operators
//                                 should check what killed the primary
//   federation-stale-epoch        dust_fed_stale_frames_total grew past
//                                 `stale_epoch_frames_limit` in the window: a
//                                 superseded primary (or a partitioned peer)
//                                 is still emitting frames at an old epoch
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dust::obs {

struct WatchdogConfig {
  /// Alert when a window's mean solve latency exceeds baseline × factor.
  double latency_regression_factor = 3.0;
  /// Windows with fewer solve samples than this neither alert nor move the
  /// baseline (a single slow cycle is noise, not a regression).
  std::uint64_t min_latency_samples = 3;
  /// EWMA weight of the newest window when updating the latency baseline.
  double latency_baseline_alpha = 0.3;
  /// Heuristic failure rate (percent) above which hfr-spike fires.
  double hfr_spike_percent = 50.0;
  /// Window NMDB staleness (ms) above which nmdb-staleness fires.
  double staleness_limit_ms = 180000.0;
  /// Which windowed quantile of dust_core_nmdb_staleness_ms the staleness
  /// rule thresholds. Tail quantiles come interpolated from the log buckets
  /// (obs::HistogramSnapshot::quantile) so a single very stale planning
  /// cycle trips the rule even when the window mean is healthy.
  double staleness_quantile = 0.9;
  /// Enable the replica-substitution shortfall rule.
  bool check_replica_substitution = true;
  /// Enable the trust-collapse rule: alert when the
  /// dust_core_distrusted_nodes gauge (nodes below the manager's trust
  /// exclusion threshold, DESIGN.md §14) exceeds distrusted_nodes_limit.
  bool check_trust_collapse = true;
  double distrusted_nodes_limit = 0.0;
  /// Enable the federation rules (failover + stale-epoch; DESIGN.md §16).
  bool check_federation = true;
  /// Stale-epoch frames tolerated per window before federation-stale-epoch
  /// fires. A couple are normal during a takeover (in-flight frames from the
  /// deposed primary); sustained growth means it never stopped talking.
  std::uint64_t stale_epoch_frames_limit = 3;
};

struct Alert {
  std::string rule;     ///< "placement-latency-regression", ...
  std::string message;  ///< human-readable cause
  double value = 0.0;   ///< the observation that tripped the rule
  std::int64_t sim_ms = -1;
};

class Watchdog {
 public:
  explicit Watchdog(MetricRegistry& registry = MetricRegistry::global(),
                    WatchdogConfig config = {});

  /// Scrape, diff against the previous evaluation, run every rule. The
  /// first call only primes the windows (no alerts). `sim_now_ms` stamps the
  /// raised alerts and flight-recorder events (-1 = unknown).
  std::vector<Alert> evaluate(std::int64_t sim_now_ms = -1);

  [[nodiscard]] std::uint64_t alerts_raised() const noexcept {
    return alerts_raised_;
  }
  /// Rolling solve-latency baseline (ms); < 0 until enough windows passed.
  [[nodiscard]] double latency_baseline_ms() const noexcept {
    return latency_baseline_ms_;
  }

 private:
  struct HistCursor {
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Per-bucket totals at the previous evaluation, so windows can compute
    /// quantiles (not just means) from the bucket deltas.
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };
  /// Window (delta) mean of a histogram since the previous evaluation;
  /// false when the window holds fewer than `min_count` samples.
  static bool window_mean(const RegistrySnapshot& snapshot,
                          const std::string& name, HistCursor& cursor,
                          std::uint64_t min_count, double* mean_out,
                          std::uint64_t* count_out);
  /// Windowed quantile: rebuilds a HistogramSnapshot from the bucket deltas
  /// since the previous evaluation and interpolates `q` inside it. The
  /// lifetime min/max clamp the interpolation (valid, if loose, bounds for
  /// any window). Advances the cursor like window_mean.
  static bool window_quantile(const RegistrySnapshot& snapshot,
                              const std::string& name, HistCursor& cursor,
                              std::uint64_t min_count, double q,
                              double* value_out, std::uint64_t* count_out);

  void raise(std::vector<Alert>& out, std::string rule, std::string message,
             double value, std::int64_t sim_ms);

  MetricRegistry* registry_;
  WatchdogConfig config_;
  bool primed_ = false;
  HistCursor solve_cursor_;
  HistCursor staleness_cursor_;
  std::uint64_t keepalive_failures_seen_ = 0;
  std::uint64_t reps_seen_ = 0;
  std::uint64_t fed_takeovers_seen_ = 0;
  std::uint64_t fed_stale_frames_seen_ = 0;
  double latency_baseline_ms_ = -1.0;
  std::uint64_t alerts_raised_ = 0;
  Counter* alerts_total_ = nullptr;
};

}  // namespace dust::obs
