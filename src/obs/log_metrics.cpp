#include "obs/log_metrics.hpp"

#include <array>

#include "util/log.hpp"

namespace dust::obs {

void attach_log_metrics(MetricRegistry& registry) {
  // Handles resolved once here; the observer itself is lock-free.
  const std::array<Counter*, 5> by_level = {
      &registry.counter("dust_util_log_trace_total"),
      &registry.counter("dust_util_log_debug_total"),
      &registry.counter("dust_util_log_info_total"),
      &registry.counter("dust_util_log_warn_total"),
      &registry.counter("dust_util_log_error_total"),
  };
  util::set_emit_observer([by_level](util::LogLevel level) {
    const auto index = static_cast<std::size_t>(level);
    if (index < by_level.size()) by_level[index]->inc();
  });
}

void detach_log_metrics() { util::set_emit_observer(nullptr); }

}  // namespace dust::obs
