#include "obs/span.hpp"

#include <chrono>

namespace dust::obs {

double wall_now_ms() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::milli>(clock::now() - epoch)
      .count();
}

Span::Span(MetricRegistry& registry, std::string name, VirtualClock clock,
           SpanOptions options, bool traced)
    : registry_(enabled() ? &registry : nullptr),
      name_(std::move(name)),
      clock_(std::move(clock)),
      options_(std::move(options)) {
  if (registry_ == nullptr) return;
  if (clock_) sim_start_ms_ = clock_();
  wall_start_ms_ = wall_now_ms();
  if (traced) {
    parent_id_ = options_.parent.span_id;
    context_ = child_of(options_.parent);
  }
}

Span::~Span() {
  if (registry_ == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.track = options_.track;
  record.wall_ms = timer_.millis();
  record.wall_start_ms = wall_start_ms_;
  record.trace_id = context_.trace_id;
  record.span_id = context_.span_id;
  record.parent_span_id = parent_id_;
  registry_->histogram(name_ + "_wall_ms").observe(record.wall_ms);
  if (clock_) {
    record.sim_start_ms = sim_start_ms_;
    record.sim_duration_ms = clock_() - sim_start_ms_;
    registry_->histogram(name_ + "_sim_ms")
        .observe(static_cast<double>(record.sim_duration_ms));
  }
  registry_->record_span(std::move(record));
}

TraceContext record_instant(MetricRegistry& registry, std::string name,
                            std::string track, const TraceContext& parent,
                            std::int64_t sim_now_ms) {
  if (!enabled()) return TraceContext{};
  const TraceContext context = child_of(parent);
  SpanRecord record;
  record.name = std::move(name);
  record.track = std::move(track);
  record.wall_ms = 0.0;
  record.wall_start_ms = wall_now_ms();
  record.sim_start_ms = sim_now_ms;
  record.sim_duration_ms = sim_now_ms >= 0 ? 0 : -1;
  record.trace_id = context.trace_id;
  record.span_id = context.span_id;
  record.parent_span_id = parent.span_id;
  registry.record_span(std::move(record));
  return context;
}

}  // namespace dust::obs
