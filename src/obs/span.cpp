#include "obs/span.hpp"

namespace dust::obs {

Span::Span(MetricRegistry& registry, std::string name, VirtualClock clock)
    : registry_(enabled() ? &registry : nullptr),
      name_(std::move(name)),
      clock_(std::move(clock)) {
  if (registry_ != nullptr && clock_) sim_start_ms_ = clock_();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.wall_ms = timer_.millis();
  registry_->histogram(name_ + "_wall_ms").observe(record.wall_ms);
  if (clock_) {
    record.sim_start_ms = sim_start_ms_;
    record.sim_duration_ms = clock_() - sim_start_ms_;
    registry_->histogram(name_ + "_sim_ms")
        .observe(static_cast<double>(record.sim_duration_ms));
  }
  registry_->record_span(std::move(record));
}

}  // namespace dust::obs
