#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

namespace dust::obs {

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kCycleStart: return "cycle_start";
    case FlightEventKind::kCycleEnd: return "cycle_end";
    case FlightEventKind::kSolverOutcome: return "solver_outcome";
    case FlightEventKind::kMessageTx: return "msg_tx";
    case FlightEventKind::kMessageRx: return "msg_rx";
    case FlightEventKind::kMessageDrop: return "msg_drop";
    case FlightEventKind::kRoleChange: return "role_change";
    case FlightEventKind::kOffloadCreated: return "offload_created";
    case FlightEventKind::kOffloadAcked: return "offload_acked";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kKeepaliveFailure: return "keepalive_failure";
    case FlightEventKind::kReplicaSubstitution: return "replica_substitution";
    case FlightEventKind::kRelease: return "release";
    case FlightEventKind::kCacheStats: return "cache_stats";
    case FlightEventKind::kAlert: return "alert";
    case FlightEventKind::kInvariantViolation: return "invariant_violation";
    case FlightEventKind::kCustom: return "custom";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(FlightEventKind kind, std::int64_t sim_ms,
                            std::uint64_t trace_id, std::int32_t node,
                            std::int32_t peer, double value,
                            std::string_view detail) noexcept {
#ifndef DUST_OBS_COMPILED_OUT
  if (!enabled()) return;
  const std::uint64_t seq =
      cursor_.fetch_add(1, std::memory_order_relaxed);

  FlightEvent event;
  event.seq = seq;
  event.kind = kind;
  event.sim_ms = sim_ms;
  event.trace_id = trace_id;
  event.node = node;
  event.peer = peer;
  event.value = value;
  const std::size_t n =
      std::min(detail.size(), FlightEvent::kDetailCapacity - 1);
  std::memcpy(event.detail, detail.data(), n);
  event.detail[n] = '\0';

  std::uint64_t words[kWords] = {};
  std::memcpy(words, &event, sizeof(event));

  Slot& slot = slots_[seq % capacity_];
  for (std::size_t w = 0; w < kWords; ++w)
    slot.words[w].store(words[w], std::memory_order_relaxed);
  slot.stamp.store(seq + 1, std::memory_order_release);
#else
  (void)kind; (void)sim_ms; (void)trace_id; (void)node; (void)peer;
  (void)value; (void)detail;
#endif
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;  // never written
    std::uint64_t words[kWords];
    for (std::size_t w = 0; w < kWords; ++w)
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    const std::uint64_t after = slot.stamp.load(std::memory_order_acquire);
    if (after != before) continue;  // writer raced past mid-copy
    FlightEvent event;
    std::memcpy(&event, words, sizeof(event));
    if (event.seq + 1 != before) continue;  // stamp/payload mismatch
    event.detail[FlightEvent::kDetailCapacity - 1] = '\0';
    out.push_back(event);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  std::vector<FlightEvent> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

void FlightRecorder::clear() noexcept {
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].stamp.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void write_flight_text(const std::vector<FlightEvent>& events,
                       std::ostream& os) {
  for (const FlightEvent& event : events) {
    os << '#' << event.seq << " t=";
    if (event.sim_ms >= 0)
      os << event.sim_ms << "ms";
    else
      os << '?';
    os << ' ' << to_string(event.kind);
    if (event.detail[0] != '\0') os << " [" << event.detail << ']';
    if (event.node != FlightEvent::kNoNode) {
      os << " node=" << event.node;
      if (event.peer != FlightEvent::kNoNode) os << " peer=" << event.peer;
    }
    if (event.value != 0.0) os << " value=" << event.value;
    if (event.trace_id != 0) os << " trace=" << event.trace_id;
    os << '\n';
  }
}

std::string flight_text(const std::vector<FlightEvent>& events) {
  std::ostringstream os;
  write_flight_text(events, os);
  return os.str();
}

}  // namespace dust::obs
