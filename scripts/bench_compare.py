#!/usr/bin/env python3
"""Diff two dust-bench-v1 JSON reports and fail on timing regressions.

Usage:
    bench_compare.py <baseline.json> <candidate.json> [--threshold 0.10]
    bench_compare.py --self-test

Every record whose metric name contains "ms_per_cycle" or "failover" with
an "_ms" suffix is treated as a lower-is-better timing; a candidate more
than --threshold (default 10%) slower than the baseline on the same
(metric, config) key fails the compare (exit 1). Records that declare an absolute budget in their config string
("budget=5" — the obs overhead gate, instrumented and scrape-path) fail the
compare when the candidate value meets or exceeds the budget, regardless of
how the baseline did. Other metrics are reported informationally.

Rates that are higher-is-neutral telemetry (delegation_rate,
delegated_share, cache_hit_rate, ...) are reported informationally and never
fail the compare — a fleet that delegates more is not slower, just shaped
differently.

Scale safety: reports carry a top-level "topology" object and per-record
nodes=/edges= config fields. A compare across different topology sizes is
refused outright (exit 2) — a k=16 baseline says nothing about a k=32 run.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "dust-bench-v1":
        raise SystemExit(f"{path}: not a dust-bench-v1 report")
    return report


def record_key(record):
    return (record.get("metric", ""), record.get("config", ""))


def is_timing(metric):
    """Lower-is-better wall/sim-clock metrics the compare gates on.

    "ms_per_cycle" covers the steady-state benches; "failover...*_ms"
    covers the federation takeover timings (failover_detect_ms,
    failover_ms), which must not quietly drift past the silence timeout
    they are supposed to track.
    """
    return "ms_per_cycle" in metric or (
        "failover" in metric and metric.endswith("_ms"))


def declared_budget(record):
    """The record's self-declared absolute ceiling, or None.

    A config field "budget=5" means "this value must stay under 5 in
    whatever units the record uses" — the bench binary enforces it at run
    time, and the compare re-enforces it on committed baselines so a stale
    JSON can't hide a blown budget.
    """
    for field in record.get("config", "").split(","):
        if field.startswith("budget="):
            try:
                return float(field[len("budget="):])
            except ValueError:
                return None
    return None


def compare(baseline, candidate, threshold):
    """Return (failures, lines): regressions and a human-readable log."""
    base_topo = baseline.get("topology")
    cand_topo = candidate.get("topology")
    if base_topo != cand_topo:
        raise SystemExit(
            f"refusing cross-scale compare: baseline topology {base_topo} "
            f"!= candidate {cand_topo} (exit 2)"
        )

    base = {record_key(r): r for r in baseline.get("records", [])}
    failures = []
    lines = []
    for record in candidate.get("records", []):
        key = record_key(record)
        budget = declared_budget(record)
        if budget is not None and record["value"] >= budget:
            failures.append(
                f"{key[0]} [{key[1]}]: {record['value']:g} blows its "
                f"declared budget of {budget:g}"
            )
            lines.append(
                f"  BUDGET   {key[0]} [{key[1]}]: "
                f"{record['value']:g} >= {budget:g}"
            )
            continue
        if key not in base:
            lines.append(f"  new      {key[0]} [{key[1]}]")
            continue
        old = base[key]["value"]
        new = record["value"]
        if not is_timing(key[0]):
            lines.append(f"  info     {key[0]} [{key[1]}]: {old:g} -> {new:g}")
            continue
        if old <= 0:
            lines.append(f"  skip     {key[0]} [{key[1]}]: baseline {old:g}")
            continue
        ratio = new / old
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{key[0]} [{key[1]}]: {old:g} ms -> {new:g} ms "
                f"(+{(ratio - 1.0) * 100:.1f}% > {threshold * 100:.0f}%)"
            )
        lines.append(
            f"  {verdict:8s} {key[0]} [{key[1]}]: "
            f"{old:g} -> {new:g} ms ({(ratio - 1.0) * 100:+.1f}%)"
        )
    return failures, lines


def self_test():
    topo = {"nodes": 320, "edges": 2048}
    base = {
        "schema": "dust-bench-v1",
        "topology": topo,
        "records": [
            {"metric": "steady_ms_per_cycle", "config": "a", "value": 10.0},
            {"metric": "cache_hit_rate", "config": "a", "value": 0.5},
        ],
    }
    ok = dict(base)
    ok["records"] = [
        {"metric": "steady_ms_per_cycle", "config": "a", "value": 10.5},
        {"metric": "cache_hit_rate", "config": "a", "value": 0.4},
    ]
    failures, _ = compare(base, ok, 0.10)
    assert not failures, f"5% slowdown must pass a 10% threshold: {failures}"

    bad = dict(base)
    bad["records"] = [
        {"metric": "steady_ms_per_cycle", "config": "a", "value": 11.5}
    ]
    failures, _ = compare(base, bad, 0.10)
    assert failures, "15% slowdown must fail a 10% threshold"

    cross = dict(base)
    cross["topology"] = {"nodes": 1280, "edges": 16384}
    try:
        compare(base, cross, 0.10)
    except SystemExit:
        pass
    else:
        raise AssertionError("cross-scale compare must be refused")

    fed_base = dict(base)
    fed_base["records"] = [
        {"metric": "failover_ms", "config": "standby=1", "value": 5000.0},
        {"metric": "delegation_rate", "config": "standby=1", "value": 1.0},
    ]
    fed_ok = dict(fed_base)
    fed_ok["records"] = [
        {"metric": "failover_ms", "config": "standby=1", "value": 5200.0},
        {"metric": "delegation_rate", "config": "standby=1", "value": 0.2},
    ]
    failures, _ = compare(fed_base, fed_ok, 0.10)
    assert not failures, (
        f"4% failover slowdown + any delegation-rate change must pass: "
        f"{failures}")
    fed_bad = dict(fed_base)
    fed_bad["records"] = [
        {"metric": "failover_ms", "config": "standby=1", "value": 6000.0},
    ]
    failures, _ = compare(fed_base, fed_bad, 0.10)
    assert failures, "20% failover slowdown must fail a 10% threshold"

    budgeted = dict(base)
    budgeted["records"] = [
        {"metric": "overhead", "config": "budget=5,path=scrape", "value": 4.2},
    ]
    failures, _ = compare(base, budgeted, 0.10)
    assert not failures, f"4.2 must pass a declared budget of 5: {failures}"
    blown = dict(base)
    blown["records"] = [
        {"metric": "overhead", "config": "budget=5,path=scrape", "value": 5.4},
    ]
    failures, _ = compare(base, blown, 0.10)
    assert failures, "5.4 must fail a declared budget of 5"
    print("bench_compare self-test: PASS")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed relative slowdown (default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in assertions and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    failures, lines = compare(baseline, candidate, args.threshold)

    print(f"bench_compare: {args.baseline} vs {args.candidate} "
          f"(threshold {args.threshold * 100:.0f}%)")
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAIL: {len(failures)} timing regression(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nPASS: no timing regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
