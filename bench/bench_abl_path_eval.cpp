// Ablation: paper-faithful exhaustive path enumeration vs the O(H*E)
// hop-bounded DP evaluator for Trmin (see DESIGN.md §5.1).
// Both compute identical Trmin; the DP removes the exponential max-hop
// blow-up that dominates Figs 8/10 — quantified here.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/placement.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Ablation — Trmin evaluator: enumeration vs hop-bounded DP",
      "identical optima; DP removes the exponential max-hop cost");

  const std::size_t runs = bench::iterations(20, 5);
  util::Table table("evaluator comparison");
  table.set_precision(6).header({"k", "max_hop", "enum_s", "dp_s", "speedup",
                                 "max_trmin_diff"});

  for (std::uint32_t k : {4u, 8u}) {
    for (std::uint32_t hops : {4u, 6u, 8u}) {
      util::RunningStats enum_s, dp_s;
      double worst_diff = 0.0;
      util::Rng root(bench::base_seed() + k * 100 + hops);
      for (std::size_t i = 0; i < runs; ++i) {
        util::Rng rng = root.fork(i);
        core::Nmdb nmdb = bench::fat_tree_scenario(k, rng);
        core::PlacementOptions enum_opt;
        enum_opt.max_hops = hops;
        enum_opt.evaluator = net::EvaluatorMode::kEnumerate;
        core::PlacementOptions dp_opt = enum_opt;
        dp_opt.evaluator = net::EvaluatorMode::kHopBoundedDp;

        util::Timer timer;
        const core::PlacementProblem a = build_placement_problem(nmdb, enum_opt);
        enum_s.add(timer.seconds());
        timer.restart();
        const core::PlacementProblem b = build_placement_problem(nmdb, dp_opt);
        dp_s.add(timer.seconds());
        for (std::size_t cell = 0; cell < a.trmin.size(); ++cell) {
          if (a.trmin[cell] == solver::kInfinity ||
              b.trmin[cell] == solver::kInfinity) {
            if (a.trmin[cell] != b.trmin[cell]) worst_diff = 1e9;
            continue;
          }
          worst_diff =
              std::max(worst_diff, std::abs(a.trmin[cell] - b.trmin[cell]));
        }
      }
      table.row({static_cast<std::int64_t>(k), static_cast<std::int64_t>(hops),
                 enum_s.mean(), dp_s.mean(),
                 dp_s.mean() > 0 ? enum_s.mean() / dp_s.mean() : 0.0,
                 worst_diff});
    }
  }
  bench::emit(table);
  std::cout << "\nexpectation: max_trmin_diff ~ 0 (same optima); speedup "
               "grows with k and max_hop\n";
  return 0;
}
