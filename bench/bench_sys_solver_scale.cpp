// System bench: solver & path-engine scaling (DESIGN.md §13).
//
// Three scales, one pipeline — the shared-frontier Trmin evaluator feeding
// the chunked-parallel row fill, the dirty-aware cache, and the dirty-basis
// transportation re-solve:
//
//   fat-tree k=16  320 nodes / 2048 links — the paper's large evaluation
//                  topology; sanity scale for the trajectory.
//   fat-tree k=32  1280 nodes / 16384 links — production-scale fabric.
//                  Acceptance: steady-state placement cycle < 25 ms.
//   random-100k    10^5 nodes / 1.5*10^5 links — hardware-agnostic sprawl
//                  (§III's "various network topologies"). Acceptance: the
//                  cold build + solve completes (no OOM, no hour-long
//                  enumeration); timing is recorded, not gated.
//
// Fat-tree runs measure a churned steady state: cold first cycle, then
// `cycles` jittered cycles served by the incremental machinery. Results land
// in BENCH_solver_scale.json (dust-bench-v1); per-record configs carry
// nodes=/edges= so bench_compare.py refuses cross-scale comparisons.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "net/response_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace dust;

struct ScaleStats {
  std::string label;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t busy = 0;
  std::size_t candidates = 0;
  double cold_ms = 0.0;    ///< first full build + solve
  double steady_ms = 0.0;  ///< per churned cycle, incremental pipeline
  double hit_rate = 0.0;
  std::size_t dirty_resolves = 0;
  std::size_t warm_solves = 0;
};

void jitter(net::NetworkState& net, util::Rng& rng) {
  // 10% of links drift <= 3% per cycle — inside the 5% link-epsilon band,
  // the telemetry steady state the incremental pipeline targets (the same
  // regime bench_sys_incremental_cycle gates its speedup on).
  const std::size_t count = net.edge_count() / 10;
  for (std::size_t i = 0; i < count; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
    net::LinkState state = net.link(e);
    state.utilization =
        std::clamp(state.utilization * rng.uniform(0.97, 1.03), 0.01, 1.0);
    net.set_link(e, state);
  }
}

core::OptimizerOptions pipeline_options(net::ResponseTimeCache* cache,
                                        std::uint32_t max_hops) {
  core::OptimizerOptions options;
  options.placement.max_hops = max_hops;
  options.placement.evaluator = net::EvaluatorMode::kSharedFrontier;
  options.placement.parallel_trmin = true;
  options.placement.response_cache = cache;
  options.allow_partial = true;
  options.warm_start = true;
  return options;
}

ScaleStats run_fat_tree(std::uint32_t k, std::size_t cycles,
                        std::uint32_t max_hops) {
  util::Rng rng(bench::base_seed());
  core::Nmdb nmdb = bench::fat_tree_scenario(k, rng);
  nmdb.network().set_link_epsilon(0.05);

  net::ResponseTimeCache cache;
  cache.set_lu_quantum(0.50);
  cache.set_reprice_epsilon(0.10);
  const core::OptimizationEngine engine(pipeline_options(&cache, max_hops));

  ScaleStats stats;
  stats.label = "fat-tree-k" + std::to_string(k);
  stats.nodes = nmdb.network().node_count();
  stats.edges = nmdb.network().edge_count();

  util::Timer cold_timer;
  cache.begin_cycle(nmdb.network());
  core::PlacementProblem problem;
  (void)engine.run(nmdb, &problem);
  stats.cold_ms = cold_timer.millis();
  stats.busy = problem.busy.size();
  stats.candidates = problem.candidates.size();

  util::Timer timer;
  for (std::size_t c = 0; c < cycles; ++c) {
    jitter(nmdb.network(), rng);
    cache.begin_cycle(nmdb.network());
    (void)engine.run(nmdb);
  }
  stats.steady_ms = timer.millis() / static_cast<double>(cycles);
  stats.hit_rate = cache.stats().hit_rate();
  stats.dirty_resolves = engine.dirty_resolves();
  stats.warm_solves = engine.warm_solves();
  return stats;
}

ScaleStats run_random_100k(std::size_t node_count, std::size_t busy_count,
                           std::size_t candidate_count) {
  util::Rng rng(bench::base_seed());
  graph::Graph graph = graph::make_random_connected(
      static_cast<std::uint32_t>(node_count),
      static_cast<std::uint32_t>(node_count / 2), rng);
  net::NetworkState state(std::move(graph));
  net::randomize_links(state, net::LinkProfile{}, rng);
  // Controlled busy/candidate sets: everyone neutral (not busy, not spare),
  // then a scatter of overloaded sources and underloaded destinations. The
  // matrix is busy_count x candidate_count; the path engine still sweeps
  // the full 10^5-node graph once per busy row.
  for (graph::NodeId v = 0; v < state.node_count(); ++v) {
    state.set_node_utilization(v, 70.0);
    state.set_monitoring_data_mb(v, 50.0);
  }
  for (std::size_t i = 0; i < busy_count; ++i)
    state.set_node_utilization(static_cast<graph::NodeId>(rng.below(node_count)),
                               90.0);
  for (std::size_t i = 0; i < candidate_count; ++i) {
    const auto v = static_cast<graph::NodeId>(rng.below(node_count));
    if (state.node_utilization(v) < 85.0) state.set_node_utilization(v, 30.0);
  }
  core::Nmdb nmdb(std::move(state), core::Thresholds{});

  // Hop bound 20 covers the typical inter-node distance of the random
  // topology (~16 at average degree 3) while bounding the frontier sweep's
  // layer memory to 20 rows per worker.
  const core::OptimizationEngine engine(pipeline_options(nullptr, 20));

  ScaleStats stats;
  stats.label = "random-100k";
  stats.nodes = nmdb.network().node_count();
  stats.edges = nmdb.network().edge_count();

  util::Timer cold_timer;
  core::PlacementProblem problem;
  (void)engine.run(nmdb, &problem);
  stats.cold_ms = cold_timer.millis();
  stats.busy = problem.busy.size();
  stats.candidates = problem.candidates.size();
  return stats;
}

void write_json(const std::vector<ScaleStats>& rows, std::size_t cycles) {
  bench::JsonReport json("solver_scale");
  {
    // Top-level topology records the gated scale (k=32); per-record configs
    // carry each row's own nodes=/edges= so cross-scale diffs are refused
    // per record too.
    const graph::FatTree topo(32);
    json.set_topology(topo.graph().node_count(), topo.graph().edge_count());
  }
  for (const ScaleStats& row : rows) {
    const std::string config =
        "topology=" + row.label + ",nodes=" + std::to_string(row.nodes) +
        ",edges=" + std::to_string(row.edges) +
        ",cycles=" + std::to_string(cycles);
    json.add("cold_ms_per_cycle", row.cold_ms, "ms", config);
    if (row.steady_ms > 0.0) {
      json.add("steady_ms_per_cycle", row.steady_ms, "ms", config);
      json.add("cache_hit_rate", row.hit_rate, "ratio", config);
      json.add("dirty_resolves", static_cast<double>(row.dirty_resolves),
               "count", config);
      json.add("warm_solves", static_cast<double>(row.warm_solves), "count",
               config);
    }
    json.add("busy_nodes", static_cast<double>(row.busy), "count", config);
    json.add("candidate_nodes", static_cast<double>(row.candidates), "count",
             config);
  }
  json.write();
}

}  // namespace

int main() {
  bench::print_header(
      "System — solver & path-engine scaling (k=16 / k=32 / random-100k)",
      "(acceptance: k=32 steady-state cycle < 25 ms; 100k-node cold solve "
      "completes)");
  std::cout << "# pool: " << util::global_pool().size() << " workers"
            << " (size via DUST_THREADS)\n";

  const std::size_t cycles = bench::iterations(100, 20);
  std::vector<ScaleStats> rows;
  rows.push_back(run_fat_tree(16, cycles, 4));
  rows.push_back(run_fat_tree(32, cycles, 4));
  rows.push_back(run_random_100k(100000, 64, 2000));

  util::Table table("solver & path-engine scaling");
  table.set_precision(3).header({"scale", "nodes", "edges", "busy", "cand",
                                 "cold ms", "steady ms/cycle", "hit rate",
                                 "dirty resolves"});
  for (const ScaleStats& row : rows)
    table.row({row.label, static_cast<double>(row.nodes),
               static_cast<double>(row.edges), static_cast<double>(row.busy),
               static_cast<double>(row.candidates), row.cold_ms, row.steady_ms,
               row.hit_rate, static_cast<double>(row.dirty_resolves)});
  bench::emit(table);
  write_json(rows, cycles);

  const double k32_steady = rows[1].steady_ms;
  const bool k32_ok = k32_steady < 25.0;
  std::cout << "\nk=32 steady-state " << (k32_ok ? "PASS" : "FAIL") << ": "
            << k32_steady << " ms/cycle (budget < 25 ms)\n";
  const bool random_ok = rows.size() > 2 && rows[2].cold_ms > 0.0;
  std::cout << "random-100k cold solve " << (random_ok ? "PASS" : "FAIL")
            << ": " << (rows.size() > 2 ? rows[2].cold_ms : 0.0) << " ms ("
            << (rows.size() > 2 ? rows[2].busy : 0) << " busy x "
            << (rows.size() > 2 ? rows[2].candidates : 0) << " candidates)\n";
  return k32_ok && random_ok ? 0 : 1;
}
