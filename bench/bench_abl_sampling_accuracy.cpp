// Ablation: legacy sampled telemetry (sFlow-style 1-in-N) vs DUST's full
// in-device counting. The paper's premise — "existing telemetry faces the
// dilemma between resource efficiency and full accuracy" — measured: per-VNI
// estimation error and work done (packets touched) across sampling rates,
// on a skewed (elephant/mice) VxLAN traffic mix.
#include <iostream>

#include "bench_common.hpp"
#include "telemetry/sampled_flow.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Ablation — sampled telemetry vs full in-device counting",
      "sampling saves work but loses mice flows; full counting is exact "
      "(the accuracy side of the paper's dilemma)");

  const std::size_t packets = bench::iterations(200000, 40000);
  util::Rng traffic(bench::base_seed());

  // Skewed VNI popularity: VNI 0 is the elephant, higher VNIs get rare.
  auto draw_vni = [&traffic]() -> std::uint32_t {
    const double u = traffic.uniform();
    if (u < 0.70) return 0;
    if (u < 0.90) return 1;
    if (u < 0.97) return 2;
    if (u < 0.995) return 3;
    return 4;  // mouse: ~0.5% of traffic
  };

  std::vector<telemetry::ParsedPacket> trace;
  trace.reserve(packets);
  telemetry::FlowCounter truth;
  for (std::size_t i = 0; i < packets; ++i) {
    const auto bytes = telemetry::build_vxlan_packet(
        draw_vni(), 0x0a000001, 0x0a000002, traffic.below(256));
    trace.push_back(*telemetry::parse_packet(bytes));
    truth.add(trace.back());
  }

  util::Table table("sampling-rate sweep (" + std::to_string(packets) +
                    " packets, 5 VNIs incl. one mouse flow)");
  table.set_precision(3).header({"sampling", "packets_touched",
                                 "mean_per_vni_error", "mouse_flow_seen"});
  for (std::uint32_t rate : {1u, 8u, 64u, 512u, 4096u}) {
    telemetry::SampledFlowCollector collector(
        rate, util::Rng(bench::base_seed() ^ rate));
    for (const auto& packet : trace) collector.offer(packet);
    const auto estimate = collector.estimate();
    table.row({std::string(rate == 1 ? "full (DUST agent)"
                                     : "1-in-" + std::to_string(rate)),
               static_cast<std::int64_t>(collector.sampled()),
               telemetry::estimation_error(truth, estimate),
               std::string(estimate.count(4) ? "yes" : "LOST")});
  }
  bench::emit(table);
  std::cout << "\nexpectation: error grows with the rate; the mouse flow "
               "disappears at aggressive rates while full counting stays "
               "exact — the accuracy DUST preserves by offloading instead "
               "of sampling\n";
  return 0;
}
