// Figure 9: success-rate comparison of the ILP optimization vs the one-hop
// heuristic (Algorithm 1) on the 4-k fat-tree over random iterations.
// Paper (100 iterations): heuristic fully offloaded everything in 18.37% of
// iterations, failed entirely in 6.13% (where optimization succeeded), and
// partially offloaded in the remaining 75.5%.
#include <iostream>

#include "bench_common.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 9 — optimization vs heuristic success rate (4-k fat-tree)",
      "heuristic: ~18.4% full, ~75.5% partial, ~6.1% none (opt succeeds)");

  const std::size_t runs = bench::iterations(1000, 200);
  std::size_t full = 0, partial = 0, none = 0, skipped = 0;
  util::RunningStats hfr;

  // The paper does not state its load distribution; the default profile
  // (loads uniform in [10, 100]) leaves candidates with large spare
  // capacity, which inflates the heuristic full-offload share. A
  // contended profile — loads uniform in [35, 100], so candidates hold at
  // most 25 points of spare and busy nodes compete for them — reproduces
  // the paper's full/partial/none shape (see EXPERIMENTS.md).
  net::NodeLoadProfile contended;
  contended.x_min = 35.0;

  util::Rng root(bench::base_seed());
  for (std::size_t i = 0; i < runs; ++i) {
    util::Rng rng = root.fork(i);
    net::NetworkState state = net::make_random_state(
        graph::FatTree(4).graph(), net::LinkProfile{}, contended, rng);
    core::Nmdb nmdb(std::move(state), core::Thresholds{});
    // Condition on iterations where the full optimization succeeds, as the
    // paper does (io-rate iterations are Figure 7's subject).
    core::OptimizerOptions options;
    options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    const core::PlacementResult opt = core::OptimizationEngine(options).run(nmdb);
    if (!opt.optimal() || nmdb.busy_nodes().empty()) {
      ++skipped;
      continue;
    }
    const core::HeuristicResult h = core::HeuristicEngine().run(nmdb);
    hfr.add(h.hfr_percent());
    if (h.complete())
      ++full;
    else if (h.total_cse >= h.total_cs - 1e-9)
      ++none;
    else
      ++partial;
  }

  const double counted = static_cast<double>(full + partial + none);
  util::Table table("Figure 9 — heuristic outcome distribution");
  table.set_precision(2).header({"outcome", "share_%", "paper_%"});
  table.row({std::string("fully offloaded by heuristic"),
             100.0 * full / counted, 18.37});
  table.row({std::string("partially offloaded"), 100.0 * partial / counted,
             75.5});
  table.row({std::string("nothing offloaded (opt succeeds)"),
             100.0 * none / counted, 6.13});
  bench::emit(table);

  util::Table extra("supporting measurements");
  extra.set_precision(2).header({"metric", "value"});
  extra.row({std::string("iterations counted"),
             static_cast<std::int64_t>(counted)});
  extra.row({std::string("iterations skipped (opt infeasible / no busy)"),
             static_cast<std::int64_t>(skipped)});
  extra.row({std::string("mean HFR (%)"), hfr.mean()});
  bench::emit(extra);

  std::cout << "\nexpectation: partial dominates (>50%), full and none are "
               "minorities — the paper's 18.4/75.5/6.1 split shape\n";
  return 0;
}
