// Micro-benchmarks (google-benchmark) for the hot substrate paths: Gorilla
// compression, TSDB queries, hop-bounded path evaluation, and the full
// placement pipeline at small scale.
#include <benchmark/benchmark.h>

#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace {

using namespace dust;

void BM_GorillaAppend(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<telemetry::Sample> samples;
  double v = 50.0;
  for (int i = 0; i < 1024; ++i) {
    v += rng.uniform(-0.5, 0.5);
    samples.push_back({1000LL * i, v});
  }
  for (auto _ : state) {
    telemetry::CompressedBlock block;
    for (const auto& s : samples) block.append(s);
    benchmark::DoNotOptimize(block.compressed_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_GorillaDecode(benchmark::State& state) {
  util::Rng rng(1);
  telemetry::CompressedBlock block;
  double v = 50.0;
  for (int i = 0; i < 1024; ++i) {
    v += rng.uniform(-0.5, 0.5);
    block.append({1000LL * i, v});
  }
  for (auto _ : state) benchmark::DoNotOptimize(block.decode());
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_TsdbRangeQuery(benchmark::State& state) {
  telemetry::Tsdb db;
  const auto id = db.register_metric({"cpu", "%", telemetry::MetricKind::kGauge});
  util::Rng rng(2);
  for (int i = 0; i < 100000; ++i)
    db.append(id, {100LL * i, rng.uniform(0, 100)});
  for (auto _ : state)
    benchmark::DoNotOptimize(db.query(id, 5000000, 6000000));
}

void BM_HopBoundedDp(benchmark::State& state) {
  const graph::FatTree ft(static_cast<std::uint32_t>(state.range(0)));
  std::vector<double> cost(ft.graph().edge_count(), 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::hop_bounded_min_cost(ft.graph(), 0, cost, 6));
}
BENCHMARK(BM_HopBoundedDp)->Arg(4)->Arg(8)->Arg(16);

void BM_PathEnumeration(benchmark::State& state) {
  const graph::FatTree ft(4);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::count_simple_paths(
        ft.graph(), ft.edge_switch(0, 0), ft.edge_switch(1, 0),
        static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_PathEnumeration)->Arg(4)->Arg(6)->Arg(8);

core::Nmdb bench_scenario(std::uint32_t k) {
  util::Rng rng(7);
  net::NetworkState s = net::make_random_state(
      graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  return core::Nmdb(std::move(s), core::Thresholds{});
}

void BM_PlacementPipelineDp(benchmark::State& state) {
  core::Nmdb nmdb = bench_scenario(static_cast<std::uint32_t>(state.range(0)));
  core::OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.allow_partial = true;
  const core::OptimizationEngine engine(options);
  for (auto _ : state) benchmark::DoNotOptimize(engine.run(nmdb));
}
BENCHMARK(BM_PlacementPipelineDp)->Arg(4)->Arg(8);

void BM_HeuristicEngine(benchmark::State& state) {
  core::Nmdb nmdb = bench_scenario(static_cast<std::uint32_t>(state.range(0)));
  const core::HeuristicEngine engine;
  for (auto _ : state) benchmark::DoNotOptimize(engine.run(nmdb));
}
BENCHMARK(BM_HeuristicEngine)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK(BM_GorillaAppend);
BENCHMARK(BM_GorillaDecode);
BENCHMARK(BM_TsdbRangeQuery);

}  // namespace

BENCHMARK_MAIN();
