// System bench: the federated control plane (DESIGN.md §16).
//
// Two measurements on in-process shard fleets (same FederatedManager state
// machines the daemons run, wired through a synchronous frame router):
//
//  1. Steady-state federation: a ring split into S shards where every
//     "hot" shard overflows its domain by design (one node at 95 %, local
//     spare 8, residual 7 delegated) and every "cool" shard has spare to
//     grant. Reports wall-clock fed_ms_per_cycle (all shards' solves +
//     delegation sweeps per federated cycle) and the delegation telemetry:
//     delegation_rate (confirmed grants per cycle) and delegated_share
//     (fraction of placed capacity that crossed a domain cut).
//
//  2. Failover: kill the shard-0 primary mid-run with a standby watching.
//     failover_detect_ms is the sim time from the last primary frame to
//     the standby's silence verdict (the configured timeout plus digest
//     phase slack); failover_ms adds takeover, client re-home, and the
//     re-solve until every pre-crash placement (including the cross-domain
//     delegation) is acknowledged again. Sim-time, so deterministic.
//
// Output: the usual table plus BENCH_federation.json (dust-bench-v1).
// scripts/bench_compare.py regression-checks fed_ms_per_cycle and
// failover*_ms; delegation_rate/delegated_share ride along informationally.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "federation/federated_manager.hpp"
#include "federation/partition.hpp"
#include "graph/topology.hpp"
#include "net/network_state.hpp"
#include "sim/transport.hpp"
#include "util/table.hpp"

namespace dust::bench {
namespace {

using federation::DomainPartition;
using federation::FederatedManager;
using federation::FederatedManagerConfig;

FederatedManagerConfig fed_config(std::uint32_t shard) {
  FederatedManagerConfig config;
  config.shard = shard;
  config.digest_period_ms = 1000;
  config.digest_stale_ms = 5000;
  config.primary_silence_timeout_ms = 3000;
  config.manager.update_interval_ms = 500;
  config.manager.placement_period_ms = 2000;  // federated cycle period
  config.manager.keepalive_timeout_ms = 4000;
  config.manager.keepalive_check_period_ms = 500;
  return config;
}

/// S shards over a ring on one simulator. Even shards are "hot" (first
/// member 95 % busy, second the only candidate with spare 8 — residual 7
/// must cross the cut), odd shards "cool" (all members 30 %, plenty of
/// spare to grant). Every federated cycle therefore exercises the full
/// digest -> request -> grant -> adopt pipeline.
struct Fleet {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  DomainPartition partition;
  std::vector<std::unique_ptr<FederatedManager>> shards;
  std::vector<std::unique_ptr<core::DustClient>> clients;

  Fleet(std::uint32_t nodes, std::size_t shard_count) {
    net::NetworkState state(graph::make_ring(nodes));
    partition = federation::partition_balanced(state.graph(), shard_count);
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      shards.push_back(std::make_unique<FederatedManager>(
          sim, transport, core::Nmdb(state, core::Thresholds{}), partition,
          fed_config(s)));
      shards.back()->set_peer_sender(
          [this](wire::Frame&& frame) { return route(std::move(frame)); });
    }
    for (std::uint32_t s = 0; s < shard_count; ++s)
      for (std::uint32_t t = 0; t < shard_count; ++t)
        if (s != t) shards[s]->add_peer(t);
    for (graph::NodeId v = 0; v < nodes; ++v) {
      clients.push_back(std::make_unique<core::DustClient>(
          sim, transport, v,
          core::ClientConfig{
              .keepalive_interval_ms = 1000,
              .manager =
                  federation::shard_manager_endpoint(partition.shard_of(v))},
          util::Rng(100 + v)));
      clients.back()->set_reported_state(load_of(v), 10.0, 10);
    }
  }

  [[nodiscard]] double load_of(graph::NodeId v) const {
    const std::uint32_t s = partition.shard_of(v);
    if (s % 2 == 1) return 30.0;  // cool shard: grantable spare everywhere
    const std::vector<graph::NodeId>& members = partition.members[s];
    if (v == members[0]) return 95.0;  // hot: excess 15
    if (v == members[1]) return 52.0;  // lone local candidate: spare 8
    return 70.0;                       // neutral
  }

  bool route(wire::Frame&& frame) {
    for (auto& shard : shards) {
      if (shard == nullptr) continue;
      const std::string endpoint =
          shard->primary()
              ? federation::federation_endpoint(shard->shard())
              : federation::standby_federation_endpoint(shard->shard());
      if (frame.to == endpoint) {
        shard->handle_peer_frame(std::move(frame));
        return true;
      }
    }
    if (extra_receiver && frame.to == extra_endpoint) {
      extra_receiver->handle_peer_frame(std::move(frame));
      return true;
    }
    return false;
  }

  void start_all() {
    for (auto& client : clients) client->start();
    for (auto& shard : shards) shard->start();
  }

  FederatedManager* extra_receiver = nullptr;  ///< the standby, when present
  std::string extra_endpoint;
};

struct SteadyResult {
  double ms_per_cycle = 0.0;
  double delegation_rate = 0.0;
  double delegated_share = 0.0;
  std::uint64_t stale_frames = 0;
};

SteadyResult run_steady(std::uint32_t nodes, std::size_t shard_count,
                        std::size_t cycles) {
  Fleet fleet(nodes, shard_count);
  fleet.start_all();
  const std::int64_t cycle_ms =
      fed_config(0).manager.placement_period_ms;
  fleet.sim.run_until(2 * cycle_ms);  // settle: STATs in, first solves done

  const auto t0 = std::chrono::steady_clock::now();
  fleet.sim.run_until(fleet.sim.now() +
                      static_cast<std::int64_t>(cycles) * cycle_ms);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  SteadyResult result;
  result.ms_per_cycle = wall_ms / static_cast<double>(cycles);
  double placed = 0.0;
  double delegated = 0.0;
  std::uint64_t confirmed = 0;
  for (auto& shard : fleet.shards) {
    confirmed += shard->stats().delegations_confirmed;
    result.stale_frames += shard->stats().stale_frames_rejected;
    for (const core::ActiveOffload& offload :
         shard->manager().active_offloads()) {
      if (offload.external_origin) continue;  // counted on the origin side
      placed += offload.amount;
      if (offload.external_destination) delegated += offload.amount;
    }
  }
  result.delegation_rate =
      static_cast<double>(confirmed) / static_cast<double>(cycles);
  result.delegated_share = placed > 0.0 ? delegated / placed : 0.0;
  return result;
}

struct FailoverResult {
  double detect_ms = 0.0;  ///< last primary frame -> silence verdict
  double total_ms = 0.0;   ///< kill -> every placement acknowledged again
};

FailoverResult run_failover(std::uint32_t nodes) {
  Fleet fleet(nodes, 2);
  // Standby twin of shard 0 on its own transport, fed by observer copies —
  // the watch phase of the daemon deployment.
  sim::Transport standby_transport{fleet.sim, util::Rng(99)};
  net::NetworkState blank(graph::make_ring(nodes));
  FederatedManagerConfig standby_config = fed_config(0);
  standby_config.standby = true;
  FederatedManager standby(fleet.sim, standby_transport,
                           core::Nmdb(blank, core::Thresholds{}),
                           fleet.partition, standby_config);
  standby.set_peer_sender(
      [&fleet](wire::Frame&& frame) { return fleet.route(std::move(frame)); });
  standby.add_peer(1);
  fleet.shards[0]->add_observer(federation::standby_federation_endpoint(0));
  fleet.extra_receiver = &standby;
  fleet.extra_endpoint = federation::standby_federation_endpoint(0);

  fleet.start_all();
  standby.start();
  fleet.sim.run_until(3 * fed_config(0).manager.placement_period_ms);
  const std::size_t placements_before =
      fleet.shards[0]->manager().active_offload_count();

  // Primary dies: all its periodic tasks stop, nothing it owns fires again.
  // The husk stays allocated until the successor re-registers the shared
  // endpoint names (register-replaces semantics, stale unregister is a
  // no-op), mirroring a crashed process whose port the standby re-binds.
  const sim::TimeMs t_kill = fleet.sim.now();
  const std::uint64_t seen_epoch = standby.peer_epoch(0);
  fleet.shards[0]->stop();

  while (!standby.primary_silent())
    fleet.sim.run_until(fleet.sim.now() + 10);
  const sim::TimeMs t_detect = fleet.sim.now();

  // Takeover: a fresh primary for shard 0 on the fleet transport (the
  // daemon constructs it against the re-bound port), epoch fenced past
  // everything the dead primary said; clients re-home to it.
  net::NetworkState zero(graph::make_ring(nodes));
  FederatedManagerConfig takeover_config = fed_config(0);
  takeover_config.standby = true;  // become_primary() flips standbys only
  takeover_config.epoch = std::max<std::uint64_t>(seen_epoch, 1);
  auto new_primary = std::make_unique<FederatedManager>(
      fleet.sim, fleet.transport, core::Nmdb(zero, core::Thresholds{}),
      fleet.partition, takeover_config);
  new_primary->set_peer_sender(
      [&fleet](wire::Frame&& frame) { return fleet.route(std::move(frame)); });
  new_primary->add_peer(1);
  fleet.shards[0] = std::move(new_primary);  // successor registered; husk freed
  fleet.shards[0]->become_primary();
  for (graph::NodeId v : fleet.partition.members[0])
    fleet.clients[v]->rehome();

  const auto restored = [&] {
    const std::vector<core::ActiveOffload> offloads =
        fleet.shards[0]->manager().active_offloads();
    if (offloads.size() < placements_before) return false;
    return std::all_of(
        offloads.begin(), offloads.end(),
        [](const core::ActiveOffload& o) { return o.acknowledged; });
  };
  while (!restored())
    fleet.sim.run_until(fleet.sim.now() + 10);

  FailoverResult result;
  result.detect_ms = static_cast<double>(t_detect - t_kill);
  result.total_ms = static_cast<double>(fleet.sim.now() - t_kill);
  return result;
}

}  // namespace
}  // namespace dust::bench

int main() {
  using namespace dust;
  using namespace dust::bench;

  print_header("sys_federation",
               "sharded managers keep per-domain solves small while "
               "delegating overflow across domains; failover restores the "
               "fleet within the silence timeout plus one cycle");

  const std::uint32_t nodes = 48;
  const std::size_t cycles = iterations(50, 15);
  JsonReport report("federation");
  report.set_topology(nodes, nodes);  // ring: one edge per node

  util::Table table("federated steady state (ring-48)");
  table.header(
      {"shards", "fed_ms_per_cycle", "delegation_rate", "delegated_share"});
  for (const std::uint32_t shard_count : {2u, 4u}) {
    const SteadyResult steady = run_steady(nodes, shard_count, cycles);
    const std::string config = "topology=ring-" + std::to_string(nodes) +
                               ",shards=" + std::to_string(shard_count) +
                               ",cycles=" + std::to_string(cycles);
    report.add("fed_ms_per_cycle", steady.ms_per_cycle, "ms", config);
    report.add("delegation_rate", steady.delegation_rate, "per-cycle",
               config);
    report.add("delegated_share", steady.delegated_share, "ratio", config);
    report.add("stale_frames", static_cast<double>(steady.stale_frames),
               "count", config);
    table.row({static_cast<std::int64_t>(shard_count), steady.ms_per_cycle,
               steady.delegation_rate, steady.delegated_share});
  }
  emit(table);

  const FailoverResult failover = run_failover(12);
  const std::string failover_config =
      "topology=ring-12,shards=2,standby=1,silence_timeout_ms=3000";
  report.add("failover_detect_ms", failover.detect_ms, "sim-ms",
             failover_config);
  report.add("failover_ms", failover.total_ms, "sim-ms", failover_config);
  util::Table failover_table("failover (ring-12, standby takeover)");
  failover_table.header({"failover_detect_ms", "failover_ms"});
  failover_table.row({failover.detect_ms, failover.total_ms});
  emit(failover_table);

  report.write();
  return 0;
}
