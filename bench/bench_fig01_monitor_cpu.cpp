// Figure 1: CPU utilization of the in-device monitoring module over time on
// an 8-core switch under ~20% line-rate VxLAN overlay traffic.
// Paper: ~100% of one core on average, spiking as high as ~600%.
#include <iostream>

#include "bench_common.hpp"
#include "sim/node.hpp"
#include "sim/overlay_traffic.hpp"
#include "telemetry/agent.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 1 — monitoring-module CPU under 20% line-rate VxLAN",
      "average ~100% of one core, spikes up to ~600% (8-core DUT)");

  const std::size_t seconds = bench::iterations(3600, 600);
  sim::MonitoredNode node("dut", sim::NodeResources{8, 16384.0}, 15.0,
                          0.62 * 16384.0);
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  sim::OverlayTraffic traffic{sim::OverlayTrafficProfile{}};
  util::Rng rng(bench::base_seed());

  util::RunningStats cpu;
  std::vector<double> series;
  series.reserve(seconds);
  for (std::size_t t = 0; t < seconds; ++t) {
    const sim::TrafficTick tick = traffic.next(rng);
    const sim::TickStats stats = node.tick(
        static_cast<std::int64_t>(t) * 1000, 1000, tick.rx_mbps, tick.tx_mbps,
        rng);
    const double module_percent = stats.monitor_cpu_cores * 100.0;
    cpu.add(module_percent);
    series.push_back(module_percent);
  }

  // Time series (downsampled) — the figure's visual shape.
  util::Table trace("monitoring module CPU over time (downsampled)");
  trace.set_precision(1).header({"t_sec", "module_cpu_percent"});
  const std::size_t step = std::max<std::size_t>(1, seconds / 40);
  for (std::size_t t = 0; t < seconds; t += step)
    trace.row({static_cast<std::int64_t>(t), series[t]});
  bench::emit(trace);

  util::Table summary("Figure 1 summary");
  summary.set_precision(1).header({"metric", "value"});
  summary.row({std::string("mean (% of one core)"), cpu.mean()});
  summary.row({std::string("p95"), util::percentile(series, 95)});
  summary.row({std::string("max (paper: ~600)"), cpu.max()});
  summary.row({std::string("ticks"), static_cast<std::int64_t>(cpu.count())});
  bench::emit(summary);

  std::cout << "\nexpectation: mean within ~0.9-1.8 cores, max > 400%\n";
  return 0;
}
