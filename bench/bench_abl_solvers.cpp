// Ablation (google-benchmark): the four exact placement backends on random
// transportation instances of growing size. All return the same optimum
// (asserted in tests); this bench quantifies the cost of generality —
// transportation simplex < min-cost-flow << general simplex/B&B.
#include <benchmark/benchmark.h>

#include "solver/branch_and_bound.hpp"
#include "solver/min_cost_flow.hpp"
#include "solver/simplex.hpp"
#include "solver/transportation.hpp"
#include "util/rng.hpp"

namespace {

using namespace dust;

solver::TransportationProblem make_instance(std::size_t m, std::size_t n,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  solver::TransportationProblem p;
  double total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    p.supply.push_back(rng.uniform(1.0, 20.0));
    total += p.supply.back();
  }
  for (std::size_t j = 0; j < n; ++j)
    p.capacity.push_back(total / static_cast<double>(n) + rng.uniform(0.0, 10.0));
  for (std::size_t c = 0; c < m * n; ++c)
    p.cost.push_back(rng.uniform(0.01, 5.0));
  return p;
}

void BM_Transportation(benchmark::State& state) {
  const auto p = make_instance(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(solver::solve_transportation(p));
}

void BM_Simplex(benchmark::State& state) {
  const auto p = make_instance(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 42);
  const solver::LinearProgram lp = solver::to_linear_program(p);
  for (auto _ : state) benchmark::DoNotOptimize(solver::solve_simplex(lp));
}

void BM_BranchAndBound(benchmark::State& state) {
  const auto p = make_instance(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 42);
  const solver::LinearProgram lp = solver::to_linear_program(p);
  for (auto _ : state)
    benchmark::DoNotOptimize(solver::solve_branch_and_bound(lp));
}

void BM_MinCostFlow(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto p = make_instance(m, n, 42);
  for (auto _ : state) {
    solver::MinCostFlow mcf(m + n + 2);
    const std::size_t source = m + n, sink = m + n + 1;
    for (std::size_t i = 0; i < m; ++i)
      mcf.add_arc(source, i, p.supply[i], 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        mcf.add_arc(i, m + j, solver::kInfinity, p.cost[i * n + j]);
    for (std::size_t j = 0; j < n; ++j)
      mcf.add_arc(m + j, sink, p.capacity[j], 0.0);
    benchmark::DoNotOptimize(mcf.solve(source, sink));
  }
}

void SolverSizes(benchmark::internal::Benchmark* bench) {
  bench->Args({4, 8})->Args({10, 20})->Args({20, 40})->Args({40, 80});
}

BENCHMARK(BM_Transportation)->Apply(SolverSizes);
BENCHMARK(BM_MinCostFlow)->Apply(SolverSizes);
BENCHMARK(BM_Simplex)->Apply(SolverSizes);
BENCHMARK(BM_BranchAndBound)->Apply(SolverSizes);

}  // namespace

BENCHMARK_MAIN();
