// Figure 7: Infeasible-Optimization (io) rate vs Δ_io on the 4-k fat-tree.
// Paper: over 1000 iterations the io rate ranges from 69% at Δ_io = 0.8 down
// to 0.2% at Δ_io = 3.5; recommendation K_io >= 2.
//
// Δ_io = (COmax - x_min) / (100 - Cmax)  (Eq. 5). We sweep COmax with
// Cmax = 80, x_min = 10 fixed, so Δ_io = (COmax - 10) / 20.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 7 — infeasible-optimization rate vs Δ_io (4-k fat-tree)",
      "io rate 69% at Δ=0.8 falling to 0.2% at Δ=3.5; choose K_io >= 2");

  const std::size_t runs = bench::iterations(1000, 200);
  const double deltas[] = {0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};

  util::Table table("Figure 7 — io rate vs Δ_io");
  table.set_precision(2).header(
      {"delta_io", "co_max", "infeasible_%", "iterations"});

  for (double delta : deltas) {
    core::Thresholds thresholds;
    thresholds.c_max = 80.0;
    thresholds.x_min = 10.0;
    thresholds.co_max = 10.0 + 20.0 * delta;
    thresholds.validate();

    std::vector<int> infeasible(runs, 0);
    util::Rng root(bench::base_seed() + static_cast<std::uint64_t>(delta * 100));
    std::vector<util::Rng> streams;
    streams.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) streams.push_back(root.fork(i));

    util::global_pool().parallel_for(runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(4, streams[i], thresholds);
      core::OptimizerOptions options;
      options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
      const core::PlacementResult r = core::OptimizationEngine(options).run(nmdb);
      infeasible[i] = r.optimal() ? 0 : 1;
    });
    int total = 0;
    for (int x : infeasible) total += x;
    table.row({delta, thresholds.co_max,
               100.0 * total / static_cast<double>(runs),
               static_cast<std::int64_t>(runs)});
  }
  bench::emit(table);
  std::cout << "\nexpectation: io rate decreases monotonically in Δ_io; high "
               "(tens of %) below Δ=1, near zero at Δ >= 2\n";
  return 0;
}
