// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary prints the corresponding paper figure's series as a
// table on stdout. Iteration counts default to CI-friendly sizes; set
// DUST_BENCH_SCALE=full to run paper-scale sweeps (Figs 7-12 used 100-1000
// iterations in the paper).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/nmdb.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dust::bench {

inline bool full_scale() {
  const char* env = std::getenv("DUST_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

/// Iterations: paper-scale when DUST_BENCH_SCALE=full, else the CI default.
inline std::size_t iterations(std::size_t paper, std::size_t ci) {
  return full_scale() ? paper : ci;
}

inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("DUST_BENCH_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0x5eedu;
}

/// Random k-port fat-tree scenario matching §V-B: links 10 GbE with random
/// utilization, node loads uniform in [x_min, 100], default thresholds
/// (Cmax 80, COmax 60, x_min 10 — Δ_io = 2.5, inside the recommended band).
inline core::Nmdb fat_tree_scenario(std::uint32_t k, util::Rng& rng,
                                    core::Thresholds thresholds = {}) {
  net::NetworkState state =
      net::make_random_state(graph::FatTree(k).graph(), net::LinkProfile{},
                             net::NodeLoadProfile{}, rng);
  return core::Nmdb(std::move(state), thresholds);
}

/// Emit a result table; DUST_BENCH_FORMAT=csv switches every bench to
/// machine-readable CSV (for plotting) instead of aligned text.
inline void emit(const util::Table& table) {
  const char* format = std::getenv("DUST_BENCH_FORMAT");
  if (format != nullptr && std::string(format) == "csv")
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

inline void print_header(const std::string& name, const std::string& claim) {
  std::cout << "\n# " << name << "\n# paper: " << claim << "\n"
            << "# scale: " << (full_scale() ? "full (paper)" : "ci (default)")
            << " — set DUST_BENCH_SCALE=full for paper-scale iterations\n\n";
}

/// Machine-readable bench output: a BENCH_<name>.json file holding a flat
/// list of {name, metric, value, units, config} records — one record per
/// measured quantity, `config` identifying the variant/scenario it belongs
/// to ("pattern=steady-jitter", "obs=on", ...). Written to the working
/// directory unless DUST_BENCH_JSON_DIR points elsewhere. The uniform
/// schema lets CI diff any bench against a baseline with one parser.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& metric, double value, const std::string& units,
           const std::string& config = {}) {
    records_.push_back({metric, value, units, config});
  }

  /// Record the size of the topology the bench ran on; written as a
  /// top-level "topology" object so baseline diffs can refuse to compare
  /// runs taken at different scales.
  void set_topology(std::size_t nodes, std::size_t edges) {
    topology_nodes_ = nodes;
    topology_edges_ = edges;
    has_topology_ = true;
  }

  /// Path the report will be written to.
  [[nodiscard]] std::string path() const {
    std::string dir;
    if (const char* env = std::getenv("DUST_BENCH_JSON_DIR")) {
      dir = env;
      if (!dir.empty() && dir.back() != '/') dir += '/';
    }
    return dir + "BENCH_" + bench_name_ + ".json";
  }

  /// Write all records; returns the file path (empty on I/O failure).
  std::string write() const {
    const std::string file = path();
    std::ofstream os(file);
    if (!os) return {};
    os << "{\n  \"bench\": \"" << escape(bench_name_) << "\",\n"
       << "  \"schema\": \"dust-bench-v1\",\n";
    if (has_topology_)
      os << "  \"topology\": {\"nodes\": " << topology_nodes_
         << ", \"edges\": " << topology_edges_ << "},\n";
    os << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      os << "    {\"name\": \"" << escape(bench_name_) << "\", \"metric\": \""
         << escape(r.metric) << "\", \"value\": " << format(r.value)
         << ", \"units\": \"" << escape(r.units) << "\", \"config\": \""
         << escape(r.config) << "\"}" << (i + 1 < records_.size() ? "," : "")
         << "\n";
    }
    os << "  ]\n}\n";
    return file;
  }

 private:
  struct Record {
    std::string metric;
    double value = 0.0;
    std::string units;
    std::string config;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(static_cast<unsigned char>(ch) < 0x20 ? ' ' : ch);
    }
    return out;
  }
  static std::string format(double v) {
    std::ostringstream out;
    out.precision(9);
    out << v;
    return out.str();
  }

  std::string bench_name_;
  std::vector<Record> records_;
  std::size_t topology_nodes_ = 0;
  std::size_t topology_edges_ = 0;
  bool has_topology_ = false;
};

}  // namespace dust::bench
