// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary prints the corresponding paper figure's series as a
// table on stdout. Iteration counts default to CI-friendly sizes; set
// DUST_BENCH_SCALE=full to run paper-scale sweeps (Figs 7-12 used 100-1000
// iterations in the paper).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/nmdb.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dust::bench {

inline bool full_scale() {
  const char* env = std::getenv("DUST_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

/// Iterations: paper-scale when DUST_BENCH_SCALE=full, else the CI default.
inline std::size_t iterations(std::size_t paper, std::size_t ci) {
  return full_scale() ? paper : ci;
}

inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("DUST_BENCH_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0x5eedu;
}

/// Random k-port fat-tree scenario matching §V-B: links 10 GbE with random
/// utilization, node loads uniform in [x_min, 100], default thresholds
/// (Cmax 80, COmax 60, x_min 10 — Δ_io = 2.5, inside the recommended band).
inline core::Nmdb fat_tree_scenario(std::uint32_t k, util::Rng& rng,
                                    core::Thresholds thresholds = {}) {
  net::NetworkState state =
      net::make_random_state(graph::FatTree(k).graph(), net::LinkProfile{},
                             net::NodeLoadProfile{}, rng);
  return core::Nmdb(std::move(state), thresholds);
}

/// Emit a result table; DUST_BENCH_FORMAT=csv switches every bench to
/// machine-readable CSV (for plotting) instead of aligned text.
inline void emit(const util::Table& table) {
  const char* format = std::getenv("DUST_BENCH_FORMAT");
  if (format != nullptr && std::string(format) == "csv")
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

inline void print_header(const std::string& name, const std::string& claim) {
  std::cout << "\n# " << name << "\n# paper: " << claim << "\n"
            << "# scale: " << (full_scale() ? "full (paper)" : "ci (default)")
            << " — set DUST_BENCH_SCALE=full for paper-scale iterations\n\n";
}

}  // namespace dust::bench
