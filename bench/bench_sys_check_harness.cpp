// System bench: throughput of the dust::check property harness. Each
// iteration generates a seeded random scenario and drives it through the
// full Manager/Client protocol loop with invariant checks on every placement
// cycle and the differential oracles on size-gated cycles — the per-scenario
// cost is what bounds how many seeds the smoke gate can afford. Also
// reports the shrink cost of the injected-capacity-bug demo.
#include <chrono>

#include "bench_common.hpp"
#include "check/invariants.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "core/optimizer.hpp"
#include "util/table.hpp"

namespace dust {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool capacity_bug_caught(const check::ScenarioSpec& spec) {
  const core::Nmdb nmdb = check::build_nmdb(spec);
  core::PlacementOptions placement;
  placement.max_hops = spec.max_hops;
  placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const core::PlacementProblem problem =
      core::build_placement_problem(nmdb, placement);
  if (problem.busy.empty() || problem.candidates.empty()) return false;
  core::PlacementProblem buggy = problem;
  std::size_t target = 0;
  for (std::size_t j = 1; j < buggy.cd.size(); ++j)
    if (buggy.cd[j] < buggy.cd[target]) target = j;
  buggy.cd[target] = 1e6;
  core::OptimizerOptions options;
  options.allow_partial = true;
  const core::PlacementResult result =
      core::OptimizationEngine(options).solve(buggy);
  for (const check::Violation& v : check::check_placement(problem, result))
    if (v.invariant == "I1-capacity") return true;
  return false;
}

}  // namespace
}  // namespace dust

int main() {
  using namespace dust;
  const std::size_t seeds = bench::iterations(500, 50);
  const std::uint64_t base = bench::base_seed();
  bench::print_header("bench_sys_check_harness",
                      "property harness cost per random scenario (gates the "
                      "smoke budget: 50 seeds must stay well under a minute)");

  util::Table table("dust::check harness throughput");
  table.set_precision(2);
  table.header({"phase", "runs", "total_ms", "per_run_ms", "notes"});

  {
    const auto start = std::chrono::steady_clock::now();
    std::size_t cycles = 0, offloads = 0, violations = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const check::ScenarioSpec spec = check::generate_scenario(base + s);
      const check::RunReport report = check::run_scenario(spec);
      cycles += report.cycles_observed;
      offloads += report.offloads_created;
      violations += report.violations.size();
    }
    const double total = seconds_since(start) * 1e3;
    table.row({std::string("scenario-fuzz"),
               static_cast<std::int64_t>(seeds), total,
               total / static_cast<double>(seeds),
               std::to_string(cycles) + " cycles, " +
                   std::to_string(offloads) + " offloads, " +
                   std::to_string(violations) + " violations"});
  }

  {
    const auto start = std::chrono::steady_clock::now();
    std::size_t caught = 0, shrunk_small = 0, attempts = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const check::ScenarioSpec spec = check::generate_scenario(base + s);
      if (!capacity_bug_caught(spec)) continue;
      ++caught;
      check::ShrinkStats stats;
      const check::ScenarioSpec shrunk =
          check::shrink_scenario(spec, capacity_bug_caught, 400, &stats);
      attempts += stats.attempts;
      if (shrunk.node_count <= 8) ++shrunk_small;
    }
    const double total = seconds_since(start) * 1e3;
    table.row({std::string("bug-inject+shrink"),
               static_cast<std::int64_t>(seeds), total,
               total / static_cast<double>(seeds),
               std::to_string(caught) + " caught, " +
                   std::to_string(shrunk_small) + " shrunk to <=8 nodes, " +
                   std::to_string(attempts) + " shrink attempts"});
  }

  bench::emit(table);
  return 0;
}
