// System bench: incremental placement pipeline (DESIGN.md §8) vs cold
// recompute on the k=8 fat-tree. Both runners replay the *same* seeded link
// churn; the incremental one adds the dirty-aware Trmin cache and solver
// warm starts, the cold one rebuilds the model and solves from scratch each
// cycle (the pre-incremental behaviour). Three churn regimes:
//
//   steady-jitter   10% of links drift by <=3% per cycle — inside the 5%
//                   epsilon band, the telemetry steady state the pipeline
//                   targets (acceptance: >= 2x here)
//   hot-links       the same jitter plus 4 fixed links random-walking hard
//                   (up to ~33%/cycle, sweeping the whole utilization range
//                   over the run) — localized congestion is autocorrelated:
//                   a hot link stays hot, it does not teleport. Partial
//                   invalidation territory.
//   scattered-heavy 10% of links per cycle with heavy-tailed moves — most
//                   are moderate drift, one in five is a large burst
//                   (0.4x-2.2x). The burst links genuinely change Trmin
//                   rows (no correct cache can serve those); the drift is
//                   what Lu quantization must absorb.
//
// Results land in BENCH_incremental_cycle.json, and the cache/warm counters
// are printed via a dust::obs scrape so the speedup is attributable.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "net/response_cache.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace dust;

enum class Pattern { kSteadyJitter, kHotLinks, kScatteredHeavy };

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kSteadyJitter: return "steady-jitter";
    case Pattern::kHotLinks: return "hot-links";
    case Pattern::kScatteredHeavy: return "scattered-heavy";
  }
  return "?";
}

void jitter_links(net::NetworkState& net, util::Rng& rng, double fraction,
                  double lo, double hi) {
  const auto count =
      static_cast<std::size_t>(static_cast<double>(net.edge_count()) * fraction);
  for (std::size_t i = 0; i < count; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
    net::LinkState state = net.link(e);
    state.utilization = std::clamp(state.utilization * rng.uniform(lo, hi),
                                   0.01, 1.0);
    net.set_link(e, state);
  }
}

void churn(net::NetworkState& net, util::Rng& rng, Pattern pattern) {
  switch (pattern) {
    case Pattern::kSteadyJitter:
      // 10% of links per cycle, moves well inside the 5% epsilon band.
      jitter_links(net, rng, 0.10, 0.97, 1.03);
      break;
    case Pattern::kHotLinks: {
      jitter_links(net, rng, 0.10, 0.97, 1.03);
      // Congested links random-walk: large multiplicative steps that sweep
      // [0.2, 0.95] over the run, but consecutive cycles are correlated the
      // way real congestion is (a queue drains or builds, it does not
      // teleport across the utilization range each placement period).
      for (graph::EdgeId e = 0; e < 4; ++e) {
        net::LinkState state = net.link(e);
        state.utilization =
            std::clamp(state.utilization * rng.uniform(0.75, 1.33), 0.2, 0.95);
        net.set_link(e, state);
      }
      break;
    }
    case Pattern::kScatteredHeavy: {
      // Heavy-tailed churn across the whole topology: every cycle 10% of
      // links move, mostly moderate drift with a 20% chance of a large
      // burst. The bursts dirty rows all over the fat-tree; the drift is
      // the "small nonzero delta" traffic that used to flush every row.
      const auto count = net.edge_count() / 10;
      for (std::size_t i = 0; i < count; ++i) {
        const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
        net::LinkState state = net.link(e);
        const double factor = rng.below(5) == 0 ? rng.uniform(0.4, 2.2)
                                                : rng.uniform(0.85, 1.18);
        state.utilization =
            std::clamp(state.utilization * factor, 0.01, 1.0);
        net.set_link(e, state);
      }
      break;
    }
  }
}

struct RunStats {
  double ms_per_cycle = 0.0;
  net::ResponseTimeCacheStats cache;
  std::size_t warm_solves = 0;
  std::size_t cold_solves = 0;
};

RunStats run_cycles(Pattern pattern, bool incremental, std::size_t cycles,
                    double lu_quantum = 0.0, double reprice_epsilon = 0.0) {
  util::Rng rng(bench::base_seed());
  core::Nmdb nmdb = bench::fat_tree_scenario(8, rng);
  nmdb.network().set_link_epsilon(0.05);

  net::ResponseTimeCache cache;
  cache.set_lu_quantum(lu_quantum);
  cache.set_reprice_epsilon(reprice_epsilon);
  core::OptimizerOptions options;
  options.placement.max_hops = 4;
  options.placement.evaluator = net::EvaluatorMode::kEnumerate;
  options.placement.parallel_trmin = true;
  options.allow_partial = true;
  if (incremental) {
    options.placement.response_cache = &cache;
    options.warm_start = true;
  }
  const core::OptimizationEngine engine(options);

  // Warm-up cycle: pays the first full build on both runners so the timed
  // region measures steady-state cycles only.
  if (incremental) cache.begin_cycle(nmdb.network());
  (void)engine.run(nmdb);

  util::Timer timer;
  for (std::size_t c = 0; c < cycles; ++c) {
    churn(nmdb.network(), rng, pattern);
    if (incremental) cache.begin_cycle(nmdb.network());
    (void)engine.run(nmdb);
  }
  RunStats stats;
  stats.ms_per_cycle = timer.millis() / static_cast<double>(cycles);
  stats.cache = cache.stats();
  stats.warm_solves = engine.warm_solves();
  stats.cold_solves = engine.cold_solves();
  return stats;
}

struct ScenarioRow {
  Pattern pattern;
  RunStats cold;
  RunStats incremental;
  RunStats quantized;  ///< incremental + Lu bucket quantization
  [[nodiscard]] double speedup() const {
    return incremental.ms_per_cycle > 0.0
               ? cold.ms_per_cycle / incremental.ms_per_cycle
               : 0.0;
  }
};

/// Multiplicative Lu bucket width for the quantized runner: utilization moves
/// inside a ~50% multiplicative band keep a dirty link's cached cost
/// representative, so drift traffic stops flushing rows wholesale. The price
/// is bounded staleness — each link cost is served within sqrt(1 + 0.5) ~=
/// 1.22x of exact (see ResponseTimeCache::set_lu_quantum) — the same
/// precision-for-stability trade the epsilon-filtered STAT reporting makes.
constexpr double kLuQuantum = 0.50;

/// Repricing deadband for the quantized runner (see
/// ResponseTimeCache::set_reprice_epsilon): hairline link improvements no
/// longer flush rows whose Trmin they could only shave by < 10%. Together
/// with the Lu buckets this is what lifts the scattered-heavy hit rate —
/// the burst links still invalidate correctly, the drift stops repricing.
constexpr double kRepriceEpsilon = 0.10;

void write_json(const std::vector<ScenarioRow>& rows, std::size_t cycles) {
  // Shared dust-bench-v1 schema (see bench_common.hpp): flat records keyed
  // by metric + config so CI can diff against a baseline with one parser.
  bench::JsonReport json("incremental_cycle");
  {
    const graph::FatTree topo(8);
    json.set_topology(topo.graph().node_count(), topo.graph().edge_count());
  }
  const std::string common =
      "topology=fat-tree-k8,cycles=" + std::to_string(cycles);
  for (const ScenarioRow& row : rows) {
    const std::string config =
        "pattern=" + std::string(to_string(row.pattern)) + "," + common;
    json.add("cold_ms_per_cycle", row.cold.ms_per_cycle, "ms", config);
    json.add("incremental_ms_per_cycle", row.incremental.ms_per_cycle, "ms",
             config);
    json.add("speedup", row.speedup(), "x", config);
    json.add("cache_hits", static_cast<double>(row.incremental.cache.hits),
             "count", config);
    json.add("cache_misses",
             static_cast<double>(row.incremental.cache.misses), "count",
             config);
    json.add("cache_hit_rate", row.incremental.cache.hit_rate(), "ratio",
             config);
    json.add("invalidations",
             static_cast<double>(row.incremental.cache.invalidations),
             "count", config);
    json.add("warm_solves",
             static_cast<double>(row.incremental.warm_solves), "count",
             config);
    json.add("cold_solves",
             static_cast<double>(row.incremental.cold_solves), "count",
             config);
    const std::string qconfig = config +
                                ",lu_quantum=" + std::to_string(kLuQuantum) +
                                ",reprice_epsilon=" +
                                std::to_string(kRepriceEpsilon);
    json.add("quantized_ms_per_cycle", row.quantized.ms_per_cycle, "ms",
             qconfig);
    json.add("quantized_cache_hit_rate", row.quantized.cache.hit_rate(),
             "ratio", qconfig);
    json.add("quantized_invalidations",
             static_cast<double>(row.quantized.cache.invalidations), "count",
             qconfig);
  }
  json.write();
}

}  // namespace

int main() {
  bench::print_header(
      "System — incremental placement cycle vs cold recompute (k=8 fat-tree)",
      "(acceptance: >= 2x steady-state cycle speedup at <= 10% link churn)");

  const std::size_t cycles = bench::iterations(200, 40);
  obs::MetricRegistry::global().reset();

  std::vector<ScenarioRow> rows;
  for (Pattern pattern : {Pattern::kSteadyJitter, Pattern::kHotLinks,
                          Pattern::kScatteredHeavy}) {
    ScenarioRow row;
    row.pattern = pattern;
    row.cold = run_cycles(pattern, /*incremental=*/false, cycles);
    row.incremental = run_cycles(pattern, /*incremental=*/true, cycles);
    row.quantized = run_cycles(pattern, /*incremental=*/true, cycles,
                               kLuQuantum, kRepriceEpsilon);
    rows.push_back(row);
  }

  util::Table table("incremental placement cycle");
  table.set_precision(3).header({"pattern", "cold ms/cycle", "incr ms/cycle",
                                 "speedup", "hit rate", "quantized hit rate",
                                 "warm solves"});
  for (const ScenarioRow& row : rows)
    table.row({std::string(to_string(row.pattern)), row.cold.ms_per_cycle,
               row.incremental.ms_per_cycle, row.speedup(),
               row.incremental.cache.hit_rate(),
               row.quantized.cache.hit_rate(),
               static_cast<double>(row.incremental.warm_solves)});
  bench::emit(table);
  write_json(rows, cycles);

  // The obs scrape the acceptance criteria ask for: cache and warm/cold
  // counters accumulated across the incremental runs above.
  std::cout << "\n# obs scrape (dust_net_trmin_cache_* / dust_solver_*)\n";
  const obs::RegistrySnapshot snapshot =
      obs::MetricRegistry::global().snapshot();
  for (const auto& counter : snapshot.counters)
    if (counter.name.find("trmin_cache") != std::string::npos ||
        counter.name.find("dust_solver_warm") != std::string::npos ||
        counter.name.find("dust_solver_cold") != std::string::npos)
      std::cout << counter.name << " " << counter.value << "\n";

  const double steady_speedup = rows.front().speedup();
  bool pass = steady_speedup >= 2.0;
  std::cout << "\nincremental cycle " << (pass ? "PASS" : "FAIL")
            << ": steady-state speedup " << steady_speedup
            << "x (budget >= 2x)\n";

  // Regression floors for the Lu-quantization + reprice-deadband fixes:
  // exact-cost caching decays to ~0% hits under hot-links / scattered-heavy
  // (every cycle some dirty link lands in almost every row's support);
  // bucket representatives, direction-aware invalidation, and the repricing
  // deadband together must keep a meaningful fraction of rows alive.
  // Calibrated values at kLuQuantum = 0.5, kRepriceEpsilon = 0.1 are ~0.61
  // (hot-links) and ~0.20 (scattered-heavy, up from 0.14 before the
  // deadband); floors sit at roughly half so only a real regression trips
  // them.
  const double hot_rate = rows[1].quantized.cache.hit_rate();
  const double scattered_rate = rows[2].quantized.cache.hit_rate();
  const bool hot_ok = hot_rate >= 0.30;
  const bool scattered_ok = scattered_rate >= 0.10;
  std::cout << "quantized hit rate " << (hot_ok && scattered_ok ? "PASS"
                                                                : "FAIL")
            << ": hot-links " << hot_rate << " (floor 0.30), scattered-heavy "
            << scattered_rate << " (floor 0.10)\n";
  pass = pass && hot_ok && scattered_ok;
  return pass ? 0 : 1;
}
