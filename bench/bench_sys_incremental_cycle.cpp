// System bench: incremental placement pipeline (DESIGN.md §8) vs cold
// recompute on the k=8 fat-tree. Both runners replay the *same* seeded link
// churn; the incremental one adds the dirty-aware Trmin cache and solver
// warm starts, the cold one rebuilds the model and solves from scratch each
// cycle (the pre-incremental behaviour). Three churn regimes:
//
//   steady-jitter   10% of links drift by <=3% per cycle — inside the 5%
//                   epsilon band, the telemetry steady state the pipeline
//                   targets (acceptance: >= 2x here)
//   hot-links       the same jitter plus 4 fixed links swinging hard every
//                   cycle — localized congestion; partial invalidation
//   scattered-heavy 10% of links making large moves — worst case, every
//                   row's hop ball is dirty and the win shrinks to the
//                   warm-started solver and allocation-free evaluation
//
// Results land in BENCH_incremental_cycle.json, and the cache/warm counters
// are printed via a dust::obs scrape so the speedup is attributable.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "net/response_cache.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace dust;

enum class Pattern { kSteadyJitter, kHotLinks, kScatteredHeavy };

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kSteadyJitter: return "steady-jitter";
    case Pattern::kHotLinks: return "hot-links";
    case Pattern::kScatteredHeavy: return "scattered-heavy";
  }
  return "?";
}

void jitter_links(net::NetworkState& net, util::Rng& rng, double fraction,
                  double lo, double hi) {
  const auto count =
      static_cast<std::size_t>(static_cast<double>(net.edge_count()) * fraction);
  for (std::size_t i = 0; i < count; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
    net::LinkState state = net.link(e);
    state.utilization = std::clamp(state.utilization * rng.uniform(lo, hi),
                                   0.01, 1.0);
    net.set_link(e, state);
  }
}

void churn(net::NetworkState& net, util::Rng& rng, Pattern pattern) {
  switch (pattern) {
    case Pattern::kSteadyJitter:
      // 10% of links per cycle, moves well inside the 5% epsilon band.
      jitter_links(net, rng, 0.10, 0.97, 1.03);
      break;
    case Pattern::kHotLinks: {
      jitter_links(net, rng, 0.10, 0.97, 1.03);
      for (graph::EdgeId e = 0; e < 4; ++e) {
        net::LinkState state = net.link(e);
        state.utilization = rng.uniform(0.2, 0.95);
        net.set_link(e, state);
      }
      break;
    }
    case Pattern::kScatteredHeavy:
      jitter_links(net, rng, 0.10, 0.4, 2.2);
      break;
  }
}

struct RunStats {
  double ms_per_cycle = 0.0;
  net::ResponseTimeCacheStats cache;
  std::size_t warm_solves = 0;
  std::size_t cold_solves = 0;
};

RunStats run_cycles(Pattern pattern, bool incremental, std::size_t cycles) {
  util::Rng rng(bench::base_seed());
  core::Nmdb nmdb = bench::fat_tree_scenario(8, rng);
  nmdb.network().set_link_epsilon(0.05);

  net::ResponseTimeCache cache;
  core::OptimizerOptions options;
  options.placement.max_hops = 4;
  options.placement.evaluator = net::EvaluatorMode::kEnumerate;
  options.placement.parallel_trmin = true;
  options.allow_partial = true;
  if (incremental) {
    options.placement.response_cache = &cache;
    options.warm_start = true;
  }
  const core::OptimizationEngine engine(options);

  // Warm-up cycle: pays the first full build on both runners so the timed
  // region measures steady-state cycles only.
  if (incremental) cache.begin_cycle(nmdb.network());
  (void)engine.run(nmdb);

  util::Timer timer;
  for (std::size_t c = 0; c < cycles; ++c) {
    churn(nmdb.network(), rng, pattern);
    if (incremental) cache.begin_cycle(nmdb.network());
    (void)engine.run(nmdb);
  }
  RunStats stats;
  stats.ms_per_cycle = timer.millis() / static_cast<double>(cycles);
  stats.cache = cache.stats();
  stats.warm_solves = engine.warm_solves();
  stats.cold_solves = engine.cold_solves();
  return stats;
}

struct ScenarioRow {
  Pattern pattern;
  RunStats cold;
  RunStats incremental;
  [[nodiscard]] double speedup() const {
    return incremental.ms_per_cycle > 0.0
               ? cold.ms_per_cycle / incremental.ms_per_cycle
               : 0.0;
  }
};

void write_json(const std::vector<ScenarioRow>& rows, std::size_t cycles) {
  // Shared dust-bench-v1 schema (see bench_common.hpp): flat records keyed
  // by metric + config so CI can diff against a baseline with one parser.
  bench::JsonReport json("incremental_cycle");
  const std::string common =
      "topology=fat-tree-k8,cycles=" + std::to_string(cycles);
  for (const ScenarioRow& row : rows) {
    const std::string config =
        "pattern=" + std::string(to_string(row.pattern)) + "," + common;
    json.add("cold_ms_per_cycle", row.cold.ms_per_cycle, "ms", config);
    json.add("incremental_ms_per_cycle", row.incremental.ms_per_cycle, "ms",
             config);
    json.add("speedup", row.speedup(), "x", config);
    json.add("cache_hits", static_cast<double>(row.incremental.cache.hits),
             "count", config);
    json.add("cache_misses",
             static_cast<double>(row.incremental.cache.misses), "count",
             config);
    json.add("cache_hit_rate", row.incremental.cache.hit_rate(), "ratio",
             config);
    json.add("invalidations",
             static_cast<double>(row.incremental.cache.invalidations),
             "count", config);
    json.add("warm_solves",
             static_cast<double>(row.incremental.warm_solves), "count",
             config);
    json.add("cold_solves",
             static_cast<double>(row.incremental.cold_solves), "count",
             config);
  }
  json.write();
}

}  // namespace

int main() {
  bench::print_header(
      "System — incremental placement cycle vs cold recompute (k=8 fat-tree)",
      "(acceptance: >= 2x steady-state cycle speedup at <= 10% link churn)");

  const std::size_t cycles = bench::iterations(200, 40);
  obs::MetricRegistry::global().reset();

  std::vector<ScenarioRow> rows;
  for (Pattern pattern : {Pattern::kSteadyJitter, Pattern::kHotLinks,
                          Pattern::kScatteredHeavy}) {
    ScenarioRow row;
    row.pattern = pattern;
    row.cold = run_cycles(pattern, /*incremental=*/false, cycles);
    row.incremental = run_cycles(pattern, /*incremental=*/true, cycles);
    rows.push_back(row);
  }

  util::Table table("incremental placement cycle");
  table.set_precision(3).header({"pattern", "cold ms/cycle", "incr ms/cycle",
                                 "speedup", "hit rate", "warm solves"});
  for (const ScenarioRow& row : rows)
    table.row({std::string(to_string(row.pattern)), row.cold.ms_per_cycle,
               row.incremental.ms_per_cycle, row.speedup(),
               row.incremental.cache.hit_rate(),
               static_cast<double>(row.incremental.warm_solves)});
  bench::emit(table);
  write_json(rows, cycles);

  // The obs scrape the acceptance criteria ask for: cache and warm/cold
  // counters accumulated across the incremental runs above.
  std::cout << "\n# obs scrape (dust_net_trmin_cache_* / dust_solver_*)\n";
  const obs::RegistrySnapshot snapshot =
      obs::MetricRegistry::global().snapshot();
  for (const auto& counter : snapshot.counters)
    if (counter.name.find("trmin_cache") != std::string::npos ||
        counter.name.find("dust_solver_warm") != std::string::npos ||
        counter.name.find("dust_solver_cold") != std::string::npos)
      std::cout << counter.name << " " << counter.value << "\n";

  const double steady_speedup = rows.front().speedup();
  const bool pass = steady_speedup >= 2.0;
  std::cout << "\nincremental cycle " << (pass ? "PASS" : "FAIL")
            << ": steady-state speedup " << steady_speedup
            << "x (budget >= 2x)\n";
  return pass ? 0 : 1;
}
