// Figure 8: DUST ILP optimization computation time vs max-hop on the
// small-scale (4-k, 20-node) fat-tree, averaged over iterations.
// Paper: <= 3.5 s with no max-hop limit; <= 0.5 s threshold suggests
// max-hop = 10. We reproduce the *shape* — time grows steeply with max-hop
// because the paper-faithful evaluator enumerates all hop-bounded routes —
// not Gurobi's absolute numbers.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 8 — ILP computation time vs max-hop (4-k fat-tree)",
      "time rises with max-hop; <=3.5 s unbounded, max-hop 10 fits a 0.5 s "
      "threshold (shape reproduced; absolute scale differs from Gurobi)");

  const std::size_t runs = bench::iterations(100, 20);
  const std::uint32_t hop_values[] = {2, 4, 6, 8, 10, 12, 0};  // 0 = unbounded

  util::Table table("Figure 8 — avg optimization time vs max-hop");
  table.set_precision(4).header({"max_hop", "avg_total_s", "avg_build_s",
                                 "avg_solve_s", "avg_paths_explored",
                                 "feasible_runs"});

  for (std::uint32_t hops : hop_values) {
    util::RunningStats total_s, build_s, solve_s, paths;
    std::size_t feasible = 0;
    util::Rng root(bench::base_seed());
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < runs; ++i) streams.push_back(root.fork(i));
    std::vector<core::PlacementResult> results(runs);
    util::global_pool().parallel_for(runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(4, streams[i]);
      core::OptimizerOptions options;
      options.placement.max_hops = hops;
      options.placement.evaluator = net::EvaluatorMode::kEnumerate;
      results[i] = core::OptimizationEngine(options).run(nmdb);
    });
    for (const core::PlacementResult& r : results) {
      total_s.add(r.build_seconds + r.solve_seconds);
      build_s.add(r.build_seconds);
      solve_s.add(r.solve_seconds);
      paths.add(static_cast<double>(r.paths_explored));
      if (r.optimal()) ++feasible;
    }
    table.row({hops == 0 ? std::string("none") : std::to_string(hops),
               total_s.mean(), build_s.mean(), solve_s.mean(), paths.mean(),
               static_cast<std::int64_t>(feasible)});
  }
  bench::emit(table);
  std::cout << "\nexpectation: avg time and paths-explored grow steeply with "
               "max-hop and saturate at the unbounded value\n";
  return 0;
}
