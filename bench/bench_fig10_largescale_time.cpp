// Figure 10 (a, b): ILP optimization computation time vs max-hop on the
// large-scale 8-k (80-node) and 16-k (320-node) fat-trees.
// Paper: with a 300 s threshold the recommended max-hop is 7 for 8-k and 4
// for 16-k; raising 16-k's max-hop from 4 to 5 cost ~10x more time. We
// reproduce the growth shape and the 4->5 blow-up ratio on 16-k.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

void sweep(std::uint32_t k, const std::vector<std::uint32_t>& hop_values,
           std::size_t runs) {
  using namespace dust;
  util::Table table("Figure 10 — avg ILP time vs max-hop, " +
                    std::to_string(k) + "-k fat-tree (" +
                    std::to_string(graph::FatTree(k).graph().node_count()) +
                    " nodes)");
  table.set_precision(4).header(
      {"max_hop", "avg_total_s", "avg_paths_explored", "growth_vs_prev"});
  double previous = 0.0;
  for (std::uint32_t hops : hop_values) {
    util::RunningStats total_s, paths;
    util::Rng root(bench::base_seed() + k);
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < runs; ++i) streams.push_back(root.fork(i));
    std::vector<core::PlacementResult> results(runs);
    util::global_pool().parallel_for(runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(k, streams[i]);
      core::OptimizerOptions options;
      options.placement.max_hops = hops;
      options.placement.evaluator = net::EvaluatorMode::kEnumerate;
      options.allow_partial = true;  // count full runtime even when tight
      results[i] = core::OptimizationEngine(options).run(nmdb);
    });
    for (const auto& r : results) {
      total_s.add(r.build_seconds + r.solve_seconds);
      paths.add(static_cast<double>(r.paths_explored));
    }
    const double growth = previous > 0 ? total_s.mean() / previous : 0.0;
    table.row({static_cast<std::int64_t>(hops), total_s.mean(), paths.mean(),
               growth});
    previous = total_s.mean();
  }
  bench::emit(table);
}

}  // namespace

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 10 — ILP time vs max-hop on large-scale fat-trees",
      "8-k: rec. max-hop 7; 16-k: rec. max-hop 4, and hop 4->5 costs ~10x");

  const std::size_t runs = bench::iterations(20, 3);
  sweep(8, {2, 3, 4, 5, 6, 7}, runs);
  sweep(16, {2, 3, 4, 5}, runs);

  std::cout << "\nexpectation: time grows multiplicatively with each extra "
               "hop; the 16-k 4->5 step shows roughly an order of magnitude "
               "(growth_vs_prev ~5-15x)\n";
  return 0;
}
