// Figure 11 (a, b): scalability comparison as the fat-tree grows.
//  (a) HFR of the one-hop heuristic falls with network scale — paper:
//      47.92% -> 11.04%, approximately a power law with exponent ~ -0.5.
//  (b) average ILP optimization time rises with scale — paper: 0.2 s ->
//      153+ s (at each size's recommended max-hop).
#include <iostream>

#include "bench_common.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 11 — heuristic HFR and ILP time vs network scale",
      "HFR falls ~k^-0.5 (47.92% -> 11.04%); avg ILP time rises 0.2 s -> "
      "150+ s (shape; absolute scale differs from the paper's cluster)");

  struct Size {
    std::uint32_t k;
    std::uint32_t recommended_hop;  // Figs 8/10 recommendations
    bool run_ilp;
  };
  // 16-k runs at max-hop 5: the paper recommends 4 for a 300 s budget, but
  // its own Fig. 11b values (>150 s) imply the scalability sweep used a
  // deeper bound; 5 exhibits the same monotone growth on our evaluator.
  const Size sizes[] = {{4, 10, true},
                        {8, 7, true},
                        {16, 5, true},
                        {64, 2, false}};  // 64-k: heuristic only (Fig 12)

  const std::size_t heuristic_runs = bench::iterations(100, 30);
  const std::size_t ilp_runs = bench::iterations(10, 2);

  util::Table hfr_table("Figure 11a — HFR vs scale");
  hfr_table.set_precision(2).header({"k", "nodes", "avg_HFR_%", "runs"});
  std::vector<double> ks, hfrs;

  for (const Size& size : sizes) {
    std::vector<double> hfr(heuristic_runs, 0.0);
    util::Rng root(bench::base_seed() + size.k);
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < heuristic_runs; ++i)
      streams.push_back(root.fork(i));
    // Contended load profile (loads in [35, 100]) as in the Fig. 9 bench:
    // candidates hold limited spare, so one-hop placement actually fails at
    // small scale, matching the paper's high small-network HFR.
    net::NodeLoadProfile contended;
    contended.x_min = 35.0;
    util::global_pool().parallel_for(heuristic_runs, [&](std::size_t i) {
      net::NetworkState state = net::make_random_state(
          graph::FatTree(size.k).graph(), net::LinkProfile{}, contended,
          streams[i]);
      core::Nmdb nmdb(std::move(state), core::Thresholds{});
      hfr[i] = core::HeuristicEngine().run(nmdb).hfr_percent();
    });
    util::RunningStats stats;
    for (double x : hfr) stats.add(x);
    hfr_table.row({static_cast<std::int64_t>(size.k),
                   static_cast<std::int64_t>(
                       graph::FatTree(size.k).graph().node_count()),
                   stats.mean(), static_cast<std::int64_t>(heuristic_runs)});
    ks.push_back(static_cast<double>(size.k));
    hfrs.push_back(std::max(stats.mean(), 1e-3));
  }
  bench::emit(hfr_table);
  const util::PowerFit fit = util::power_fit(ks, hfrs);
  std::cout << "power-law fit: HFR ~ " << fit.coefficient << " * k^("
            << fit.exponent << "), r^2(log) = " << fit.r_squared
            << "  [paper: exponent ~ -0.5]\n";

  util::Table time_table("Figure 11b — avg ILP time vs scale");
  time_table.set_precision(4).header(
      {"k", "nodes", "max_hop", "avg_total_s", "runs"});
  for (const Size& size : sizes) {
    if (!size.run_ilp) {
      time_table.row({static_cast<std::int64_t>(size.k),
                      static_cast<std::int64_t>(
                          graph::FatTree(size.k).graph().node_count()),
                      std::string("-"), std::string("(heuristic only, Fig 12)"),
                      std::int64_t{0}});
      continue;
    }
    util::RunningStats total_s;
    util::Rng root(bench::base_seed() * 3 + size.k);
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < ilp_runs; ++i) streams.push_back(root.fork(i));
    std::vector<double> seconds(ilp_runs, 0.0);
    util::global_pool().parallel_for(ilp_runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(size.k, streams[i]);
      core::OptimizerOptions options;
      options.placement.max_hops = size.recommended_hop;
      options.placement.evaluator = net::EvaluatorMode::kEnumerate;
      options.allow_partial = true;
      const core::PlacementResult r = core::OptimizationEngine(options).run(nmdb);
      seconds[i] = r.build_seconds + r.solve_seconds;
    });
    for (double s : seconds) total_s.add(s);
    time_table.row({static_cast<std::int64_t>(size.k),
                    static_cast<std::int64_t>(
                        graph::FatTree(size.k).graph().node_count()),
                    std::to_string(size.recommended_hop), total_s.mean(),
                    static_cast<std::int64_t>(ilp_runs)});
  }
  bench::emit(time_table);

  std::cout << "\nexpectation: HFR decreases with scale (negative exponent "
               "near -0.5); ILP time increases by orders of magnitude\n";
  return 0;
}
