// Figure 6 (a, b): device CPU and memory with local monitoring vs. DUST
// offloaded monitoring on the simulated 8-core / 16 GiB switch.
// Paper: CPU 31% -> 15% (52% average reduction), memory 70% -> 62% (12%).
#include <iostream>

#include "bench_common.hpp"
#include "sim/node.hpp"
#include "sim/overlay_traffic.hpp"
#include "telemetry/agent.hpp"
#include "util/stats.hpp"

namespace {

struct Phase {
  dust::util::RunningStats cpu;
  dust::util::RunningStats memory;
  dust::util::RunningStats monitor_mem_mib;
};

}  // namespace

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 6 — CPU/memory: local monitoring vs DUST offload",
      "CPU 31% -> 15% (-52%), memory 70% -> 62% (-12%), ~1.2 GiB freed");

  const std::size_t seconds = bench::iterations(3600, 600);
  util::Rng rng(bench::base_seed());
  sim::OverlayTraffic traffic{sim::OverlayTrafficProfile{}};

  sim::MonitoredNode origin("aruba8325", sim::NodeResources{8, 16384.0}, 15.0,
                            0.62 * 16384.0);
  sim::MonitoredNode destination("dpu-host", sim::NodeResources{16, 32768.0},
                                 20.0, 8192.0);
  for (auto& agent : telemetry::standard_agents()) origin.add_local_agent(agent);

  // Phase 1: local monitoring.
  Phase local;
  for (std::size_t t = 0; t < seconds; ++t) {
    const auto tick = traffic.next(rng);
    const auto stats = origin.tick(static_cast<std::int64_t>(t) * 1000, 1000,
                                   tick.rx_mbps, tick.tx_mbps, rng);
    local.cpu.add(stats.device_cpu_percent);
    local.memory.add(stats.memory_percent);
    local.monitor_mem_mib.add(stats.monitor_memory_mib);
  }

  // DUST offload: move all 10 agents to the destination host.
  auto agents = origin.remove_local_agents();
  const std::size_t moved = agents.size();
  for (auto& agent : agents) destination.add_remote_agent("aruba8325", agent);
  origin.set_offloaded_agent_count(moved);

  // Phase 2: offloaded monitoring (origin streams snapshots to destination).
  Phase offloaded;
  util::RunningStats destination_cores;
  for (std::size_t t = seconds; t < 2 * seconds; ++t) {
    const auto tick = traffic.next(rng);
    const std::int64_t now = static_cast<std::int64_t>(t) * 1000;
    const auto stats =
        origin.tick(now, 1000, tick.rx_mbps, tick.tx_mbps, rng);
    offloaded.cpu.add(stats.device_cpu_percent);
    offloaded.memory.add(stats.memory_percent);
    telemetry::DeviceSnapshot snap;
    snap.timestamp_ms = now;
    snap.rx_mbps = tick.rx_mbps;
    snap.tx_mbps = tick.tx_mbps;
    destination.observe_remote("aruba8325", snap, rng);
    destination_cores.add(
        destination.tick(now, 1000, 2000.0, 0.0, rng).monitor_cpu_cores);
  }

  util::Table table("Figure 6 — resource utilization comparison");
  table.set_precision(1).header(
      {"metric", "local", "DUST-offloaded", "reduction_%", "paper"});
  const double cpu_red =
      (local.cpu.mean() - offloaded.cpu.mean()) / local.cpu.mean() * 100.0;
  const double mem_red =
      (local.memory.mean() - offloaded.memory.mean()) / local.memory.mean() *
      100.0;
  table.row({std::string("device CPU (%)"), local.cpu.mean(),
             offloaded.cpu.mean(), cpu_red, std::string("31 -> 15 (-52%)")});
  table.row({std::string("device memory (%)"), local.memory.mean(),
             offloaded.memory.mean(), mem_red,
             std::string("70 -> 62 (-12%)")});
  bench::emit(table);

  util::Table extra("supporting measurements");
  extra.set_precision(2).header({"metric", "value"});
  extra.row({std::string("monitoring memory while local (GiB)"),
             local.monitor_mem_mib.mean() / 1024.0});
  extra.row({std::string("destination monitoring load (cores)"),
             destination_cores.mean()});
  extra.row({std::string("agents moved"), static_cast<std::int64_t>(moved)});
  bench::emit(extra);

  std::cout << "\nexpectation: CPU reduction > 40%, memory reduction ~8-15%, "
               "~1.2 GiB monitoring memory, load reappears at destination\n";
  return 0;
}
