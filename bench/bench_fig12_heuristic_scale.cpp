// Figure 12: scalability of the heuristic algorithm — execution time as the
// fat-tree grows to 64-k (5120 nodes, 131072 edges).
// Paper: the heuristic stays tractable where the ILP does not, with 124 s
// observed at 5120 nodes (Python); our C++ heuristic is much faster in
// absolute terms but reproduces the trend and the heuristic-vs-ILP gap.
#include <iostream>

#include "bench_common.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Figure 12 — heuristic scalability to 5120 nodes",
      "heuristic remains tractable at every size and beats the ILP by orders "
      "of magnitude at scale");

  const std::size_t runs = bench::iterations(20, 5);
  const std::uint32_t ks[] = {4, 8, 16, 64};

  util::Table table("Figure 12 — heuristic execution time vs scale");
  table.set_precision(6).header({"k", "nodes", "edges", "avg_heuristic_s",
                                 "avg_HFR_%", "avg_ilp_s(maxhop=3)"});

  for (std::uint32_t k : ks) {
    const graph::FatTree ft(k);
    std::vector<double> heuristic_s(runs, 0.0), hfr(runs, 0.0);
    util::Rng root(bench::base_seed() + 7 * k);
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < runs; ++i) streams.push_back(root.fork(i));
    util::global_pool().parallel_for(runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(k, streams[i]);
      const core::HeuristicResult r = core::HeuristicEngine().run(nmdb);
      heuristic_s[i] = r.solve_seconds;
      hfr[i] = r.hfr_percent();
    });
    util::RunningStats hs, hf;
    for (std::size_t i = 0; i < runs; ++i) {
      hs.add(heuristic_s[i]);
      hf.add(hfr[i]);
    }

    // ILP comparison point at a tame max-hop; skipped at 64-k where even
    // the model build is the bottleneck the paper's zoning avoids.
    std::string ilp_cell = "(intractable; use zones)";
    if (k <= 16) {
      util::Rng rng = root.fork(runs + 1);
      core::Nmdb nmdb = bench::fat_tree_scenario(k, rng);
      core::OptimizerOptions options;
      options.placement.max_hops = 3;
      options.placement.evaluator = net::EvaluatorMode::kEnumerate;
      options.allow_partial = true;
      const core::PlacementResult r = core::OptimizationEngine(options).run(nmdb);
      ilp_cell = std::to_string(r.build_seconds + r.solve_seconds);
    }
    table.row({static_cast<std::int64_t>(k),
               static_cast<std::int64_t>(ft.graph().node_count()),
               static_cast<std::int64_t>(ft.graph().edge_count()), hs.mean(),
               hf.mean(), ilp_cell});
  }
  bench::emit(table);

  std::cout << "\nexpectation: heuristic time grows roughly linearly in "
               "network size and stays far below the ILP at every scale; "
               "64-k (5120 nodes / 131072 edges) completes comfortably\n";
  return 0;
}
