// Ablation: zone size (paper §V-B recommends <= 80-node zones). Sweeps the
// zone cap on an 8-k fat-tree and reports the optimization-cost premium and
// runtime vs one global solve — quantifying the zoning trade-off the paper
// states qualitatively.
#include <iostream>

#include "bench_common.hpp"
#include "core/zones.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Ablation — zone size vs cost premium and runtime (8-k fat-tree)",
      "smaller zones cut runtime, pay a cost premium, and may strand load");

  const std::size_t runs = bench::iterations(20, 6);
  const std::size_t zone_sizes[] = {10, 20, 40, 80};

  core::OptimizerOptions options;
  options.placement.max_hops = 4;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.allow_partial = true;

  util::Table table("zone size sweep");
  table.set_precision(4).header({"zone_cap", "zones", "avg_premium_%",
                                 "avg_unplaced_%cap", "avg_time_s",
                                 "global_time_s"});

  util::Rng root(bench::base_seed());
  for (std::size_t zone_size : zone_sizes) {
    util::RunningStats premium, unplaced, zoned_s, global_s;
    std::size_t zone_count = 0;
    for (std::size_t i = 0; i < runs; ++i) {
      util::Rng rng = root.fork(i);
      core::Nmdb nmdb = bench::fat_tree_scenario(8, rng);
      const core::PlacementResult global =
          core::OptimizationEngine(options).run(nmdb);
      const core::ZonedResult zoned =
          core::optimize_by_zones(nmdb, zone_size, options);
      zone_count = zoned.zones;
      global_s.add(global.build_seconds + global.solve_seconds);
      zoned_s.add(zoned.total_seconds);
      unplaced.add(zoned.unplaced);
      if (global.objective > 0 && zoned.unplaced <= global.unplaced + 1e-9)
        premium.add((zoned.objective / global.objective - 1.0) * 100.0);
    }
    table.row({static_cast<std::int64_t>(zone_size),
               static_cast<std::int64_t>(zone_count), premium.mean(),
               unplaced.mean(), zoned_s.mean(), global_s.mean()});
  }
  bench::emit(table);
  std::cout << "\nexpectation: premium and unplaced shrink as zones grow "
               "toward the whole network; the paper's 80-node cap keeps both "
               "small\n";
  return 0;
}
