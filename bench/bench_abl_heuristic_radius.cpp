// Ablation: heuristic hop radius (Algorithm 1 fixes radius = 1; the paper's
// future-work direction is relaxing locality). Sweeps radius and the
// busy-node processing order, reporting HFR, objective, and runtime.
#include <iostream>

#include "bench_common.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "Ablation — heuristic radius and processing order (8-k fat-tree)",
      "larger radius trades runtime for lower HFR; order matters little");

  const std::size_t runs = bench::iterations(100, 30);
  util::Table table("heuristic radius sweep");
  table.set_precision(4).header(
      {"radius", "order", "avg_HFR_%", "avg_objective", "avg_time_s"});

  struct Config {
    std::uint32_t radius;
    core::HeuristicOptions::Order order;
    core::HeuristicOptions::Packing packing;
    const char* label;
  };
  using Order = core::HeuristicOptions::Order;
  using Packing = core::HeuristicOptions::Packing;
  const Config configs[] = {
      {1, Order::kNodeId, Packing::kCheapestFirst, "node-id/cheapest"},
      {1, Order::kLargestExcessFirst, Packing::kCheapestFirst,
       "largest-first/cheapest"},
      {1, Order::kNodeId, Packing::kLargestCapacityFirst,
       "node-id/largest-capacity"},
      {2, Order::kNodeId, Packing::kCheapestFirst, "node-id/cheapest"},
      {3, Order::kNodeId, Packing::kCheapestFirst, "node-id/cheapest"},
      {6, Order::kNodeId, Packing::kCheapestFirst, "node-id/cheapest"},
  };

  for (const Config& config : configs) {
    std::vector<double> hfr(runs), objective(runs), seconds(runs);
    util::Rng root(bench::base_seed());
    std::vector<util::Rng> streams;
    for (std::size_t i = 0; i < runs; ++i) streams.push_back(root.fork(i));
    util::global_pool().parallel_for(runs, [&](std::size_t i) {
      core::Nmdb nmdb = bench::fat_tree_scenario(8, streams[i]);
      core::HeuristicOptions options;
      options.radius = config.radius;
      options.order = config.order;
      options.packing = config.packing;
      const core::HeuristicResult r = core::HeuristicEngine(options).run(nmdb);
      hfr[i] = r.hfr_percent();
      objective[i] = r.objective;
      seconds[i] = r.solve_seconds;
    });
    util::RunningStats h, o, s;
    for (std::size_t i = 0; i < runs; ++i) {
      h.add(hfr[i]);
      o.add(objective[i]);
      s.add(seconds[i]);
    }
    table.row({static_cast<std::int64_t>(config.radius),
               std::string(config.label), h.mean(), o.mean(), s.mean()});
  }
  bench::emit(table);
  std::cout << "\nexpectation: HFR drops sharply from radius 1 to 2 and "
               "approaches the capacity-balance floor by radius ~6\n";
  return 0;
}
