// System bench: cost of the dust::obs instrumentation on the control-plane
// workload of bench_sys_control_plane (4-k fat-tree, 20 clients, 10 sim
// minutes of protocol traffic plus 50 forced placement cycles). Runs the
// identical workload with instrumentation enabled and with it disabled
// (obs::set_enabled(false), the cheap relaxed-load early-return that
// -DDUST_OBS_COMPILED_OUT reduces to), takes the best of several reps of
// each, and checks the enabled run stays within the 5% overhead budget.
// Also reports the per-update micro cost of a counter and a histogram.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/manager.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace dust;

/// One full control-plane workload run; returns wall milliseconds.
double run_workload() {
  const graph::FatTree topo(4);
  const std::size_t n = topo.graph().node_count();
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(bench::base_seed()));

  net::NetworkState state(topo.graph());
  for (graph::NodeId v = 0; v < n; ++v) {
    state.set_node_utilization(v, 50.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  core::ManagerConfig config;
  config.update_interval_ms = 10000;
  config.placement_period_ms = 60000;
  config.keepalive_timeout_ms = 30000;
  config.keepalive_check_period_ms = 10000;

  util::Timer timer;
  core::DustManager manager(sim, transport,
                            core::Nmdb(std::move(state), core::Thresholds{}),
                            config);
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < n; ++v) {
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 10000},
        util::Rng(bench::base_seed() + v)));
    clients.back()->set_reported_state(50.0, 10.0, 10);
    clients.back()->start();
  }
  manager.start();
  sim.run_until(10 * 60000);
  clients[0]->set_reported_state(92.0, 10.0, 10);
  sim.run_until(sim.now() + 2 * 60000);
  for (int i = 0; i < 50; ++i) manager.run_placement_cycle();
  return timer.millis();
}

/// Best-of-reps wall time with the instrumentation switch set as given.
double best_of(int reps, bool instrumented) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::set_enabled(instrumented);
    obs::MetricRegistry::global().reset();
    const double ms = run_workload();
    if (best < 0.0 || ms < best) best = ms;
  }
  obs::set_enabled(true);
  return best;
}

/// Nanoseconds per update for one metric primitive under a tight loop.
template <typename Fn>
double ns_per_op(Fn&& fn) {
  constexpr int kOps = 2'000'000;
  util::Timer timer;
  for (int i = 0; i < kOps; ++i) fn(i);
  return timer.millis() * 1e6 / kOps;
}

}  // namespace

int main() {
  using namespace dust;
  bench::print_header(
      "System — observability overhead on the control-plane workload",
      "(acceptance: instrumented run within 5% of uninstrumented)");

  constexpr int kReps = 5;
  // Warm-up rep (first run pays registry creation and allocator warm-up).
  (void)run_workload();
  const double off_ms = best_of(kReps, /*instrumented=*/false);
  const double on_ms = best_of(kReps, /*instrumented=*/true);
  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;

  obs::MetricRegistry bench_registry;
  obs::Counter& counter = bench_registry.counter("bench_counter");
  obs::Histogram& hist = bench_registry.histogram("bench_hist");
  const double counter_ns = ns_per_op([&](int) { counter.inc(); });
  const double hist_ns =
      ns_per_op([&](int i) { hist.observe(static_cast<double>(i % 97)); });
  obs::set_enabled(false);
  const double disabled_ns = ns_per_op([&](int) { counter.inc(); });
  obs::set_enabled(true);

  util::Table table("observability overhead");
  table.set_precision(3).header({"metric", "value"});
  table.row({std::string("workload, obs disabled (ms, best of 5)"), off_ms});
  table.row({std::string("workload, obs enabled (ms, best of 5)"), on_ms});
  table.row({std::string("overhead (%)"), overhead_pct});
  table.row({std::string("counter inc (ns/op)"), counter_ns});
  table.row({std::string("histogram observe (ns/op)"), hist_ns});
  table.row({std::string("disabled counter inc (ns/op)"), disabled_ns});
  bench::emit(table);

  const bool pass = overhead_pct < 5.0;
  std::cout << "\nobservability overhead " << (pass ? "PASS" : "FAIL") << ": "
            << overhead_pct << "% (budget 5%)\n";
  return pass ? 0 : 1;
}
