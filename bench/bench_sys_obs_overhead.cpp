// System bench: cost of the dust::obs instrumentation on the control-plane
// workload of bench_sys_control_plane (4-k fat-tree, 20 clients, 10 sim
// minutes of protocol traffic plus 50 forced placement cycles). Runs the
// identical workload three ways as back-to-back triples — instrumentation
// disabled (obs::set_enabled(false), the cheap relaxed-load early-return
// that -DDUST_OBS_COMPILED_OUT reduces to), enabled, and enabled with the
// fleet scrape path live (an obs::Aggregator ingesting the global registry
// through the real snapshot codec every sim minute and every placement
// cycle, the manager_daemon cadence) — takes the median of the per-triple
// overheads (robust to load spikes on a shared machine), and checks both
// the instrumentation and the scrape path stay within the 5% overhead
// budget. Also reports the per-update micro cost of a counter and a
// histogram, and the clean-tick cost of a scrape that finds no changes.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/manager.hpp"
#include "obs/aggregator.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "util/timer.hpp"

namespace {

using namespace dust;

/// One full control-plane workload run; returns wall milliseconds. With
/// `scrape`, an Aggregator ingests the global registry (encode → decode →
/// apply → ack, the same path a remote snapshot takes) at the cadence
/// manager_daemon scrapes its fleet.
double run_workload(bool scrape) {
  const graph::FatTree topo(4);
  const std::size_t n = topo.graph().node_count();
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(bench::base_seed()));

  net::NetworkState state(topo.graph());
  for (graph::NodeId v = 0; v < n; ++v) {
    state.set_node_utilization(v, 50.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  core::ManagerConfig config;
  config.update_interval_ms = 10000;
  config.placement_period_ms = 60000;
  config.keepalive_timeout_ms = 30000;
  config.keepalive_check_period_ms = 10000;

  util::Timer timer;
  core::DustManager manager(sim, transport,
                            core::Nmdb(std::move(state), core::Thresholds{}),
                            config);
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < n; ++v) {
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 10000},
        util::Rng(bench::base_seed() + v)));
    clients.back()->set_reported_state(50.0, 10.0, 10);
    clients.back()->start();
  }
  std::unique_ptr<obs::Aggregator> aggregator;
  if (scrape) aggregator = std::make_unique<obs::Aggregator>();
  const auto scrape_tick = [&] {
    if (aggregator)
      aggregator->ingest_local("local", obs::MetricRegistry::global(),
                               sim.now());
  };

  manager.start();
  for (int minute = 1; minute <= 10; ++minute) {
    sim.run_until(minute * 60000);
    scrape_tick();
  }
  clients[0]->set_reported_state(92.0, 10.0, 10);
  sim.run_until(sim.now() + 2 * 60000);
  scrape_tick();
  for (int i = 0; i < 50; ++i) {
    manager.run_placement_cycle();
    // Every 10th cycle: a cycle takes well under a millisecond, so even
    // this is far above the 500 ms wall cadence manager_daemon scrapes at.
    if (i % 10 == 9) scrape_tick();
  }
  return timer.millis();
}

/// One back-to-back off/on/scrape measurement triple. Grouping the runs
/// keeps each comparison inside the same few milliseconds of machine state,
/// so frequency scaling, thermal drift, and background load hit all sides
/// of a triple roughly equally instead of biasing one block of reps.
struct Sample {
  double off_ms = 0.0;
  double on_ms = 0.0;
  double scrape_ms = 0.0;
};
Sample measure_triple() {
  Sample sample;
  const auto run = [](bool instrumented, bool scrape) {
    obs::set_enabled(instrumented);
    obs::MetricRegistry::global().reset();
    return run_workload(scrape);
  };
  sample.off_ms = run(false, false);
  sample.on_ms = run(true, false);
  sample.scrape_ms = run(true, true);
  return sample;
}

/// Median of the per-triple relative overheads of `Get(sample)` over the
/// uninstrumented baseline. A single noisy rep (a load spike landing on one
/// run of one triple) produces one outlier, which the median discards —
/// min-over-reps would instead compare two minima drawn from different
/// noise windows.
template <typename Get>
double median_overhead_pct(const std::vector<Sample>& samples, Get&& get) {
  std::vector<double> pct;
  pct.reserve(samples.size());
  for (const Sample& s : samples)
    pct.push_back((get(s) - s.off_ms) / s.off_ms * 100.0);
  std::sort(pct.begin(), pct.end());
  const std::size_t n = pct.size();
  return n % 2 == 1 ? pct[n / 2] : (pct[n / 2 - 1] + pct[n / 2]) / 2.0;
}

/// Nanoseconds per update for one metric primitive under a tight loop.
template <typename Fn>
double ns_per_op(Fn&& fn) {
  constexpr int kOps = 2'000'000;
  util::Timer timer;
  for (int i = 0; i < kOps; ++i) fn(i);
  return timer.millis() * 1e6 / kOps;
}

}  // namespace

int main() {
  using namespace dust;
  bench::print_header(
      "System — observability overhead on the control-plane workload",
      "(acceptance: instrumented and fleet-scraped runs within 5% of "
      "uninstrumented)");

  constexpr int kReps = 21;
  // Warm-up rep (first run pays registry creation and allocator warm-up).
  (void)run_workload(false);
  std::vector<Sample> samples;
  samples.reserve(kReps);
  for (int r = 0; r < kReps; ++r) samples.push_back(measure_triple());
  double off_ms = samples.front().off_ms;
  double on_ms = samples.front().on_ms;
  double scrape_ms = samples.front().scrape_ms;
  for (const Sample& s : samples) {
    off_ms = std::min(off_ms, s.off_ms);
    on_ms = std::min(on_ms, s.on_ms);
    scrape_ms = std::min(scrape_ms, s.scrape_ms);
  }
  const double overhead_pct =
      median_overhead_pct(samples, [](const Sample& s) { return s.on_ms; });
  const double scrape_pct = median_overhead_pct(
      samples, [](const Sample& s) { return s.scrape_ms; });

  obs::MetricRegistry bench_registry;
  obs::Counter& counter = bench_registry.counter("bench_counter");
  obs::Histogram& hist = bench_registry.histogram("bench_hist");
  const double counter_ns = ns_per_op([&](int) { counter.inc(); });
  const double hist_ns =
      ns_per_op([&](int i) { hist.observe(static_cast<double>(i % 97)); });
  obs::set_enabled(false);
  const double disabled_ns = ns_per_op([&](int) { counter.inc(); });
  obs::set_enabled(true);

  // The hot-tick guarantee: a scrape of a registry where nothing moved must
  // be a cheap dirty-scan, no frame, no allocation.
  obs::SnapshotEncoder clean_encoder(bench_registry);
  std::vector<std::uint8_t> clean_buffer;
  if (clean_encoder.encode(0, clean_buffer))
    clean_encoder.ack(clean_encoder.last_seq());
  const double clean_tick_ns = ns_per_op(
      [&](int) { (void)clean_encoder.encode(0, clean_buffer); });

  util::Table table("observability overhead");
  table.set_precision(3).header({"metric", "value"});
  table.row({std::string("workload, obs disabled (ms, best of 21)"), off_ms});
  table.row({std::string("workload, obs enabled (ms, best of 21)"), on_ms});
  table.row(
      {std::string("workload, obs + fleet scrape (ms, best of 21)"),
       scrape_ms});
  table.row({std::string("overhead (%)"), overhead_pct});
  table.row({std::string("overhead incl. scrape path (%)"), scrape_pct});
  table.row({std::string("counter inc (ns/op)"), counter_ns});
  table.row({std::string("histogram observe (ns/op)"), hist_ns});
  table.row({std::string("disabled counter inc (ns/op)"), disabled_ns});
  table.row({std::string("clean scrape tick (ns/op)"), clean_tick_ns});
  bench::emit(table);

  bench::JsonReport json("obs_overhead");
  {
    const graph::FatTree topo(4);
    json.set_topology(topo.graph().node_count(), topo.graph().edge_count());
  }
  json.add("workload_ms", off_ms, "ms", "obs=off,best_of=21");
  json.add("workload_ms", on_ms, "ms", "obs=on,best_of=21");
  json.add("workload_ms", scrape_ms, "ms", "obs=on+scrape,best_of=21");
  json.add("overhead", overhead_pct, "percent", "budget=5,estimator=median_of_pairs");
  json.add("overhead", scrape_pct, "percent",
           "budget=5,estimator=median_of_pairs,path=scrape");
  json.add("counter_inc", counter_ns, "ns/op", "obs=on");
  json.add("histogram_observe", hist_ns, "ns/op", "obs=on");
  json.add("counter_inc", disabled_ns, "ns/op", "obs=off");
  json.add("clean_scrape_tick", clean_tick_ns, "ns/op", "obs=on");
  json.write();

  const bool pass = overhead_pct < 5.0 && scrape_pct < 5.0;
  std::cout << "\nobservability overhead " << (pass ? "PASS" : "FAIL") << ": "
            << overhead_pct << "% instrumented, " << scrape_pct
            << "% with fleet scrapes (budget 5%)\n";
  return pass ? 0 : 1;
}
