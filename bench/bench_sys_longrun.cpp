// System bench (beyond the paper's figures): closed-loop, long-horizon
// behaviour. Node loads drift as a bounded random walk over many rounds; in
// DUST mode the optimizer runs each round and the plan is applied to the
// network state (the what-if operator), while the baseline takes no action.
// Measures how much overload DUST removes over time — the operational
// promise behind Fig. 6, quantified longitudinally.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"

namespace {

using namespace dust;

struct LongRunStats {
  std::size_t overloaded_node_rounds = 0;
  std::size_t node_rounds = 0;
  util::RunningStats peak_utilization;
  double offloaded_total = 0.0;

  [[nodiscard]] double overload_fraction() const {
    return node_rounds ? static_cast<double>(overloaded_node_rounds) /
                             static_cast<double>(node_rounds)
                       : 0.0;
  }
};

LongRunStats run(bool with_dust, std::size_t rounds, std::uint64_t seed) {
  util::Rng rng(seed);
  core::Nmdb nmdb = bench::fat_tree_scenario(4, rng);
  // Start everyone mid-band so drift, not initialization, creates overloads.
  for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
    nmdb.network().set_node_utilization(v, rng.uniform(40.0, 70.0));

  core::OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.allow_partial = true;
  const core::OptimizationEngine engine(options);
  const core::Thresholds& thresholds = nmdb.default_thresholds();

  LongRunStats stats;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Load drift: mean-reverting (OU-style) so the system is stationary.
    // Most nodes hover around 55%; every 5th node is a hotspot reverting
    // to 88% — persistently busy unless its monitoring load is moved.
    for (graph::NodeId v = 0; v < nmdb.node_count(); ++v) {
      const double target = (v % 5 == 0) ? 88.0 : 55.0;
      const double current = nmdb.network().node_utilization(v);
      const double next =
          current + 0.15 * (target - current) + rng.normal(0.0, 2.5);
      nmdb.network().set_node_utilization(v, std::clamp(next, 10.0, 100.0));
    }
    if (with_dust) {
      const core::PlacementResult result = engine.run(nmdb);
      if (!result.assignments.empty()) {
        core::apply_assignments(nmdb, result.assignments);
        stats.offloaded_total += result.offloaded_total();
      }
    }
    double peak = 0.0;
    for (graph::NodeId v = 0; v < nmdb.node_count(); ++v) {
      const double utilization = nmdb.network().node_utilization(v);
      peak = std::max(peak, utilization);
      ++stats.node_rounds;
      // Strict: a fully-shed origin lands exactly at Cmax by design
      // (Cs = C - Cmax); only genuine excess counts as overload.
      if (utilization > thresholds.c_max + 1e-9)
        ++stats.overloaded_node_rounds;
    }
    stats.peak_utilization.add(peak);
  }
  return stats;
}

}  // namespace

int main() {
  using namespace dust;
  bench::print_header(
      "System — long-horizon closed loop: drifting loads, DUST vs no action",
      "(not a paper figure; longitudinal view of the Fig. 6 promise)");

  const std::size_t rounds = bench::iterations(2000, 400);
  const LongRunStats baseline = run(false, rounds, bench::base_seed());
  const LongRunStats dust = run(true, rounds, bench::base_seed());

  util::Table table("closed-loop comparison (" + std::to_string(rounds) +
                    " rounds, 20 nodes)");
  table.set_precision(3).header({"metric", "no action", "DUST"});
  table.row({std::string("overloaded node-rounds (%)"),
             baseline.overload_fraction() * 100.0,
             dust.overload_fraction() * 100.0});
  table.row({std::string("mean peak utilization (%)"),
             baseline.peak_utilization.mean(), dust.peak_utilization.mean()});
  table.row({std::string("capacity moved (%-points total)"),
             0.0, dust.offloaded_total});
  bench::emit(table);

  std::cout << "\nexpectation: DUST cuts overloaded node-rounds by an order "
               "of magnitude and caps peak utilization near Cmax\n";
  return 0;
}
