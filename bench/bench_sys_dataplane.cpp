// System bench: the telemetry data plane end to end — BlockStreamer draining
// a Tsdb over a real loopback socket into a Collector that decompresses and
// verifies every block. Reports samples/sec, payload bytes/sec, and the
// Gorilla compression ratio as dust-bench-v1 JSON (BENCH_dataplane.json).
//
// Gate: the loopback pipeline must sustain >= 1M samples/sec at CI scale.
// The path under test is seal -> thin -> coalesce -> gather-encode ->
// writev -> reassemble -> CRC -> decode -> verify -> adopt; appends are
// excluded (they are the producer's cost, not the data plane's).
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "dataplane/block_streamer.hpp"
#include "dataplane/collector.hpp"
#include "telemetry/tsdb.hpp"
#include "util/table.hpp"
#include "wire/socket_transport.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace dust;

  const std::size_t kSeries = 8;
  const std::size_t kSamplesPerSeries =
      bench::iterations(1'000'000, 250'000);
  const std::size_t kTotalSamples = kSeries * kSamplesPerSeries;

  bench::print_header(
      "sys_dataplane",
      "telemetry offloading moves the data too: sealed Gorilla blocks stream "
      "destination -> collector without copies and without silent loss");

  wire::SocketTransportConfig hub_config;
  hub_config.role = wire::SocketTransportConfig::Role::kHub;
  wire::SocketTransport hub(hub_config);

  wire::SocketTransportConfig leaf_config;
  leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
  leaf_config.port = hub.listen_port();
  wire::SocketTransport leaf(leaf_config);

  dataplane::Collector collector(hub, "dust-collector");
  leaf.register_endpoint("dust-streamer-1", [](const sim::Envelope&) {});

  telemetry::Tsdb tsdb;
  std::vector<telemetry::MetricId> metrics;
  for (std::size_t s = 0; s < kSeries; ++s)
    metrics.push_back(tsdb.register_metric(telemetry::MetricDescriptor{
        "series" + std::to_string(s), "units", telemetry::MetricKind::kGauge}));

  // Gorilla-friendly but non-trivial content: slow drift plus jitter, the
  // shape real utilization series take.
  util::Rng rng(bench::base_seed());
  std::int64_t now_ms = 0;
  std::vector<double> level(kSeries, 50.0);
  for (std::size_t i = 0; i < kSamplesPerSeries; ++i) {
    now_ms += 100;
    for (std::size_t s = 0; s < kSeries; ++s) {
      level[s] += rng.uniform(-0.5, 0.5);
      tsdb.append(metrics[s], telemetry::Sample{now_ms, level[s]});
    }
  }

  dataplane::BlockStreamerConfig config;
  config.owner = 1;
  config.local_endpoint = "dust-streamer-1";
  dataplane::BlockStreamer streamer(leaf, tsdb, config);

  const Clock::time_point start = Clock::now();
  streamer.flush();
  // Alternate pump (new frames, if any sealed blocks remained) with polls
  // until every sample landed; deadline turns a routing bug into a failure.
  while (collector.stats().samples < streamer.stats().samples_sent) {
    leaf.poll_once(0);
    hub.poll_once(0);
    streamer.pump();
    if (seconds_since(start) > 120.0) {
      std::cerr << "FAIL: collector stalled at " << collector.stats().samples
                << "/" << streamer.stats().samples_sent << " samples\n";
      return 1;
    }
  }
  const double elapsed = seconds_since(start);

  const dataplane::CollectorStats& got = collector.stats();
  const double samples_per_sec = static_cast<double>(got.samples) / elapsed;
  const double bytes_per_sec =
      static_cast<double>(got.payload_bytes) / elapsed;
  const double raw_bytes = static_cast<double>(kTotalSamples) * 16.0;
  const double compression_ratio =
      raw_bytes / static_cast<double>(got.payload_bytes);

  util::Table table("dataplane loopback throughput");
  table.header({"metric", "value"});
  table.row({"samples streamed", static_cast<std::int64_t>(got.samples)});
  table.row({"batches", static_cast<std::int64_t>(got.batches)});
  table.row({"blocks", static_cast<std::int64_t>(got.blocks)});
  table.row({"elapsed (s)", elapsed});
  table.row({"samples/sec", samples_per_sec});
  table.row({"payload MB/sec", bytes_per_sec / (1024.0 * 1024.0)});
  table.row({"compression ratio (16B raw / wire)", compression_ratio});
  bench::emit(table);

  bench::JsonReport report("dataplane");
  report.set_topology(2, 1);  // streamer -> collector over one loopback link
  report.add("samples_per_sec", samples_per_sec, "samples/s", "mode=full");
  report.add("payload_bytes_per_sec", bytes_per_sec, "bytes/s", "mode=full");
  report.add("compression_ratio", compression_ratio, "ratio", "mode=full");
  report.add("samples_streamed", static_cast<double>(got.samples), "samples",
             "mode=full");
  const std::string json = report.write();
  if (!json.empty()) std::cout << "\nJSON: " << json << "\n";

  bool failed = false;
  if (samples_per_sec < 1'000'000.0) {
    std::cerr << "FAIL: " << samples_per_sec
              << " samples/sec is below the 1M/sec loopback gate\n";
    failed = true;
  }
  if (!collector.loss_fully_declared()) {
    std::cerr << "FAIL: collector observed undeclared loss on an idle link\n";
    failed = true;
  }
  if (got.samples != kTotalSamples) {
    std::cerr << "FAIL: streamed " << got.samples << " of " << kTotalSamples
              << " samples\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
