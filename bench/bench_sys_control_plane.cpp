// System bench (beyond the paper's figures): control-plane behaviour of the
// full DUST protocol on a fat-tree — message volume per node per minute,
// placement-cycle latency, and convergence time from busy detection to
// acknowledged offload. These are the operational numbers a deployment
// would watch.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/manager.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dust;
  bench::print_header(
      "System — control-plane load and convergence (4-k fat-tree, 20 nodes)",
      "(not a paper figure; operational characteristics of the protocol)");

  const graph::FatTree topo(4);
  const std::size_t n = topo.graph().node_count();
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(bench::base_seed()));

  net::NetworkState state(topo.graph());
  for (graph::NodeId v = 0; v < n; ++v) {
    state.set_node_utilization(v, 50.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  core::ManagerConfig config;
  config.update_interval_ms = 10000;   // 10 s STATs
  config.placement_period_ms = 60000;  // 1 min cycles (enterprise-like)
  config.keepalive_timeout_ms = 30000;
  config.keepalive_check_period_ms = 10000;
  core::DustManager manager(sim, transport,
                            core::Nmdb(std::move(state), core::Thresholds{}),
                            config);
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < n; ++v) {
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v,
        core::ClientConfig{.keepalive_interval_ms = 10000},
        util::Rng(bench::base_seed() + v)));
    clients.back()->set_reported_state(50.0, 10.0, 10);
    clients.back()->start();
  }
  manager.start();

  // Steady state for 10 minutes.
  sim.run_until(10 * 60000);
  const std::uint64_t steady_msgs = transport.sent();

  // Overload event: node 0 goes busy; measure convergence to acked offload.
  clients[0]->set_reported_state(92.0, 10.0, 10);
  const sim::TimeMs busy_at = sim.now();
  sim::TimeMs acked_at = -1;
  while (sim.now() < busy_at + 10 * 60000) {
    sim.run_until(sim.now() + 1000);
    bool acked = false;
    for (const core::ActiveOffload& offload : manager.active_offloads())
      if (offload.busy == 0 && offload.acknowledged) acked = true;
    if (acked) {
      acked_at = sim.now();
      break;
    }
  }
  // Placement-cycle wall time on the live NMDB.
  util::RunningStats cycle_wall;
  for (int i = 0; i < 50; ++i) {
    util::Timer timer;
    manager.run_placement_cycle();
    cycle_wall.add(timer.millis());
  }

  util::Table table("control-plane characteristics");
  table.set_precision(2).header({"metric", "value"});
  table.row({std::string("steady-state msgs/node/minute"),
             static_cast<double>(steady_msgs) / (10.0 * n)});
  table.row({std::string("transport deliveries"),
             static_cast<std::int64_t>(transport.delivered())});
  table.row({std::string("busy -> acked offload (sim ms)"),
             acked_at >= 0 ? static_cast<double>(acked_at - busy_at) : -1.0});
  table.row({std::string("placement cycle wall time (ms, mean)"),
             cycle_wall.mean()});
  table.row({std::string("placement cycle wall time (ms, max)"),
             cycle_wall.max()});
  bench::emit(table);

  std::cout << "\nexpectation: a few control messages per node per minute; "
               "convergence within one placement period (60 s sim time)\n";
  return 0;
}
