// End-to-end protocol tests: DUST-Manager and DUST-Clients exchanging the
// §III-B message flow over the simulated transport — handshake, STATs,
// placement, agent transfer, keepalives, failure/replica (REP), release,
// and the §III-C QoS behaviour under congestion.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"

namespace dust::core {
namespace {

struct Harness {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  std::unique_ptr<DustManager> manager;
  std::vector<std::unique_ptr<DustClient>> clients;
  std::vector<std::unique_ptr<sim::MonitoredNode>> devices;

  // Ring of `n` protocol-only clients (no device model).
  explicit Harness(std::uint32_t n, ManagerConfig config = fast_config(),
                   Thresholds thresholds = Thresholds{}) {
    net::NetworkState state(graph::make_ring(n));
    for (graph::NodeId v = 0; v < n; ++v) {
      state.set_node_utilization(v, 70.0);
      state.set_monitoring_data_mb(v, 10.0);
    }
    manager = std::make_unique<DustManager>(
        sim, transport, Nmdb(std::move(state), thresholds), config);
    for (graph::NodeId v = 0; v < n; ++v) {
      clients.push_back(std::make_unique<DustClient>(
          sim, transport, v, ClientConfig{.keepalive_interval_ms = 1000},
          util::Rng(100 + v)));
      clients.back()->set_reported_state(70.0, 10.0, 10);
    }
  }

  static ManagerConfig fast_config() {
    ManagerConfig config;
    config.update_interval_ms = 1000;
    config.placement_period_ms = 5000;
    config.keepalive_timeout_ms = 4000;
    config.keepalive_check_period_ms = 1000;
    return config;
  }

  void start_all() {
    for (auto& client : clients) client->start();
    manager->start();
  }
};

TEST(Protocol, HandshakeAcksCapableClients) {
  Harness h(4);
  h.clients[2] = std::make_unique<DustClient>(
      h.sim, h.transport, 2, ClientConfig{.offload_capable = false},
      util::Rng(1));
  h.start_all();
  h.sim.run_until(100);
  EXPECT_TRUE(h.clients[0]->acknowledged());
  EXPECT_FALSE(h.clients[2]->acknowledged());  // opted out, no ACK
  EXPECT_FALSE(h.manager->nmdb().offload_capable(2));
  EXPECT_TRUE(h.manager->nmdb().offload_capable(0));
}

TEST(Protocol, StatsFlowIntoNmdb) {
  Harness h(3);
  h.start_all();
  h.clients[1]->set_reported_state(92.5, 42.0, 8);
  h.sim.run_until(3000);
  EXPECT_GT(h.manager->stats_received(), 0u);
  EXPECT_DOUBLE_EQ(h.manager->nmdb().network().node_utilization(1), 92.5);
  EXPECT_DOUBLE_EQ(h.manager->nmdb().network().monitoring_data_mb(1), 42.0);
  EXPECT_EQ(h.manager->nmdb().agent_count(1), 8u);
}

TEST(Protocol, PlacementCreatesOffloadAndTransfersAgents) {
  Harness h(4);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);  // busy: Cs = 10
  h.clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate: Cd = 20
  h.sim.run_until(10000);
  EXPECT_GE(h.manager->active_offload_count(), 1u);
  const auto offloads = h.manager->active_offloads();
  ASSERT_FALSE(offloads.empty());
  EXPECT_EQ(offloads[0].busy, 0u);
  EXPECT_EQ(offloads[0].destination, 1u);
  EXPECT_TRUE(offloads[0].acknowledged);
  // Agents re-homed: 10 * (10 / 10) = 10 agents moved.
  EXPECT_EQ(h.clients[0]->offloaded_agent_count(), 10u);
  EXPECT_EQ(h.clients[1]->hosted_agent_count(), 10u);
  EXPECT_EQ(h.manager->nmdb().role(1), NodeRole::kOffloadDestination);
}

TEST(Protocol, DestinationSendsKeepalives) {
  Harness h(4);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[1]->set_reported_state(40.0, 5.0, 10);
  h.sim.run_until(20000);
  EXPECT_GT(h.clients[1]->keepalives_sent(), 2u);
  EXPECT_EQ(h.manager->keepalive_failures(), 0u);
}

TEST(Protocol, FailedDestinationReplacedByReplica) {
  Harness h(5);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);  // busy
  h.clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate (nearest)
  h.clients[2]->set_reported_state(40.0, 5.0, 10);   // replica candidate
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const graph::NodeId first_dest = h.manager->active_offloads()[0].destination;

  // Kill the destination: keepalives stop.
  h.clients[first_dest]->set_failed(true);
  h.sim.run_until(30000);
  EXPECT_GE(h.manager->keepalive_failures(), 1u);
  const auto offloads = h.manager->active_offloads();
  ASSERT_GE(offloads.size(), 1u);
  EXPECT_NE(offloads[0].destination, first_dest);
  // Busy client re-homed its agents to the replica.
  const auto destinations = h.clients[0]->hosting_destinations();
  ASSERT_EQ(destinations.size(), 1u);
  EXPECT_NE(destinations[0], first_dest);
  EXPECT_GT(h.clients[destinations[0]]->hosted_agent_count(), 0u);
}

// Satellite of the dust::check harness: a burst of Keepalive loss longer
// than the keepalive timeout must be treated as a destination failure, and
// the replica substitution (REP to the busy client, agents re-homed) must
// complete within 2x the keepalive timeout of the burst starting — even
// though STATs and OffloadAcks to the manager are lost during the burst.
TEST(Protocol, ReplicaSubstitutionUnderBurstyKeepaliveLoss) {
  Harness h(5);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);  // busy
  h.clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate (nearest)
  h.clients[2]->set_reported_state(40.0, 5.0, 10);   // replica candidate
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const graph::NodeId first_dest = h.manager->active_offloads()[0].destination;
  ASSERT_EQ(h.clients[0]->reps_received(), 0u);

  // Burst: everything inbound to the manager — keepalives included — is
  // lost for longer than keepalive_timeout_ms (4000), then heals.
  constexpr sim::TimeMs kBurstStart = 12000;
  constexpr sim::TimeMs kBurstEnd = 17000;
  h.sim.schedule_at(kBurstStart, [&h] {
    h.transport.set_partitioned("dust-manager", true);
  });
  h.sim.schedule_at(kBurstEnd, [&h] {
    h.transport.set_partitioned("dust-manager", false);
  });

  // The deadline the harness audits (invariant I6): burst start + 2x timeout.
  h.sim.run_until(kBurstStart + 2 * 4000);
  EXPECT_GE(h.manager->keepalive_failures(), 1u);
  EXPECT_GE(h.clients[0]->reps_received(), 1u);  // REP reached the busy node
  const auto offloads = h.manager->active_offloads();
  ASSERT_GE(offloads.size(), 1u);
  EXPECT_NE(offloads[0].destination, first_dest);
  const auto destinations = h.clients[0]->hosting_destinations();
  ASSERT_EQ(destinations.size(), 1u);
  EXPECT_NE(destinations[0], first_dest);
  EXPECT_GT(h.clients[destinations[0]]->hosted_agent_count(), 0u);

  // After the burst heals, the substituted offload stays stable: no
  // flip-flop back to the quarantined original.
  h.sim.run_until(30000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  EXPECT_NE(h.manager->active_offloads()[0].destination, first_dest);
}

TEST(Protocol, LoadDropTriggersRelease) {
  Harness h(4);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[1]->set_reported_state(40.0, 5.0, 10);
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  // Busy node's residual load falls far below Cmax: it can re-absorb.
  h.clients[0]->set_reported_state(30.0, 10.0, 0);
  h.sim.run_until(20000);
  EXPECT_EQ(h.manager->active_offload_count(), 0u);
  EXPECT_GE(h.manager->releases(), 1u);
  EXPECT_EQ(h.clients[0]->offloaded_agent_count(), 0u);
  EXPECT_EQ(h.clients[1]->hosted_agent_count(), 0u);
}

TEST(Protocol, NoneOffloadingNodeNeverChosen) {
  Harness h(4);
  // Node 1 would be the best candidate but opts out.
  h.clients[1] = std::make_unique<DustClient>(
      h.sim, h.transport, 1, ClientConfig{.offload_capable = false},
      util::Rng(2));
  h.clients[1]->set_reported_state(10.0, 5.0, 10);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[3]->set_reported_state(40.0, 5.0, 10);  // capable candidate
  h.sim.run_until(10000);
  for (const ActiveOffload& offload : h.manager->active_offloads())
    EXPECT_NE(offload.destination, 1u);
}

TEST(Protocol, TelemetryDataRidesLowPriority) {
  Harness h(4);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[1]->set_reported_state(40.0, 5.0, 10);
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);

  // Congest the fabric: monitoring data is dropped, control still flows.
  h.transport.set_congested(true);
  const std::uint64_t dropped_before = h.transport.dropped();
  telemetry::DeviceSnapshot snapshot;
  snapshot.timestamp_ms = h.sim.now();
  h.clients[0]->publish_snapshot(snapshot);
  h.sim.run_until(h.sim.now() + 100);
  EXPECT_GT(h.transport.dropped(), dropped_before);
  // Keepalives (kNormal) still arrive despite congestion.
  const std::uint64_t keepalives_before = h.clients[1]->keepalives_sent();
  h.sim.run_until(h.sim.now() + 10000);
  EXPECT_GT(h.clients[1]->keepalives_sent(), keepalives_before);
  EXPECT_EQ(h.manager->keepalive_failures(), 0u);
}

TEST(Protocol, ManagerIgnoresGarbagePayload) {
  Harness h(3);
  h.start_all();
  h.transport.send("stranger", manager_endpoint(), std::string("not-a-message"));
  h.sim.run_until(100);  // must not crash
  EXPECT_EQ(h.manager->active_offload_count(), 0u);
}

TEST(Protocol, StopCancelsPeriodicWork) {
  Harness h(3);
  h.start_all();
  h.sim.run_until(1000);
  h.manager->stop();
  const std::size_t cycles = h.manager->placement_cycles();
  h.sim.run_until(60000);
  EXPECT_EQ(h.manager->placement_cycles(), cycles);
}

TEST(Protocol, DeviceBackedClientsMoveRealAgents) {
  // Full-stack: device models + protocol; offload moves MonitorAgents and
  // remote snapshots drive the destination's hosted agents. The simulated
  // switch runs ~31% CPU when monitoring locally (the Fig. 6 operating
  // point), so this scenario uses device-scale thresholds: busy above 25%,
  // candidate below 20%.
  Thresholds device_scale;
  device_scale.c_max = 25.0;
  device_scale.co_max = 20.0;
  device_scale.x_min = 5.0;
  Harness h(4, Harness::fast_config(), device_scale);
  h.devices.push_back(std::make_unique<sim::MonitoredNode>(
      "busy", sim::NodeResources{}, 15.0, 10000.0));
  h.devices.push_back(std::make_unique<sim::MonitoredNode>(
      "dest", sim::NodeResources{}, 10.0, 6000.0));
  for (auto& agent : telemetry::standard_agents())
    h.devices[0]->add_local_agent(agent);
  const ClientConfig fast_keepalive{.offload_capable = true,
                                    .keepalive_interval_ms = 1000};
  h.clients[0] = std::make_unique<DustClient>(h.sim, h.transport, 0,
                                              fast_keepalive, util::Rng(11),
                                              h.devices[0].get());
  h.clients[1] = std::make_unique<DustClient>(h.sim, h.transport, 1,
                                              fast_keepalive, util::Rng(12),
                                              h.devices[1].get());
  // The remaining ring nodes sit in the neutral band for these thresholds.
  h.clients[2]->set_reported_state(22.0, 5.0, 0);
  h.clients[3]->set_reported_state(22.0, 5.0, 0);
  h.start_all();

  // Drive device ticks + stats so the manager sees a busy node.
  util::Rng rng(55);
  for (int t = 0; t <= 20; ++t) {
    h.devices[0]->tick(h.sim.now(), 1000, 20000.0, 0.0, rng);
    h.devices[1]->tick(h.sim.now(), 1000, 5000.0, 0.0, rng);
    h.clients[0]->send_stat();
    h.clients[1]->send_stat();
    h.sim.run_until(h.sim.now() + 1000);
  }
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  EXPECT_EQ(h.devices[0]->local_agent_count(), 0u);
  EXPECT_EQ(h.devices[1]->remote_agent_count(), 10u);

  // Remote snapshots charge CPU at the destination.
  telemetry::DeviceSnapshot snap;
  snap.timestamp_ms = h.sim.now();
  snap.rx_mbps = 20000.0;
  h.clients[0]->publish_snapshot(snap);
  h.sim.run_until(h.sim.now() + 100);
  const sim::TickStats stats =
      h.devices[1]->tick(h.sim.now(), 1000, 5000.0, 0.0, rng);
  EXPECT_GT(stats.monitor_cpu_cores, 0.5);
}

TEST(Protocol, OffloadCarriesControllableRoute) {
  Harness h(5);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[2]->set_reported_state(40.0, 5.0, 10);  // candidate 2 hops away
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const ActiveOffload offload = h.manager->active_offloads()[0];
  ASSERT_GE(offload.route.size(), 2u);
  EXPECT_EQ(offload.route.front(), offload.busy);
  EXPECT_EQ(offload.route.back(), offload.destination);
  // Consecutive route nodes must be adjacent in the topology.
  const graph::Graph& g = h.manager->nmdb().network().graph();
  for (std::size_t i = 0; i + 1 < offload.route.size(); ++i)
    EXPECT_TRUE(g.find_edge(offload.route[i], offload.route[i + 1]).has_value());
}

TEST(Protocol, HandshakeRecordsPlatformFactor) {
  Harness h(3);
  h.clients[1] = std::make_unique<DustClient>(
      h.sim, h.transport, 1,
      ClientConfig{.offload_capable = true,
                   .keepalive_interval_ms = 1000,
                   .platform_factor = 4.0},
      util::Rng(3));
  h.clients[1]->set_reported_state(70.0, 10.0, 10);
  h.start_all();
  h.sim.run_until(100);
  EXPECT_DOUBLE_EQ(h.manager->nmdb().platform_factor(1), 4.0);
  EXPECT_DOUBLE_EQ(h.manager->nmdb().platform_factor(0), 1.0);
  EXPECT_FALSE(h.manager->nmdb().homogeneous());
}

TEST(Protocol, BusyDestinationRedirectsWorkload) {
  Harness h(5);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);  // busy
  h.clients[1]->set_reported_state(40.0, 5.0, 10);   // first destination
  h.clients[2]->set_reported_state(40.0, 5.0, 10);   // redirect target
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const graph::NodeId first_dest = h.manager->active_offloads()[0].destination;

  // The destination gets overloaded by its own primary functions (still
  // alive, still keepaliving): the manager must redirect, not quarantine.
  h.clients[first_dest]->set_reported_state(92.0, 5.0, 10);
  h.sim.run_until(25000);
  EXPECT_GE(h.manager->redirects(), 1u);
  EXPECT_TRUE(h.manager->nmdb().offload_capable(first_dest));  // not dead
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  for (const ActiveOffload& offload : h.manager->active_offloads())
    EXPECT_NE(offload.destination, first_dest);
  // Old destination dropped the hosted agents; the busy node re-homed them.
  EXPECT_EQ(h.clients[first_dest]->hosted_agent_count(), 0u);
  const auto destinations = h.clients[0]->hosting_destinations();
  ASSERT_EQ(destinations.size(), 1u);
  EXPECT_NE(destinations[0], first_dest);
  EXPECT_GT(h.clients[destinations[0]]->hosted_agent_count(), 0u);
}

TEST(Protocol, ConvergesUnderMessageLoss) {
  // 15% of control-plane messages vanish; periodic STATs and placement
  // cycles must still converge to a working offload.
  Harness h(4);
  h.transport.set_loss_probability(0.15);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  h.clients[1]->set_reported_state(40.0, 5.0, 10);
  h.sim.run_until(120000);
  EXPECT_GE(h.manager->active_offload_count(), 1u);
  EXPECT_GT(h.transport.dropped(), 0u);
  bool moved = false;
  for (const auto& client : h.clients)
    if (client->hosted_agent_count() > 0) moved = true;
  EXPECT_TRUE(moved);
}

TEST(Protocol, SurvivesDestinationChurn) {
  // Destinations fail one after another; each failure must produce a
  // replica hand-off until candidates run out.
  Harness h(6);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);
  for (graph::NodeId v : {1u, 2u, 3u})
    h.clients[v]->set_reported_state(40.0, 5.0, 10);
  h.sim.run_until(10000);
  std::set<graph::NodeId> killed;
  for (int round = 0; round < 2; ++round) {
    ASSERT_GE(h.manager->active_offload_count(), 1u);
    const graph::NodeId dest = h.manager->active_offloads()[0].destination;
    EXPECT_EQ(killed.count(dest), 0u);
    killed.insert(dest);
    h.clients[dest]->set_failed(true);
    h.sim.run_until(h.sim.now() + 20000);
  }
  EXPECT_GE(h.manager->keepalive_failures(), 2u);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  EXPECT_EQ(killed.count(h.manager->active_offloads()[0].destination), 0u);
}

// The incremental pipeline (Trmin cache + warm starts) drops in behind the
// same protocol flow: offloads are still created from cached rows across
// repeated cycles, the cache actually serves hits, the solver warm-starts,
// and the internal warm-vs-cold cross-check never fires.
TEST(Protocol, IncrementalPlacementMatchesProtocolFlow) {
  ManagerConfig config = Harness::fast_config();
  config.incremental_placement = true;
  config.optimizer.verify_warm_start = true;  // cross-check every warm solve
  Harness h(4, config);
  h.start_all();
  h.clients[0]->set_reported_state(90.0, 10.0, 10);  // busy: Cs = 10
  h.clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate: Cd = 20
  h.sim.run_until(10000);
  EXPECT_GE(h.manager->active_offload_count(), 1u);
  const auto offloads = h.manager->active_offloads();
  ASSERT_FALSE(offloads.empty());
  EXPECT_EQ(offloads[0].busy, 0u);
  EXPECT_EQ(offloads[0].destination, 1u);

  // Steady-state cycles (links untouched): every row comes from cache.
  for (int i = 0; i < 5; ++i) h.manager->run_placement_cycle();
  const net::ResponseTimeCacheStats stats = h.manager->trmin_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.bypasses, 0u);
  EXPECT_GT(h.manager->engine().warm_solves(), 0u);
  const obs::RegistrySnapshot scrape = obs::MetricRegistry::global().snapshot();
  const auto* mismatches =
      scrape.find_counter("dust_solver_warm_verify_mismatch_total");
  ASSERT_NE(mismatches, nullptr);
  EXPECT_EQ(mismatches->value, 0u);
}

}  // namespace
}  // namespace dust::core
