#include "solver/transportation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "solver/simplex.hpp"
#include "util/rng.hpp"

namespace dust::solver {
namespace {

double row_sum(const TransportationResult& r, std::size_t i, std::size_t n) {
  double s = 0;
  for (std::size_t j = 0; j < n; ++j) s += r.flow[i * n + j];
  return s;
}

double col_sum(const TransportationResult& r, std::size_t j, std::size_t m,
               std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < m; ++i) s += r.flow[i * n + j];
  return s;
}

TEST(Transportation, TextbookBalanced) {
  // Classic 3x3 with supplies 300/400/500 and demands 250/350/400 + dummy
  // absorbed by capacities exactly (total 1200 vs 1000): capacities chosen
  // so the instance is tight where it matters.
  TransportationProblem p;
  p.supply = {300, 400, 500};
  p.capacity = {250, 350, 600};
  p.cost = {3, 1, 7,
            2, 6, 5,
            8, 3, 3};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  // Cross-check against the general simplex.
  const Solution s = solve_simplex(to_linear_program(p));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, s.objective, 1e-6);
}

TEST(Transportation, SingleCellExact) {
  TransportationProblem p;
  p.supply = {5};
  p.capacity = {7};
  p.cost = {2.5};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 12.5, 1e-9);
  EXPECT_NEAR(r.flow[0], 5.0, 1e-9);
}

TEST(Transportation, PicksCheaperDestination) {
  TransportationProblem p;
  p.supply = {10};
  p.capacity = {10, 10};
  p.cost = {5.0, 1.0};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.flow_at(0, 1, 2), 10.0, 1e-9);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
}

TEST(Transportation, SplitsWhenCapacityBinds) {
  TransportationProblem p;
  p.supply = {10};
  p.capacity = {4, 10};
  p.cost = {1.0, 2.0};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.flow_at(0, 0, 2), 4.0, 1e-9);
  EXPECT_NEAR(r.flow_at(0, 1, 2), 6.0, 1e-9);
  EXPECT_NEAR(r.objective, 16.0, 1e-9);
}

TEST(Transportation, InfeasibleWhenSupplyExceedsCapacity) {
  TransportationProblem p;
  p.supply = {10, 5};
  p.capacity = {8};
  p.cost = {1.0, 1.0};
  EXPECT_EQ(solve_transportation(p).status, Status::kInfeasible);
}

TEST(Transportation, ForbiddenCellAvoided) {
  TransportationProblem p;
  p.supply = {5};
  p.capacity = {10, 10};
  p.cost = {kInfinity, 3.0};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.flow_at(0, 1, 2), 5.0, 1e-9);
  EXPECT_NEAR(r.objective, 15.0, 1e-9);
}

TEST(Transportation, InfeasibleWhenOnlyForbiddenRoutesRemain) {
  TransportationProblem p;
  p.supply = {5, 5};
  p.capacity = {5, 5};
  p.cost = {kInfinity, kInfinity,
            1.0, 1.0};
  EXPECT_EQ(solve_transportation(p).status, Status::kInfeasible);
}

TEST(Transportation, ZeroSupplyTrivial) {
  TransportationProblem p;
  p.supply = {0.0, 0.0};
  p.capacity = {5.0};
  p.cost = {1.0, 1.0};
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Transportation, EmptyProblem) {
  TransportationProblem p;
  const TransportationResult r = solve_transportation(p);
  EXPECT_EQ(r.status, Status::kOptimal);
}

TEST(Transportation, NoDestinationsWithSupplyInfeasible) {
  TransportationProblem p;
  p.supply = {1.0};
  EXPECT_EQ(solve_transportation(p).status, Status::kInfeasible);
}

TEST(Transportation, NegativeInputsThrow) {
  TransportationProblem p;
  p.supply = {-1.0};
  p.capacity = {5.0};
  p.cost = {1.0};
  EXPECT_THROW(solve_transportation(p), std::invalid_argument);
  p.supply = {1.0};
  p.capacity = {-5.0};
  EXPECT_THROW(solve_transportation(p), std::invalid_argument);
}

TEST(Transportation, CostSizeMismatchThrows) {
  TransportationProblem p;
  p.supply = {1.0};
  p.capacity = {1.0};
  p.cost = {1.0, 2.0};
  EXPECT_THROW(solve_transportation(p), std::invalid_argument);
}

TEST(Transportation, DegenerateTiesTerminate) {
  // All costs equal and supplies exactly matching capacities: maximally
  // degenerate; any assignment is optimal.
  TransportationProblem p;
  p.supply = {2, 2, 2};
  p.capacity = {2, 2, 2};
  p.cost = std::vector<double>(9, 1.0);
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
}

class TransportationRandomSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

// Property: the specialized solver and the general simplex agree on the
// optimum, and the flow satisfies all constraints.
TEST_P(TransportationRandomSweep, AgreesWithSimplexAndFeasible) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 1 + rng.below(4);
    const std::size_t n = 1 + rng.below(5);
    TransportationProblem p;
    for (std::size_t i = 0; i < m; ++i)
      p.supply.push_back(rng.uniform(0.0, 10.0));
    const double total =
        std::accumulate(p.supply.begin(), p.supply.end(), 0.0);
    // Guarantee feasibility: capacities cover supply with slack.
    for (std::size_t j = 0; j < n; ++j)
      p.capacity.push_back(total / n + rng.uniform(0.0, 5.0));
    for (std::size_t c = 0; c < m * n; ++c)
      p.cost.push_back(rng.uniform(0.1, 9.0));
    const TransportationResult r = solve_transportation(p);
    ASSERT_EQ(r.status, Status::kOptimal) << "seed " << GetParam();
    // Feasibility invariants.
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(row_sum(r, i, n), p.supply[i], 1e-6);
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_LE(col_sum(r, j, m, n), p.capacity[j] + 1e-6);
    for (double f : r.flow) EXPECT_GE(f, -1e-9);
    // Optimality: simplex agreement.
    const Solution s = solve_simplex(to_linear_program(p));
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(r.objective, s.objective, 1e-5);
  }
}

// Property: tight instances (capacity == supply exactly) stay solvable.
TEST_P(TransportationRandomSweep, TightInstances) {
  util::Rng rng(GetParam() ^ 0x7777);
  const std::size_t m = 3, n = 3;
  TransportationProblem p;
  double total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    p.supply.push_back(rng.uniform(1.0, 5.0));
    total += p.supply.back();
  }
  p.capacity = {total / 3, total / 3, total / 3};
  for (std::size_t c = 0; c < m * n; ++c)
    p.cost.push_back(rng.uniform(0.5, 3.0));
  const TransportationResult r = solve_transportation(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  const Solution s = solve_simplex(to_linear_program(p));
  EXPECT_NEAR(r.objective, s.objective, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportationRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(ToLinearProgram, StructureMatches) {
  TransportationProblem p;
  p.supply = {3, 4};
  p.capacity = {5, 6, 7};
  p.cost = {1, 2, kInfinity, 4, 5, 6};
  const LinearProgram lp = to_linear_program(p);
  EXPECT_EQ(lp.variable_count(), 6u);
  EXPECT_EQ(lp.constraint_count(), 5u);  // 2 supply + 3 capacity
  // Forbidden cell is fixed at zero.
  EXPECT_DOUBLE_EQ(lp.variable(2).upper, 0.0);
}

}  // namespace
}  // namespace dust::solver
