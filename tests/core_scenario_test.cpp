#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb parse(const std::string& text) {
  std::istringstream in(text);
  return load_scenario(in);
}

TEST(Scenario, MinimalParse) {
  const Nmdb nmdb = parse(
      "nodes 3\n"
      "edge 0 1 10000 0.5\n"
      "edge 1 2 25000 0.8\n"
      "load 0 90 40\n");
  EXPECT_EQ(nmdb.node_count(), 3u);
  EXPECT_EQ(nmdb.network().edge_count(), 2u);
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(0), 90.0);
  EXPECT_DOUBLE_EQ(nmdb.network().monitoring_data_mb(0), 40.0);
  EXPECT_DOUBLE_EQ(nmdb.network().link(1).utilized_bandwidth(), 20000.0);
  EXPECT_EQ(nmdb.busy_nodes(), (std::vector<graph::NodeId>{0}));
}

TEST(Scenario, CommentsAndBlankLines) {
  const Nmdb nmdb = parse(
      "# a scenario\n"
      "\n"
      "nodes 2   # two switches\n"
      "edge 0 1 1000 0.5 # the only link\n");
  EXPECT_EQ(nmdb.node_count(), 2u);
  EXPECT_EQ(nmdb.network().edge_count(), 1u);
}

TEST(Scenario, ThresholdsCapableFactor) {
  const Nmdb nmdb = parse(
      "nodes 2\n"
      "thresholds 70 50 20\n"
      "edge 0 1 1000 0.5\n"
      "capable 1 0\n"
      "factor 0 2.5\n");
  EXPECT_DOUBLE_EQ(nmdb.default_thresholds().c_max, 70.0);
  EXPECT_DOUBLE_EQ(nmdb.default_thresholds().co_max, 50.0);
  EXPECT_FALSE(nmdb.offload_capable(1));
  EXPECT_DOUBLE_EQ(nmdb.platform_factor(0), 2.5);
  EXPECT_FALSE(nmdb.homogeneous());
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    parse("nodes 2\nedge 0 5 1000 0.5\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(Scenario, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::invalid_argument);             // no nodes
  EXPECT_THROW(parse("nodes 0\n"), std::invalid_argument);    // empty
  EXPECT_THROW(parse("edge 0 1 1 0.5\n"), std::invalid_argument);  // pre-nodes
  EXPECT_THROW(parse("nodes 2\nbogus 1\n"), std::invalid_argument);
  EXPECT_THROW(parse("nodes 2\nnodes 2\n"), std::invalid_argument);
  EXPECT_THROW(parse("nodes 2\nedge 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse("nodes 2\nload 7 50 1\n"), std::invalid_argument);
  EXPECT_THROW(parse("nodes 2\nthresholds 50 80 10\n"), std::invalid_argument);
  EXPECT_THROW(parse("nodes 2\nedge 0 1 1000 0.5\nedge 0 1 1000 0.5\n"),
               std::invalid_argument);  // parallel edge
}

TEST(Scenario, RoundTripPreservesEverything) {
  util::Rng rng(3);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb original(std::move(state), Thresholds{});
  original.set_offload_capable(3, false);
  original.set_platform_factor(5, 2.0);

  std::ostringstream out;
  save_scenario(out, original);
  std::istringstream in(out.str());
  const Nmdb restored = load_scenario(in);

  ASSERT_EQ(restored.node_count(), original.node_count());
  ASSERT_EQ(restored.network().edge_count(), original.network().edge_count());
  for (graph::NodeId v = 0; v < original.node_count(); ++v) {
    EXPECT_NEAR(restored.network().node_utilization(v),
                original.network().node_utilization(v), 1e-9);
    EXPECT_NEAR(restored.network().monitoring_data_mb(v),
                original.network().monitoring_data_mb(v), 1e-9);
    EXPECT_EQ(restored.offload_capable(v), original.offload_capable(v));
    EXPECT_NEAR(restored.platform_factor(v), original.platform_factor(v), 1e-9);
  }
  for (graph::EdgeId e = 0; e < original.network().edge_count(); ++e) {
    EXPECT_EQ(restored.network().graph().edge(e).a,
              original.network().graph().edge(e).a);
    EXPECT_NEAR(restored.network().link(e).utilization,
                original.network().link(e).utilization, 1e-9);
  }
  EXPECT_EQ(restored.busy_nodes(), original.busy_nodes());
  EXPECT_EQ(restored.candidate_nodes(), original.candidate_nodes());
}

}  // namespace
}  // namespace dust::core
