#include "sim/overlay_traffic.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace dust::sim {
namespace {

TEST(OverlayTraffic, NominalIsLoadFractionOfLineRate) {
  OverlayTraffic traffic(OverlayTrafficProfile{});
  EXPECT_DOUBLE_EQ(traffic.nominal_mbps(), 20000.0);  // 20% of 100 G
}

TEST(OverlayTraffic, MeanNearNominal) {
  OverlayTrafficProfile profile;
  profile.burst_probability = 0.0;
  OverlayTraffic traffic(profile);
  util::Rng rng(1);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(traffic.next(rng).rx_mbps);
  // exp(sigma^2/2) bias with sigma=0.1 is ~0.5%; allow 3%.
  EXPECT_NEAR(stats.mean(), 20000.0, 600.0);
}

TEST(OverlayTraffic, NeverExceedsLineRate) {
  OverlayTraffic traffic(OverlayTrafficProfile{});
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i)
    EXPECT_LE(traffic.next(rng).rx_mbps, 100000.0);
}

TEST(OverlayTraffic, BurstsFlaggedAndLarge) {
  OverlayTrafficProfile profile;
  profile.burst_probability = 1.0;
  OverlayTraffic traffic(profile);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const TrafficTick tick = traffic.next(rng);
    EXPECT_TRUE(tick.burst);
    EXPECT_GE(tick.rx_mbps, 4.0 * 20000.0 - 1e-9);
  }
}

TEST(OverlayTraffic, BurstFrequencyMatchesProbability) {
  OverlayTrafficProfile profile;
  profile.burst_probability = 0.05;
  OverlayTraffic traffic(profile);
  util::Rng rng(4);
  int bursts = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (traffic.next(rng).burst) ++bursts;
  EXPECT_NEAR(static_cast<double>(bursts) / n, 0.05, 0.01);
}

TEST(OverlayTraffic, TxFraction) {
  OverlayTrafficProfile profile;
  profile.tx_fraction = 0.5;
  profile.burst_probability = 0.0;
  OverlayTraffic traffic(profile);
  util::Rng rng(5);
  const TrafficTick tick = traffic.next(rng);
  EXPECT_DOUBLE_EQ(tick.tx_mbps, tick.rx_mbps * 0.5);
}

TEST(OverlayTraffic, DeterministicGivenSeed) {
  OverlayTraffic traffic(OverlayTrafficProfile{});
  util::Rng a(9), b(9);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(traffic.next(a).rx_mbps, traffic.next(b).rx_mbps);
}

}  // namespace
}  // namespace dust::sim
