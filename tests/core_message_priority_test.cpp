// Pins the §III-C QoS invariant at the transport boundary: every Envelope a
// protocol state machine sends carries exactly message_priority(payload) and
// message_kind(payload). The wrapper below sees each send before the
// simulator does, so a state machine that hand-rolls its own priority (the
// historical Release bug: kLow control traffic) fails here by name.
#include <gtest/gtest.h>

#include <any>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "telemetry/agent.hpp"

namespace dust::core {
namespace {

class PriorityAuditTransport : public sim::TransportBase {
 public:
  explicit PriorityAuditTransport(sim::Transport& inner) : inner_(inner) {}

  std::uint64_t register_endpoint(const std::string& name,
                                  Handler handler) override {
    return inner_.register_endpoint(name, std::move(handler));
  }
  void unregister_endpoint(const std::string& name,
                           std::uint64_t token) override {
    inner_.unregister_endpoint(name, token);
  }
  [[nodiscard]] bool has_endpoint(const std::string& name) const override {
    return inner_.has_endpoint(name);
  }

  void send(const std::string& from, const std::string& to, std::any payload,
            sim::Priority priority, std::string kind,
            std::uint64_t trace_id) override {
    const auto* message = std::any_cast<Message>(&payload);
    ASSERT_NE(message, nullptr) << "non-Message payload from " << from;
    const char* expected_kind = message_kind(*message);
    EXPECT_EQ(priority, message_priority(*message))
        << expected_kind << " sent " << from << " -> " << to
        << " with a priority that disagrees with message_priority()";
    EXPECT_EQ(kind, expected_kind)
        << "envelope kind mislabelled for " << expected_kind;
    ++kinds_seen_[expected_kind];
    inner_.send(from, to, std::move(payload), priority, std::move(kind),
                trace_id);
  }

  [[nodiscard]] const std::map<std::string, std::size_t>& kinds_seen() const {
    return kinds_seen_;
  }

 private:
  sim::Transport& inner_;
  std::map<std::string, std::size_t> kinds_seen_;
};

// One run that exercises every message type of the §III-B flow: handshake,
// STATs, placement (request/ack/transfer), telemetry, keepalives, a
// destination death (REP), and a load drop (Release).
TEST(MessagePriority, EveryEnvelopeMatchesMessagePriorityAndKind) {
  sim::Simulator sim;
  sim::Transport raw(sim, util::Rng(7));
  PriorityAuditTransport transport(raw);

  net::NetworkState state(graph::make_ring(5));
  for (graph::NodeId v = 0; v < 5; ++v) {
    state.set_node_utilization(v, 70.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  ManagerConfig config;
  config.update_interval_ms = 1000;
  config.placement_period_ms = 5000;
  config.keepalive_timeout_ms = 4000;
  config.keepalive_check_period_ms = 1000;
  DustManager manager(sim, transport, Nmdb(std::move(state), Thresholds{}),
                      config);
  std::vector<std::unique_ptr<DustClient>> clients;
  for (graph::NodeId v = 0; v < 5; ++v) {
    clients.push_back(std::make_unique<DustClient>(
        sim, transport, v, ClientConfig{.keepalive_interval_ms = 1000},
        util::Rng(100 + v)));
    clients.back()->set_reported_state(70.0, 10.0, 10);
    clients.back()->start();
  }
  manager.start();

  clients[0]->set_reported_state(90.0, 10.0, 10);  // busy
  clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate (nearest)
  clients[2]->set_reported_state(40.0, 5.0, 10);   // replica candidate
  sim.run_until(10000);
  ASSERT_GE(manager.active_offload_count(), 1u);
  const graph::NodeId first_dest = manager.active_offloads()[0].destination;

  // Offloaded monitoring data flows destination-ward at kLow.
  clients[0]->publish_snapshot(telemetry::DeviceSnapshot{});

  // Kill the destination -> keepalive loss -> REP substitution.
  clients[first_dest]->set_failed(true);
  sim.run_until(30000);
  EXPECT_GE(manager.keepalive_failures(), 1u);

  // Load drops far below Cmax -> Release.
  clients[0]->set_reported_state(30.0, 10.0, 0);
  sim.run_until(45000);
  EXPECT_GE(manager.releases(), 1u);

  // The run must actually have exercised the whole §III-B vocabulary —
  // otherwise the audit above proved nothing about the missing kinds.
  for (const char* kind :
       {"offload_capable", "ack", "stat", "offload_request", "offload_ack",
        "agent_transfer", "telemetry_data", "keepalive", "rep", "release"})
    EXPECT_TRUE(transport.kinds_seen().contains(kind))
        << "flow never sent a " << kind << " message";
}

}  // namespace
}  // namespace dust::core
