#include "telemetry/tsdb.hpp"

#include <gtest/gtest.h>

namespace dust::telemetry {
namespace {

MetricDescriptor gauge(const std::string& name) {
  return MetricDescriptor{name, "%", MetricKind::kGauge};
}

TEST(TimeSeries, AppendAndQueryRange) {
  TimeSeries series(gauge("cpu"));
  for (int i = 0; i < 10; ++i)
    series.append({100LL * i, static_cast<double>(i)});
  const auto samples = series.query(250, 650);
  ASSERT_EQ(samples.size(), 4u);  // t=300..600
  EXPECT_EQ(samples.front().timestamp_ms, 300);
  EXPECT_EQ(samples.back().timestamp_ms, 600);
}

TEST(TimeSeries, QueryBoundariesInclusive) {
  TimeSeries series(gauge("m"));
  series.append({100, 1.0});
  series.append({200, 2.0});
  EXPECT_EQ(series.query(100, 200).size(), 2u);
  EXPECT_EQ(series.query(101, 199).size(), 0u);
}

TEST(TimeSeries, QuerySpansSealedBlocks) {
  TimeSeries series(gauge("m"), /*samples_per_block=*/4);
  for (int i = 0; i < 10; ++i) series.append({10LL * i, double(i)});
  const auto all = series.query(0, 1000);
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(all[i].value, i);
}

TEST(TimeSeries, OutOfOrderRejected) {
  TimeSeries series(gauge("m"));
  series.append({100, 1.0});
  EXPECT_THROW(series.append({50, 2.0}), std::invalid_argument);
}

TEST(TimeSeries, LastSample) {
  TimeSeries series(gauge("m"));
  EXPECT_FALSE(series.last().has_value());
  series.append({5, 1.5});
  ASSERT_TRUE(series.last().has_value());
  EXPECT_DOUBLE_EQ(series.last()->value, 1.5);
}

TEST(TimeSeries, Aggregations) {
  TimeSeries series(gauge("m"));
  for (int i = 1; i <= 5; ++i) series.append({1000LL * i, double(i)});
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kMean), 3.0);
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kMin), 1.0);
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kMax), 5.0);
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kSum), 15.0);
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kLast), 5.0);
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kCount), 5.0);
  // Rate: (5-1)/(5000ms-1000ms) = 1 per second.
  EXPECT_DOUBLE_EQ(*series.aggregate(0, 10000, Aggregation::kRate), 1.0);
}

TEST(TimeSeries, AggregateEmptyRangeIsNullopt) {
  TimeSeries series(gauge("m"));
  series.append({1000, 1.0});
  EXPECT_FALSE(series.aggregate(2000, 3000, Aggregation::kMean).has_value());
}

TEST(TimeSeries, RateNeedsTwoSamples) {
  TimeSeries series(gauge("m"));
  series.append({1000, 1.0});
  EXPECT_FALSE(series.aggregate(0, 2000, Aggregation::kRate).has_value());
}

TEST(TimeSeries, RetentionDropsOldSealedBlocks) {
  TimeSeries series(gauge("m"), 4);
  for (int i = 0; i < 12; ++i) series.append({100LL * i, double(i)});
  // Blocks: [0..300], [400..700], [800..1100(active)].
  const std::size_t dropped = series.drop_before(400);
  EXPECT_EQ(dropped, 4u);
  EXPECT_EQ(series.sample_count(), 8u);
  EXPECT_TRUE(series.query(0, 300).empty());
  EXPECT_EQ(series.query(400, 2000).size(), 8u);
}

TEST(TimeSeries, RetentionKeepsActiveBlock) {
  TimeSeries series(gauge("m"), 100);
  for (int i = 0; i < 5; ++i) series.append({10LL * i, double(i)});
  EXPECT_EQ(series.drop_before(1000), 0u);  // all in active block
  EXPECT_EQ(series.sample_count(), 5u);
}

TEST(TimeSeries, CompressedBytesGrow) {
  TimeSeries series(gauge("m"));
  const std::size_t empty = series.compressed_bytes();
  for (int i = 0; i < 100; ++i) series.append({1000LL * i, double(i % 7)});
  EXPECT_GT(series.compressed_bytes(), empty);
}

TEST(TimeSeries, ZeroBlockSizeRejected) {
  EXPECT_THROW(TimeSeries(gauge("m"), 0), std::invalid_argument);
}

TEST(Tsdb, RegisterIsIdempotent) {
  Tsdb db;
  const MetricId a = db.register_metric(gauge("cpu"));
  const MetricId b = db.register_metric(gauge("cpu"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.metric_count(), 1u);
}

TEST(Tsdb, FindByName) {
  Tsdb db;
  const MetricId id = db.register_metric(gauge("mem"));
  EXPECT_EQ(db.find("mem"), id);
  EXPECT_FALSE(db.find("nope").has_value());
}

TEST(Tsdb, AppendAndQueryThroughDb) {
  Tsdb db;
  const MetricId id = db.register_metric(gauge("cpu"));
  db.append(id, {100, 55.5});
  db.append(id, {200, 66.6});
  EXPECT_EQ(db.query(id, 0, 1000).size(), 2u);
  EXPECT_DOUBLE_EQ(*db.aggregate(id, 0, 1000, Aggregation::kMax), 66.6);
}

TEST(Tsdb, UnknownMetricThrows) {
  Tsdb db;
  EXPECT_THROW(db.append(7, {0, 1.0}), std::out_of_range);
  EXPECT_THROW(db.query(7, 0, 1), std::out_of_range);
}

TEST(Tsdb, StorageBytesSumsSeries) {
  Tsdb db;
  const MetricId a = db.register_metric(gauge("a"));
  const MetricId b = db.register_metric(gauge("b"));
  for (int i = 0; i < 50; ++i) {
    db.append(a, {100LL * i, double(i)});
    db.append(b, {100LL * i, double(-i)});
  }
  EXPECT_GE(db.storage_bytes(),
            db.series(a).compressed_bytes() + db.series(b).compressed_bytes());
}

TEST(Tsdb, DropBeforeAcrossSeries) {
  Tsdb db;
  const MetricId a = db.register_metric(gauge("a"));
  TimeSeries& sa = db.series(a);
  (void)sa;
  for (int i = 0; i < 20; ++i) db.append(a, {100LL * i, double(i)});
  // Force sealing by registering with small blocks isn't exposed via Tsdb;
  // retention with default block size keeps the active block: 0 dropped.
  EXPECT_EQ(db.drop_before(500), 0u);
}

TEST(TimeSeriesRollup, WindowedMeans) {
  TimeSeries series(gauge("m"));
  // Two samples in each 1000 ms window.
  for (int i = 0; i < 8; ++i)
    series.append({500LL * i, static_cast<double>(i)});
  const auto rolled = series.rollup(0, 10000, 1000, Aggregation::kMean);
  ASSERT_EQ(rolled.size(), 4u);
  EXPECT_EQ(rolled[0].timestamp_ms, 0);
  EXPECT_DOUBLE_EQ(rolled[0].value, 0.5);  // samples 0, 1
  EXPECT_EQ(rolled[1].timestamp_ms, 1000);
  EXPECT_DOUBLE_EQ(rolled[1].value, 2.5);  // samples 2, 3
  EXPECT_DOUBLE_EQ(rolled[3].value, 6.5);
}

TEST(TimeSeriesRollup, EmptyWindowsOmitted) {
  TimeSeries series(gauge("m"));
  series.append({0, 1.0});
  series.append({5000, 2.0});
  const auto rolled = series.rollup(0, 10000, 1000, Aggregation::kMax);
  ASSERT_EQ(rolled.size(), 2u);
  EXPECT_EQ(rolled[0].timestamp_ms, 0);
  EXPECT_EQ(rolled[1].timestamp_ms, 5000);
}

TEST(TimeSeriesRollup, MaxAndCountOperators) {
  TimeSeries series(gauge("m"));
  for (int i = 0; i < 10; ++i) series.append({100LL * i, double(i % 3)});
  const auto maxes = series.rollup(0, 1000, 500, Aggregation::kMax);
  ASSERT_EQ(maxes.size(), 2u);
  EXPECT_DOUBLE_EQ(maxes[0].value, 2.0);
  const auto counts = series.rollup(0, 1000, 500, Aggregation::kCount);
  EXPECT_DOUBLE_EQ(counts[0].value, 5.0);
}

TEST(TimeSeriesRollup, WindowAlignedToRangeStart) {
  TimeSeries series(gauge("m"));
  series.append({1700, 7.0});
  const auto rolled = series.rollup(1000, 3000, 1000, Aggregation::kLast);
  ASSERT_EQ(rolled.size(), 1u);
  EXPECT_EQ(rolled[0].timestamp_ms, 1000);  // window [1000, 2000)
}

TEST(TimeSeriesRollup, InvalidWindowThrows) {
  TimeSeries series(gauge("m"));
  EXPECT_THROW(series.rollup(0, 100, 0, Aggregation::kMean),
               std::invalid_argument);
}

}  // namespace
}  // namespace dust::telemetry
