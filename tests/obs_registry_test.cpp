#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/log_metrics.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace dust::obs {
namespace {

struct RegistryTest : ::testing::Test {
  MetricRegistry registry;
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(true); }
};

TEST_F(RegistryTest, CounterIncrements) {
  Counter& c = registry.counter("test_counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(RegistryTest, GaugeSetAndAdd) {
  Gauge& g = registry.gauge("test_gauge");
  g.set(10.0);
  g.add(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST_F(RegistryTest, RegistrationIsIdempotent) {
  Counter& a = registry.counter("same_name");
  Counter& b = registry.counter("same_name");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("same_hist");
  Histogram& h2 = registry.histogram("same_hist");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST_F(RegistryTest, HistogramTracksCountSumMinMax) {
  Histogram& h = registry.histogram("h");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(7.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 10.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  EXPECT_NEAR(snap.mean(), 10.0 / 3.0, 1e-12);
}

TEST_F(RegistryTest, QuantilesAreWithinBucketResolution) {
  Histogram& h = registry.histogram("latency");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  // Power-of-two buckets: a quantile estimate can be off by up to the bucket
  // width, i.e. a factor of two, but never outside [min, max].
  const double p50 = snap.quantile(0.5);
  const double p99 = snap.quantile(0.99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p99);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
}

TEST_F(RegistryTest, HistogramHandlesNonPositiveValues) {
  Histogram& h = registry.histogram("weird");
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(std::nan(""));
  EXPECT_EQ(h.snapshot().count, 3u);  // bucketed into the underflow bucket
}

TEST_F(RegistryTest, DisabledUpdatesAreNoOps) {
  Counter& c = registry.counter("gated");
  Histogram& h = registry.histogram("gated_h");
  set_enabled(false);
  c.inc(100);
  h.observe(3.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Counter& c = registry.counter("r");
  c.inc(5);
  registry.histogram("rh").observe(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed — cached handles stay valid
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
  EXPECT_EQ(&registry.counter("r"), &c);
}

TEST_F(RegistryTest, SnapshotSortedAndQueryable) {
  registry.counter("zeta").inc(1);
  registry.counter("alpha").inc(2);
  registry.gauge("mid").set(3.0);
  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_NE(snap.find_counter("zeta"), nullptr);
  EXPECT_EQ(snap.find_counter("zeta")->value, 1u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
  ASSERT_NE(snap.find_gauge("mid"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find_gauge("mid")->value, 3.0);
}

// Satellite: concurrent updates from ThreadPool workers must not lose counts.
TEST_F(RegistryTest, ConcurrentUpdatesFromThreadPool) {
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncsPerTask = 1000;
  Counter& c = registry.counter("concurrent_counter");
  Histogram& h = registry.histogram("concurrent_hist");
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kIncsPerTask; ++i) {
      c.inc();
      h.observe(static_cast<double>(task + 1));
    }
    // Registration from workers must also be safe.
    registry.counter("from_worker_" + std::to_string(task % 4)).inc();
  });
  EXPECT_EQ(c.value(), kTasks * kIncsPerTask);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kTasks * kIncsPerTask);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kTasks));
  std::uint64_t worker_total = 0;
  for (std::size_t w = 0; w < 4; ++w)
    worker_total += registry.counter("from_worker_" + std::to_string(w)).value();
  EXPECT_EQ(worker_total, kTasks);
}

TEST_F(RegistryTest, ScopedTimerObservesWallTime) {
  Histogram& h = registry.histogram("timed");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_GE(h.snapshot().min, 0.0);
}

TEST_F(RegistryTest, SpanRecordsWallAndVirtualTime) {
  std::int64_t fake_now = 100;
  {
    Span span(registry, "cycle", [&fake_now] { return fake_now; });
    fake_now = 140;
  }
  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "cycle");
  EXPECT_EQ(snap.spans[0].sim_start_ms, 100);
  EXPECT_EQ(snap.spans[0].sim_duration_ms, 40);
  ASSERT_NE(snap.find_histogram("cycle_sim_ms"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find_histogram("cycle_sim_ms")->max, 40.0);
  ASSERT_NE(snap.find_histogram("cycle_wall_ms"), nullptr);
}

TEST_F(RegistryTest, SpanWithoutClockSkipsSimTime) {
  { Span span(registry, "wall_only"); }
  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].sim_start_ms, -1);
  EXPECT_EQ(snap.find_histogram("wall_only_sim_ms"), nullptr);
}

TEST_F(RegistryTest, DisabledSpanRecordsNothing) {
  set_enabled(false);
  { Span span(registry, "ghost"); }
  set_enabled(true);
  EXPECT_TRUE(registry.snapshot().spans.empty());
}

TEST_F(RegistryTest, SpanRingKeepsMostRecent) {
  for (std::size_t i = 0; i < MetricRegistry::kMaxSpans + 10; ++i)
    registry.record_span(SpanRecord{"s" + std::to_string(i), 0.0, -1, -1});
  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.spans.size(), MetricRegistry::kMaxSpans);
  EXPECT_EQ(snap.spans.front().name, "s10");  // oldest surviving
  EXPECT_EQ(snap.spans.back().name,
            "s" + std::to_string(MetricRegistry::kMaxSpans + 9));
}

// Satellite: LOG_AT call counts per level become counters via the observer.
TEST_F(RegistryTest, LogMetricsCountEmittedLines) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kWarn);
  attach_log_metrics(registry);
  DUST_LOG_WARN << "observable warning";
  DUST_LOG_ERROR << "observable error";
  DUST_LOG_DEBUG << "below threshold, not emitted";
  detach_log_metrics();
  util::set_log_level(saved);
  EXPECT_EQ(registry.counter("dust_util_log_warn_total").value(), 1u);
  EXPECT_EQ(registry.counter("dust_util_log_error_total").value(), 1u);
  EXPECT_EQ(registry.counter("dust_util_log_debug_total").value(), 0u);
  // Detached: further lines are not counted.
  DUST_LOG_ERROR << "after detach";
  EXPECT_EQ(registry.counter("dust_util_log_error_total").value(), 1u);
}

TEST_F(RegistryTest, PrometheusExportFormat) {
  registry.counter("dust_x_total").inc(3);
  registry.histogram("dust_y_ms").observe(1.5);
  std::ostringstream os;
  write_prometheus(registry.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE dust_x_total counter"), std::string::npos);
  EXPECT_NE(text.find("dust_x_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_y_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("dust_y_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dust_y_ms_count 1"), std::string::npos);
}

TEST_F(RegistryTest, JsonlExportContainsMetrics) {
  registry.counter("jc").inc(7);
  registry.histogram("jh").observe(2.0);
  std::ostringstream os;
  write_jsonl(registry.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"name\":\"jc\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":7"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"jh\""), std::string::npos);
}

TEST_F(RegistryTest, TableExportListsEveryMetric) {
  registry.counter("tc").inc(1);
  registry.histogram("th").observe(4.0);
  std::ostringstream os;
  to_table(registry.snapshot()).print(os);
  const std::string rendered = os.str();
  EXPECT_NE(rendered.find("tc"), std::string::npos);
  EXPECT_NE(rendered.find("th"), std::string::npos);
}

TEST_F(RegistryTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

TEST_F(RegistryTest, PoolMetricsBridgeCountsChunkRegions) {
  attach_pool_metrics(registry);
  const std::uint64_t tasks_before =
      registry.counter("dust_pool_tasks_total").value();
  util::ThreadPool pool(2);
  pool.parallel_for_chunks(32, 4, 0, [](std::size_t, std::size_t) {});
  detach_pool_metrics();
  EXPECT_EQ(registry.counter("dust_pool_tasks_total").value() - tasks_before,
            8u);  // 32 indices / 4-wide chunks
  // Steals are scheduling-dependent; the bridge must mirror the pool's own
  // cumulative tally for this fresh pool.
  EXPECT_EQ(registry.counter("dust_pool_steal_total").value(),
            pool.chunk_steals());

  // Detached: further regions no longer reach the registry.
  const std::uint64_t after = registry.counter("dust_pool_tasks_total").value();
  pool.parallel_for_chunks(8, 4, 0, [](std::size_t, std::size_t) {});
  EXPECT_EQ(registry.counter("dust_pool_tasks_total").value(), after);
}

}  // namespace
}  // namespace dust::obs
