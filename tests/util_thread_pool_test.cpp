#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dust::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForAccumulates) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&sum](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("bad");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForContinuesAfterException) {
  // All items complete even when one throws (futures are all awaited).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  try {
    pool.parallel_for(20, [&hits](std::size_t i) {
      ++hits[i];
      if (i == 0) throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([i] { return i * 2; }));
  for (int i = 0; i < 500; ++i) EXPECT_EQ(futures[i].get(), i * 2);
}

TEST(ThreadPool, ParallelForChunksCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(103);  // deliberately not chunk-aligned
  pool.parallel_for_chunks(103, 8, 0, [&hits](std::size_t begin,
                                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForChunksSingleWorkerIsAscendingSerial) {
  // max_workers == 1 must degrade to the serial loop: inline on the calling
  // thread, chunks in ascending order (the determinism baseline the parallel
  // row fill is compared against).
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for_chunks(40, 16, 1, [&order](std::size_t begin,
                                               std::size_t end) {
    order.push_back(begin);
    order.push_back(end);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 16, 16, 32, 32, 40}));
}

TEST(ThreadPool, ParallelForChunksCountsChunksAndReportsToObserver) {
  ThreadPool pool(2);
  const std::uint64_t tasks_before = pool.chunk_tasks();
  std::uint64_t observed_chunks = 0;
  std::uint64_t observed_steals = 0;
  set_pool_observer([&](std::uint64_t chunks, std::uint64_t steals) {
    observed_chunks += chunks;
    observed_steals += steals;
  });
  pool.parallel_for_chunks(64, 8, 0, [](std::size_t, std::size_t) {});
  set_pool_observer(nullptr);
  EXPECT_EQ(pool.chunk_tasks() - tasks_before, 8u);
  EXPECT_EQ(observed_chunks, 8u);
  // Steals depend on scheduling; the observer just mirrors the pool counter.
  EXPECT_EQ(observed_steals, pool.chunk_steals());
}

TEST(ThreadPool, ParallelForChunksRethrowsChunkException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(
                   32, 4, 0,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 12) throw std::runtime_error("chunk");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dust::util
