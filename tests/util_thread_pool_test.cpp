#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dust::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForAccumulates) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&sum](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("bad");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForContinuesAfterException) {
  // All items complete even when one throws (futures are all awaited).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  try {
    pool.parallel_for(20, [&hits](std::size_t i) {
      ++hits[i];
      if (i == 0) throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([i] { return i * 2; }));
  for (int i = 0; i < 500; ++i) EXPECT_EQ(futures[i].get(), i * 2);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dust::util
