#include "core/multi_resource.hpp"

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

// Star: hub 0 busy, leaves 1 and 2 candidates.
Nmdb star() {
  net::NetworkState state(graph::make_star(2));
  state.set_node_utilization(0, 90.0);  // Cs = 10
  state.set_node_utilization(1, 40.0);  // CdCpu = 20
  state.set_node_utilization(2, 40.0);  // CdCpu = 20
  state.set_monitoring_data_mb(0, 10.0);
  return Nmdb(std::move(state), Thresholds{});
}

TEST(MultiResource, BuilderValidatesSizes) {
  Nmdb nmdb = star();
  std::vector<double> mem(nmdb.node_count(), 50.0);
  std::vector<double> wrong(2, 1.0);
  EXPECT_THROW(
      build_multi_resource_problem(nmdb, wrong, mem, MultiResourceOptions{}),
      std::invalid_argument);
  std::vector<double> negative_ratio(nmdb.node_count(), -1.0);
  EXPECT_THROW(build_multi_resource_problem(nmdb, mem, negative_ratio,
                                            MultiResourceOptions{}),
               std::invalid_argument);
}

TEST(MultiResource, SlackMemoryReducesToSingleResource) {
  Nmdb nmdb = star();
  std::vector<double> mem_util(nmdb.node_count(), 0.0);   // tons of memory
  std::vector<double> ratio(nmdb.node_count(), 0.1);
  const MultiResourceProblem problem = build_multi_resource_problem(
      nmdb, mem_util, ratio, MultiResourceOptions{});
  const MultiResourceResult multi = solve_multi_resource(problem);
  const PlacementResult single = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(multi.optimal());
  ASSERT_TRUE(single.optimal());
  EXPECT_NEAR(multi.objective, single.objective,
              1e-6 * (1.0 + single.objective));
  EXPECT_LT(multi_resource_violation(problem, multi), 1e-6);
}

TEST(MultiResource, MemoryConstraintForcesSplit) {
  // CPU-wise leaf 1 could take all 10, but its memory allows only 5 units
  // (CdMem = 10, ratio = 2). The optimum must route the rest to leaf 2 even
  // though leaf 2's link is slower.
  Nmdb nmdb = star();
  nmdb.network().set_link(0, net::LinkState{1000.0, 1.0});  // hub-leaf1 fast
  nmdb.network().set_link(1, net::LinkState{1000.0, 0.5});  // hub-leaf2 slow
  std::vector<double> mem_util(nmdb.node_count(), 0.0);
  mem_util[1] = 70.0;  // leaf1 memory: CdMem = 80 - 70 = 10
  std::vector<double> ratio(nmdb.node_count(), 2.0);
  const MultiResourceProblem problem = build_multi_resource_problem(
      nmdb, mem_util, ratio, MultiResourceOptions{});
  const MultiResourceResult r = solve_multi_resource(problem);
  ASSERT_TRUE(r.optimal());
  double to_leaf1 = 0, to_leaf2 = 0;
  for (const Assignment& a : r.assignments)
    (a.to == 1 ? to_leaf1 : to_leaf2) += a.amount;
  EXPECT_NEAR(to_leaf1, 5.0, 1e-6);
  EXPECT_NEAR(to_leaf2, 5.0, 1e-6);
  EXPECT_LT(multi_resource_violation(problem, r), 1e-6);
}

TEST(MultiResource, InfeasibleWhenMemoryTooTight) {
  Nmdb nmdb = star();
  std::vector<double> mem_util(nmdb.node_count(), 79.5);  // CdMem = 0.5 each
  std::vector<double> ratio(nmdb.node_count(), 2.0);      // 10 CPU needs 20 mem
  const MultiResourceProblem problem = build_multi_resource_problem(
      nmdb, mem_util, ratio, MultiResourceOptions{});
  EXPECT_EQ(solve_multi_resource(problem).status, solver::Status::kInfeasible);
}

TEST(MultiResource, NoBusyNodesTrivial) {
  net::NetworkState state(graph::make_star(2));
  for (graph::NodeId v = 0; v < 3; ++v) state.set_node_utilization(v, 50.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  std::vector<double> mem(nmdb.node_count(), 50.0);
  std::vector<double> ratio(nmdb.node_count(), 1.0);
  const MultiResourceProblem problem =
      build_multi_resource_problem(nmdb, mem, ratio, MultiResourceOptions{});
  const MultiResourceResult r = solve_multi_resource(problem);
  EXPECT_TRUE(r.optimal());
  EXPECT_TRUE(r.assignments.empty());
}

class MultiResourceSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: multi-resource optimum >= single-resource optimum (extra
// constraints can only hurt), and results are feasible in both dimensions.
TEST_P(MultiResourceSweep, TighterThanSingleResource) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  std::vector<double> mem_util(nmdb.node_count());
  std::vector<double> ratio(nmdb.node_count());
  for (graph::NodeId v = 0; v < nmdb.node_count(); ++v) {
    mem_util[v] = rng.uniform(20.0, 60.0);
    ratio[v] = rng.uniform(0.2, 1.5);
  }
  MultiResourceOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const MultiResourceProblem problem =
      build_multi_resource_problem(nmdb, mem_util, ratio, options);
  const MultiResourceResult multi = solve_multi_resource(problem);
  OptimizerOptions single_options;
  single_options.placement = options.placement;
  const PlacementResult single =
      OptimizationEngine(single_options).run(nmdb);
  if (!multi.optimal()) {
    // Memory made it infeasible; nothing more to check.
    return;
  }
  EXPECT_LT(multi_resource_violation(problem, multi), 1e-6);
  if (single.optimal()) {
    EXPECT_GE(multi.objective, single.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiResourceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace dust::core
