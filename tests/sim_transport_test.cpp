#include "sim/transport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dust::sim {
namespace {

struct Fixture : ::testing::Test {
  Simulator sim;
  Transport transport{sim, util::Rng(1)};
  std::vector<Envelope> received;

  void listen(const std::string& name) {
    transport.register_endpoint(
        name, [this](const Envelope& e) { received.push_back(e); });
  }
};

TEST_F(Fixture, DeliversAfterLatency) {
  listen("b");
  transport.set_default_latency_ms(25);
  transport.send("a", "b", std::string("hello"));
  sim.run_until(24);
  EXPECT_TRUE(received.empty());
  sim.run_until(25);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, "a");
  EXPECT_EQ(std::any_cast<std::string>(received[0].payload), "hello");
}

TEST_F(Fixture, UnknownEndpointCountsDropped) {
  transport.send("a", "ghost", 1);
  sim.run();
  EXPECT_EQ(transport.dropped(), 1u);
  EXPECT_EQ(transport.delivered(), 0u);
}

TEST_F(Fixture, UnregisterWhileInFlightDrops) {
  listen("b");
  transport.send("a", "b", 1);
  transport.unregister_endpoint("b");
  sim.run();
  EXPECT_EQ(transport.delivered(), 0u);
  EXPECT_EQ(transport.dropped(), 1u);
}

TEST_F(Fixture, FullLossDropsEverything) {
  listen("b");
  transport.set_loss_probability(1.0);
  for (int i = 0; i < 10; ++i) transport.send("a", "b", i);
  sim.run();
  EXPECT_EQ(transport.dropped(), 10u);
  EXPECT_TRUE(received.empty());
}

TEST_F(Fixture, PartialLossApproximatesRate) {
  listen("b");
  transport.set_loss_probability(0.3);
  for (int i = 0; i < 2000; ++i) transport.send("a", "b", i);
  sim.run();
  EXPECT_NEAR(static_cast<double>(transport.dropped()) / 2000.0, 0.3, 0.05);
}

TEST_F(Fixture, LossProbabilityValidated) {
  EXPECT_THROW(transport.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(transport.set_loss_probability(1.1), std::invalid_argument);
}

TEST_F(Fixture, PartitionBlocksDestination) {
  listen("b");
  listen("c");
  transport.set_partitioned("b", true);
  transport.send("a", "b", 1);
  transport.send("a", "c", 2);
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].to, "c");
  transport.set_partitioned("b", false);
  transport.send("a", "b", 3);
  sim.run();
  EXPECT_EQ(received.size(), 2u);
}

TEST_F(Fixture, CongestionDropsOnlyLowPriority) {
  listen("b");
  transport.set_congested(true);
  transport.send("a", "b", 1, Priority::kLow);
  transport.send("a", "b", 2, Priority::kNormal);
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::any_cast<int>(received[0].payload), 2);
  transport.set_congested(false);
  transport.send("a", "b", 3, Priority::kLow);
  sim.run();
  EXPECT_EQ(received.size(), 2u);
}

TEST_F(Fixture, LossAndPriorityInteract) {
  // Under congestion with lossy links, kLow traffic is shed entirely while
  // kNormal only pays the link loss rate — QoS shedding and stochastic loss
  // are independent drop causes.
  listen("b");
  transport.set_congested(true);
  transport.set_loss_probability(0.2);
  constexpr int kPerClass = 1000;
  for (int i = 0; i < kPerClass; ++i) {
    transport.send("a", "b", i, Priority::kLow);
    transport.send("a", "b", i, Priority::kNormal);
  }
  sim.run();
  std::size_t low_received = 0;
  for (const Envelope& e : received)
    if (e.priority == Priority::kLow) ++low_received;
  EXPECT_EQ(low_received, 0u);  // congestion sheds every kLow message
  const double normal_rate =
      static_cast<double>(received.size()) / kPerClass;
  EXPECT_NEAR(normal_rate, 0.8, 0.05);  // kNormal survives minus link loss
  EXPECT_EQ(transport.dropped() + received.size(),
            static_cast<std::size_t>(2 * kPerClass));
}

TEST_F(Fixture, CountersConsistent) {
  listen("b");
  transport.send("a", "b", 1);
  transport.send("a", "ghost", 2);
  sim.run();
  EXPECT_EQ(transport.sent(), 2u);
  EXPECT_EQ(transport.delivered() + transport.dropped(), 2u);
}

TEST_F(Fixture, NullHandlerRejected) {
  EXPECT_THROW(transport.register_endpoint("x", nullptr),
               std::invalid_argument);
}

TEST_F(Fixture, HasEndpoint) {
  EXPECT_FALSE(transport.has_endpoint("b"));
  listen("b");
  EXPECT_TRUE(transport.has_endpoint("b"));
}

TEST_F(Fixture, MessagesPreserveFifoPerLatencyClass) {
  listen("b");
  for (int i = 0; i < 5; ++i) transport.send("a", "b", i);
  sim.run();
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(std::any_cast<int>(received[i].payload), i);
}

}  // namespace
}  // namespace dust::sim
