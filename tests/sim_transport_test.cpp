#include "sim/transport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dust::sim {
namespace {

struct Fixture : ::testing::Test {
  Simulator sim;
  Transport transport{sim, util::Rng(1)};
  std::vector<Envelope> received;

  void listen(const std::string& name) {
    transport.register_endpoint(
        name, [this](const Envelope& e) { received.push_back(e); });
  }
};

TEST_F(Fixture, DeliversAfterLatency) {
  listen("b");
  transport.set_default_latency_ms(25);
  transport.send("a", "b", std::string("hello"));
  sim.run_until(24);
  EXPECT_TRUE(received.empty());
  sim.run_until(25);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, "a");
  EXPECT_EQ(std::any_cast<std::string>(received[0].payload), "hello");
}

TEST_F(Fixture, UnknownEndpointCountsDropped) {
  transport.send("a", "ghost", 1);
  sim.run();
  EXPECT_EQ(transport.dropped(), 1u);
  EXPECT_EQ(transport.delivered(), 0u);
}

TEST_F(Fixture, UnregisterWhileInFlightDrops) {
  listen("b");
  transport.send("a", "b", 1);
  transport.unregister_endpoint("b");
  sim.run();
  EXPECT_EQ(transport.delivered(), 0u);
  EXPECT_EQ(transport.dropped(), 1u);
}

TEST_F(Fixture, FullLossDropsEverything) {
  listen("b");
  transport.set_loss_probability(1.0);
  for (int i = 0; i < 10; ++i) transport.send("a", "b", i);
  sim.run();
  EXPECT_EQ(transport.dropped(), 10u);
  EXPECT_TRUE(received.empty());
}

TEST_F(Fixture, PartialLossApproximatesRate) {
  listen("b");
  transport.set_loss_probability(0.3);
  for (int i = 0; i < 2000; ++i) transport.send("a", "b", i);
  sim.run();
  EXPECT_NEAR(static_cast<double>(transport.dropped()) / 2000.0, 0.3, 0.05);
}

TEST_F(Fixture, LossProbabilityValidated) {
  EXPECT_THROW(transport.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(transport.set_loss_probability(1.1), std::invalid_argument);
}

TEST_F(Fixture, PartitionBlocksDestination) {
  listen("b");
  listen("c");
  transport.set_partitioned("b", true);
  transport.send("a", "b", 1);
  transport.send("a", "c", 2);
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].to, "c");
  transport.set_partitioned("b", false);
  transport.send("a", "b", 3);
  sim.run();
  EXPECT_EQ(received.size(), 2u);
}

TEST_F(Fixture, CongestionDropsOnlyLowPriority) {
  listen("b");
  transport.set_congested(true);
  transport.send("a", "b", 1, Priority::kLow);
  transport.send("a", "b", 2, Priority::kNormal);
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::any_cast<int>(received[0].payload), 2);
  transport.set_congested(false);
  transport.send("a", "b", 3, Priority::kLow);
  sim.run();
  EXPECT_EQ(received.size(), 2u);
}

TEST_F(Fixture, LossAndPriorityInteract) {
  // Under congestion with lossy links, kLow traffic is shed entirely while
  // kNormal only pays the link loss rate — QoS shedding and stochastic loss
  // are independent drop causes.
  listen("b");
  transport.set_congested(true);
  transport.set_loss_probability(0.2);
  constexpr int kPerClass = 1000;
  for (int i = 0; i < kPerClass; ++i) {
    transport.send("a", "b", i, Priority::kLow);
    transport.send("a", "b", i, Priority::kNormal);
  }
  sim.run();
  std::size_t low_received = 0;
  for (const Envelope& e : received)
    if (e.priority == Priority::kLow) ++low_received;
  EXPECT_EQ(low_received, 0u);  // congestion sheds every kLow message
  const double normal_rate =
      static_cast<double>(received.size()) / kPerClass;
  EXPECT_NEAR(normal_rate, 0.8, 0.05);  // kNormal survives minus link loss
  EXPECT_EQ(transport.dropped() + received.size(),
            static_cast<std::size_t>(2 * kPerClass));
}

TEST_F(Fixture, CountersConsistent) {
  listen("b");
  transport.send("a", "b", 1);
  transport.send("a", "ghost", 2);
  sim.run();
  EXPECT_EQ(transport.sent(), 2u);
  EXPECT_EQ(transport.delivered() + transport.dropped(), 2u);
}

TEST_F(Fixture, NullHandlerRejected) {
  EXPECT_THROW(transport.register_endpoint("x", nullptr),
               std::invalid_argument);
}

TEST_F(Fixture, HasEndpoint) {
  EXPECT_FALSE(transport.has_endpoint("b"));
  listen("b");
  EXPECT_TRUE(transport.has_endpoint("b"));
}

TEST_F(Fixture, MessagesPreserveFifoPerLatencyClass) {
  listen("b");
  for (int i = 0; i < 5; ++i) transport.send("a", "b", i);
  sim.run();
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(std::any_cast<int>(received[i].payload), i);
}

// Drop precedence is loss → partition → congestion: the loss draw is taken
// on *every* send, even ones a partition or congestion will discard anyway,
// so the RNG stream consumed by a run depends only on the message sequence.
// These tests pin that property — it is what makes dust::check fault
// schedules replay bit-identically under a fixed seed.
namespace {
std::vector<int> kept_deliveries(
    const std::function<void(Transport&, int)>& before_send) {
  Simulator sim;
  Transport transport{sim, util::Rng(42)};
  std::vector<int> delivered;
  transport.register_endpoint("keep", [&](const Envelope& e) {
    delivered.push_back(std::any_cast<int>(e.payload));
  });
  transport.register_endpoint("telemetry", [](const Envelope&) {});
  transport.set_loss_probability(0.4);
  for (int i = 0; i < 200; ++i) {
    before_send(transport, i);
    transport.send("a", "telemetry", i, Priority::kLow);
    transport.send("a", "keep", i, Priority::kNormal);
  }
  sim.run();
  return delivered;
}
}  // namespace

TEST(TransportPrecedence, CongestionTogglesNeverShiftLossDraws) {
  const std::vector<int> baseline =
      kept_deliveries([](Transport&, int) {});
  // Mid-run congestion sheds the interleaved kLow traffic; the kNormal
  // survivor set must be bit-identical because every kLow send still
  // consumed its loss draw before the congestion check.
  const std::vector<int> congested =
      kept_deliveries([](Transport& t, int i) {
        t.set_congested(i >= 50 && i < 150);
      });
  EXPECT_EQ(congested, baseline);
}

TEST(TransportPrecedence, PartitionTogglesNeverShiftLossDraws) {
  const std::vector<int> baseline =
      kept_deliveries([](Transport&, int) {});
  const std::vector<int> partitioned =
      kept_deliveries([](Transport& t, int i) {
        if (i == 50) t.set_partitioned("telemetry", true);
        if (i == 150) t.set_partitioned("telemetry", false);
      });
  EXPECT_EQ(partitioned, baseline);
}

TEST(TransportPrecedence, LossOutranksPartitionAndCongestionInAccounting) {
  // With loss = 1 everything is a loss-drop; healing the partition and
  // clearing congestion afterwards must not resurrect anything.
  Simulator sim;
  Transport transport{sim, util::Rng(7)};
  std::size_t received = 0;
  transport.register_endpoint("b",
                              [&](const Envelope&) { ++received; });
  transport.set_loss_probability(1.0);
  transport.set_partitioned("b", true);
  transport.set_congested(true);
  for (int i = 0; i < 20; ++i) transport.send("a", "b", i, Priority::kLow);
  transport.set_loss_probability(0.0);
  transport.set_partitioned("b", false);
  transport.set_congested(false);
  transport.send("a", "b", 99, Priority::kLow);
  sim.run();
  EXPECT_EQ(transport.dropped(), 20u);
  EXPECT_EQ(received, 1u);
}

TEST(TransportFaultScript, AppliesEventsAtScheduledTimes) {
  Simulator sim;
  Transport transport{sim, util::Rng(5)};
  std::vector<int> delivered;
  transport.register_endpoint("b", [&](const Envelope& e) {
    delivered.push_back(std::any_cast<int>(e.payload));
  });

  using Kind = FaultEvent::Kind;
  schedule_fault_script(sim, transport,
                        {{1000, Kind::kLossProbability, 1.0, ""},
                         {2000, Kind::kLossProbability, 0.0, ""},
                         {3000, Kind::kPartition, 0.0, "b"},
                         {4000, Kind::kHeal, 0.0, "b"},
                         {5000, Kind::kCongestionOn, 0.0, ""},
                         {6000, Kind::kCongestionOff, 0.0, ""}});

  const auto probe = [&](TimeMs at, int tag, Priority priority) {
    sim.schedule_at(at, [&transport, tag, priority] {
      transport.send("a", "b", tag, priority);
    });
  };
  probe(500, 1, Priority::kNormal);   // before any fault: delivered
  probe(1500, 2, Priority::kNormal);  // full loss window: dropped
  probe(2500, 3, Priority::kNormal);  // loss healed: delivered
  probe(3500, 4, Priority::kNormal);  // partition window: dropped
  probe(4500, 5, Priority::kNormal);  // partition healed: delivered
  probe(5500, 6, Priority::kLow);     // congestion window: kLow dropped
  probe(5500, 7, Priority::kNormal);  // ...but kNormal passes (§III-C QoS)
  probe(6500, 8, Priority::kLow);     // congestion cleared: kLow delivered
  sim.run();
  EXPECT_EQ(delivered, (std::vector<int>{1, 3, 5, 7, 8}));
}

}  // namespace
}  // namespace dust::sim
