#include "net/response_time.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/rng.hpp"

namespace dust::net {
namespace {

// The paper's illustrative example (Fig. 4): a small multi-path topology with
// one busy node and candidate destinations reached over distinct routes.
NetworkState fig4_like() {
  // 0=S1 (busy), 1=S2 (candidate), 5=S6 (candidate), others relay.
  graph::Graph g(7);
  g.add_edge(0, 3);  // e1: S1-S4
  g.add_edge(3, 1);  // e2: S4-S2
  g.add_edge(3, 4);  // e3: S4-S5
  g.add_edge(4, 1);  // e4: S5-S2
  g.add_edge(1, 2);  // e5: S2-S3
  g.add_edge(2, 6);  // e6: S3-S7
  g.add_edge(3, 5);  // e7: S4-S6
  NetworkState net(std::move(g));
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e)
    net.set_link(e, LinkState{1000.0, 1.0});  // Lu = 1000 Mbps everywhere
  return net;
}

TEST(PathResponseTime, SumsPerEdge) {
  NetworkState net = fig4_like();
  graph::Path path;
  path.nodes = {0, 3, 1};
  path.edges = {0, 1};
  // 100 Mb over two 1000 Mbps links: 0.1 s + 0.1 s.
  EXPECT_NEAR(path_response_time(net, path, 100.0), 0.2, 1e-12);
}

TEST(MinResponseTimes, EnumerateFindsShortestRoute) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt;
  opt.mode = EvaluatorMode::kEnumerate;
  const auto result = min_response_times(net, 0, 100.0, opt);
  // S1 -> S2 best route is e1-e2 (2 hops): 0.2 s.
  EXPECT_NEAR(result.trmin_seconds[1], 0.2, 1e-12);
  // S1 -> S6 via e1-e7: 0.2 s.
  EXPECT_NEAR(result.trmin_seconds[5], 0.2, 1e-12);
  // Source itself is 0.
  EXPECT_DOUBLE_EQ(result.trmin_seconds[0], 0.0);
  EXPECT_GT(result.work, 0u);
}

TEST(MinResponseTimes, DpAgreesWithEnumerate) {
  NetworkState net = fig4_like();
  for (std::uint32_t hops : {1u, 2u, 3u, 0u}) {
    ResponseTimeOptions enumerate_opt{hops, EvaluatorMode::kEnumerate, 0};
    ResponseTimeOptions dp_opt{hops, EvaluatorMode::kHopBoundedDp, 0};
    const auto a = min_response_times(net, 0, 50.0, enumerate_opt);
    const auto b = min_response_times(net, 0, 50.0, dp_opt);
    for (graph::NodeId v = 0; v < net.node_count(); ++v) {
      if (a.trmin_seconds[v] == graph::kInfiniteCost)
        EXPECT_EQ(b.trmin_seconds[v], graph::kInfiniteCost);
      else
        EXPECT_NEAR(a.trmin_seconds[v], b.trmin_seconds[v], 1e-9);
    }
  }
}

// The shared-frontier sweep must produce *bit-identical* labels to the dense
// hop-bounded DP (same sums in the same order; the sparse frontier only skips
// dominated expansions), and match the enumerator wherever paths are simple.
TEST(MinResponseTimes, SharedFrontierBitIdenticalToDp) {
  NetworkState net = fig4_like();
  for (std::uint32_t hops : {1u, 2u, 3u, 0u}) {
    ResponseTimeOptions dp_opt{hops, EvaluatorMode::kHopBoundedDp, 0};
    ResponseTimeOptions sf_opt{hops, EvaluatorMode::kSharedFrontier, 0};
    for (graph::NodeId source = 0; source < net.node_count(); ++source) {
      const auto a = min_response_times(net, source, 50.0, dp_opt);
      const auto b = min_response_times(net, source, 50.0, sf_opt);
      for (graph::NodeId v = 0; v < net.node_count(); ++v)
        EXPECT_EQ(a.trmin_seconds[v], b.trmin_seconds[v])
            << "source " << source << " node " << v << " hops " << hops;
    }
  }
}

// Shared-frontier rows record the winning paths' edge support, like the
// enumerator: worsening an unused link must not change the row, worsening a
// used one must.
TEST(MinResponseTimes, SharedFrontierRecordsUsedEdges) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt{0, EvaluatorMode::kSharedFrontier, 0};
  const auto result = min_response_times(net, 0, 100.0, opt);
  ASSERT_FALSE(result.used_edges.empty());
  // e1 (S1-S4) carries every route from S1; e4 (S5-S2) is on no winning
  // route (e1-e2 dominates e1-e3-e4).
  EXPECT_TRUE(result.used_edges[0] & (std::uint64_t{1} << 0));
  EXPECT_FALSE(result.used_edges[0] & (std::uint64_t{1} << 3));
}

TEST(MinResponseTimes, HopBoundExcludesFarNodes) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt{1, EvaluatorMode::kEnumerate, 0};
  const auto result = min_response_times(net, 0, 100.0, opt);
  EXPECT_NE(result.trmin_seconds[3], graph::kInfiniteCost);  // neighbour
  EXPECT_EQ(result.trmin_seconds[1], graph::kInfiniteCost);  // 2 hops away
}

TEST(MinResponseTimes, SlowerLinkRaisesCost) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt;
  const double before = min_response_times(net, 0, 100.0, opt).trmin_seconds[1];
  net.set_link(1, LinkState{1000.0, 0.1});  // e2 now 100 Mbps
  const double after = min_response_times(net, 0, 100.0, opt).trmin_seconds[1];
  EXPECT_GT(after, before);
  // Best route becomes e1-e3-e4 (3 hops x 0.1 s).
  EXPECT_NEAR(after, 0.3, 1e-12);
}

TEST(MinResponseTimes, DataVolumeScalesLinearly) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt;
  const auto r1 = min_response_times(net, 0, 10.0, opt);
  const auto r2 = min_response_times(net, 0, 30.0, opt);
  for (graph::NodeId v = 1; v < net.node_count(); ++v)
    if (r1.trmin_seconds[v] != graph::kInfiniteCost) {
      EXPECT_NEAR(r2.trmin_seconds[v], 3.0 * r1.trmin_seconds[v], 1e-9);
    }
}

TEST(MinResponseTimes, TruncationFlagged) {
  NetworkState net = fig4_like();
  ResponseTimeOptions opt;
  opt.max_paths_per_source = 2;
  const auto result = min_response_times(net, 0, 10.0, opt);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.work, 2u);
}

class ResponseTimeRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

// Property: on random networks the two evaluators agree for every hop bound.
TEST_P(ResponseTimeRandomSweep, EvaluatorsAgree) {
  util::Rng rng(GetParam());
  NetworkState net = make_random_state(
      graph::make_random_connected(10, 8, rng), LinkProfile{}, NodeLoadProfile{},
      rng);
  for (std::uint32_t hops : {2u, 4u, 0u}) {
    ResponseTimeOptions enum_opt{hops, EvaluatorMode::kEnumerate, 0};
    ResponseTimeOptions dp_opt{hops, EvaluatorMode::kHopBoundedDp, 0};
    const auto a = min_response_times(net, 0, 42.0, enum_opt);
    const auto b = min_response_times(net, 0, 42.0, dp_opt);
    for (graph::NodeId v = 0; v < net.node_count(); ++v) {
      if (a.trmin_seconds[v] == graph::kInfiniteCost)
        EXPECT_EQ(b.trmin_seconds[v], graph::kInfiniteCost) << "node " << v;
      else
        EXPECT_NEAR(a.trmin_seconds[v], b.trmin_seconds[v], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseTimeRandomSweep,
                         ::testing::Values(3u, 14u, 159u, 2653u));

TEST(MinResponseTimes, FatTreeEnumerationWorkGrowsWithMaxHop) {
  // The paper-faithful evaluator's work is what Figs 8/10 measure: it must
  // grow (strictly, on a fat-tree) as max-hop increases.
  util::Rng rng(7);
  NetworkState net = make_random_state(graph::FatTree(4).graph(), LinkProfile{},
                                       NodeLoadProfile{}, rng);
  ResponseTimeOptions opt;
  opt.mode = EvaluatorMode::kEnumerate;
  std::size_t previous = 0;
  for (std::uint32_t hops : {2u, 4u, 6u, 8u}) {
    opt.max_hops = hops;
    const auto result = min_response_times(net, 0, 10.0, opt);
    EXPECT_GT(result.work, previous);
    previous = result.work;
  }
}

}  // namespace
}  // namespace dust::net
