// Domain partitioner properties (DESIGN.md §16): fat-tree pod-boundary
// cuts, the balanced edge-cut fallback, and the invariants every partition
// must satisfy (total coverage, ascending members, consistent cut count).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "federation/partition.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::federation {
namespace {

void expect_well_formed(const DomainPartition& p, const graph::Graph& g,
                        std::size_t shards) {
  ASSERT_EQ(p.home.size(), g.node_count());
  ASSERT_EQ(p.shard_count(), shards);
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    covered += p.members[s].size();
    EXPECT_TRUE(std::is_sorted(p.members[s].begin(), p.members[s].end()));
    for (graph::NodeId v : p.members[s]) {
      EXPECT_EQ(p.home[v], s);
      EXPECT_TRUE(p.in_domain(v, s));
    }
  }
  EXPECT_EQ(covered, g.node_count());  // every node in exactly one shard
  EXPECT_EQ(p.cut_edges, count_cut_edges(g, p.home));
}

TEST(Partition, FatTreeCutsOnPodBoundaries) {
  graph::FatTree topo(4);
  const DomainPartition p = partition_fat_tree(topo, 2);
  expect_well_formed(p, topo.graph(), 2);
  // Pods 0,1 -> shard 0; pods 2,3 -> shard 1. Every switch of a pod stays
  // with its pod — the cut never splits a pod.
  for (std::uint32_t pod = 0; pod < topo.pod_count(); ++pod) {
    const std::uint32_t expect = pod < 2 ? 0u : 1u;
    for (std::uint32_t i = 0; i < topo.aggregation_per_pod(); ++i)
      EXPECT_EQ(p.shard_of(topo.aggregation(pod, i)), expect);
    for (std::uint32_t i = 0; i < topo.edge_per_pod(); ++i)
      EXPECT_EQ(p.shard_of(topo.edge_switch(pod, i)), expect);
  }
  // Core switches alternate shards (round-robin keeps spine capacity
  // spread), so each shard owns exactly half of the k=4 spine.
  std::size_t core_in_0 = 0;
  for (std::uint32_t i = 0; i < topo.core_count(); ++i)
    if (p.shard_of(topo.core(i)) == 0) ++core_in_0;
  EXPECT_EQ(core_in_0, topo.core_count() / 2);
  // Pods are internally dense; only pod-to-core links can cross.
  EXPECT_GT(p.cut_edges, 0u);
  EXPECT_LT(p.cut_edges, topo.graph().edge_count() / 2);
}

TEST(Partition, FatTreeShardSizesDifferByAtMostOnePod) {
  graph::FatTree topo(8);
  for (std::size_t shards : {2u, 3u, 4u, 8u}) {
    const DomainPartition p = partition_fat_tree(topo, shards);
    expect_well_formed(p, topo.graph(), shards);
    const std::size_t pod_nodes =
        topo.aggregation_per_pod() + topo.edge_per_pod();
    std::size_t min_size = topo.graph().node_count(), max_size = 0;
    for (const auto& members : p.members) {
      min_size = std::min(min_size, members.size());
      max_size = std::max(max_size, members.size());
    }
    // Block pod assignment: sizes differ by at most one pod plus the
    // round-robin core remainder.
    EXPECT_LE(max_size - min_size, pod_nodes + 1) << "shards=" << shards;
  }
}

TEST(Partition, FatTreeRejectsImpossibleShardCounts) {
  graph::FatTree topo(4);
  EXPECT_THROW(partition_fat_tree(topo, 0), std::invalid_argument);
  EXPECT_THROW(partition_fat_tree(topo, topo.pod_count() + 1),
               std::invalid_argument);
}

TEST(Partition, BalancedPartitionCoversRandomGraphsEvenly) {
  util::Rng rng(42);
  const graph::Graph g = graph::make_random_connected(60, 140, rng);
  for (std::size_t shards : {2u, 3u, 5u}) {
    const DomainPartition p = partition_balanced(g, shards);
    expect_well_formed(p, g, shards);
    // LPT packing of BFS zones: no shard more than 2x the ideal share.
    const std::size_t ideal = (g.node_count() + shards - 1) / shards;
    for (const auto& members : p.members)
      EXPECT_LE(members.size(), 2 * ideal) << "shards=" << shards;
  }
}

TEST(Partition, BalancedPartitionIsDeterministic) {
  util::Rng rng_a(7), rng_b(7);
  const graph::Graph a = graph::make_random_connected(40, 90, rng_a);
  const graph::Graph b = graph::make_random_connected(40, 90, rng_b);
  EXPECT_EQ(partition_balanced(a, 3).home, partition_balanced(b, 3).home);
}

TEST(Partition, SingleShardHasNoCut) {
  graph::FatTree topo(4);
  const DomainPartition p = partition_fat_tree(topo, 1);
  expect_well_formed(p, topo.graph(), 1);
  EXPECT_EQ(p.cut_edges, 0u);
}

}  // namespace
}  // namespace dust::federation
