// Multi-process integration: the daemon binaries (examples/manager_daemon,
// examples/client_daemon) speaking the wire protocol over loopback TCP must
// reach the exact placement an in-process simulator run computes — same
// destinations, bit-identical amounts, same HFR — and must survive a client
// process dying mid-run by substituting a replica destination (§III-B Rep).
//
// The daemons print doubles as IEEE-754 bit patterns, so equality here is
// bit-exact string/integer comparison, never epsilon.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/heuristic.hpp"
#include "core/manager.hpp"
#include "daemon_harness.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"
#include "wire/demo_scenario.hpp"

#ifndef DUST_MANAGER_DAEMON_BIN
#error "DUST_MANAGER_DAEMON_BIN must point at the manager_daemon binary"
#endif
#ifndef DUST_CLIENT_DAEMON_BIN
#error "DUST_CLIENT_DAEMON_BIN must point at the client_daemon binary"
#endif
#ifndef DUST_COLLECTOR_DAEMON_BIN
#error "DUST_COLLECTOR_DAEMON_BIN must point at the collector_daemon binary"
#endif

namespace dust {
namespace {

using daemon_harness::Daemon;
using daemon_harness::wall_ms;

using Assign = std::tuple<unsigned, unsigned, std::uint64_t>;

struct ManagerReport {
  std::uint16_t port = 0;
  std::uint64_t hfr_bits = ~0ULL;
  std::set<Assign> assigns;
  std::set<Assign> final_assigns;
  long final_offloads = -1;
  long keepalive_failures = -1;
  long redirects = -1;
  // Observability plane (OBS* lines, printed after FINAL).
  long obs_nodes = -1;
  long obs_applied = -1;
  long obs_spans = -1;
  long stitched_processes = -1;
  std::map<std::string, long> obs_node_seq;
};

void parse_line(const std::string& line, ManagerReport& report) {
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag == "PORT") {
    in >> report.port;
  } else if (tag == "HFR") {
    std::string hex;
    in >> hex;
    report.hfr_bits = std::stoull(hex, nullptr, 16);
  } else if (tag == "ASSIGN" || tag == "FINAL_ASSIGN") {
    unsigned busy = 0;
    unsigned destination = 0;
    std::string hex;
    in >> busy >> destination >> hex;
    (tag == "ASSIGN" ? report.assigns : report.final_assigns)
        .emplace(busy, destination, std::stoull(hex, nullptr, 16));
  } else if (tag == "FINAL") {
    std::string field;
    while (in >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const long value = std::stol(field.substr(eq + 1));
      if (key == "offloads") report.final_offloads = value;
      if (key == "keepalive_failures") report.keepalive_failures = value;
      if (key == "redirects") report.redirects = value;
    }
  } else if (tag == "OBS" || tag == "OBS_STITCHED") {
    std::string field;
    while (in >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      // Note: trace= carries a full u64 id — left unparsed, stol would throw.
      if (key == "nodes") report.obs_nodes = std::stol(value);
      if (key == "applied") report.obs_applied = std::stol(value);
      if (key == "spans") report.obs_spans = std::stol(value);
      if (key == "processes") report.stitched_processes = std::stol(value);
    }
  } else if (tag == "OBS_NODE") {
    std::string node;
    std::string field;
    in >> node;
    while (in >> field) {
      const std::size_t eq = field.find('=');
      if (eq != std::string::npos && field.substr(0, eq) == "seq")
        report.obs_node_seq[node] = std::stol(field.substr(eq + 1));
    }
  }
}

struct Reference {
  std::uint64_t hfr_bits = 0;
  std::set<Assign> assigns;
};

// The in-process ground truth: same demo scenario, same scripted constant
// states, simulated transport. What the daemons must reproduce bit-for-bit.
Reference in_process_reference() {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(7));
  core::ManagerConfig config;
  config.update_interval_ms = 200;
  config.placement_period_ms = 1LL << 40;
  core::DustManager manager(sim, transport, wire::demo_nmdb(), config);
  core::Nmdb scenario = wire::demo_nmdb();
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < scenario.node_count(); ++v) {
    core::ClientConfig client_config;
    client_config.offload_capable = scenario.offload_capable(v);
    client_config.platform_factor = scenario.platform_factor(v);
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, client_config, util::Rng(100 + v)));
    clients.back()->set_reported_state(
        scenario.network().node_utilization(v),
        scenario.network().monitoring_data_mb(v), 1);
    clients.back()->start();
  }
  manager.start();
  sim.run_until(2000);
  EXPECT_EQ(manager.nodes_reporting(), scenario.node_count());

  Reference reference;
  reference.hfr_bits = std::bit_cast<std::uint64_t>(
      core::HeuristicEngine().run(manager.nmdb()).hfr_percent());
  manager.run_placement_cycle();
  for (const core::ActiveOffload& offload : manager.active_offloads())
    reference.assigns.emplace(offload.busy, offload.destination,
                              std::bit_cast<std::uint64_t>(offload.amount));
  EXPECT_FALSE(reference.assigns.empty());
  return reference;
}

// Read manager stdout until the PORT line shows up, then hand each client
// fleet slice its own OS process.
std::uint16_t await_port(Daemon& manager, ManagerReport& report) {
  const std::int64_t deadline = wall_ms() + 10000;
  std::string line;
  while (report.port == 0 && manager.read_line(line, deadline))
    parse_line(line, report);
  return report.port;
}

void drain(Daemon& manager, ManagerReport& report, std::int64_t deadline_ms) {
  std::string line;
  while (manager.read_line(line, deadline_ms)) parse_line(line, report);
}

TEST(WireDaemon, FourClientProcessesMatchInProcessPlacement) {
  const Reference reference = in_process_reference();

  Daemon manager(DUST_MANAGER_DAEMON_BIN,
                 {"--run-ms", "4000", "--settle-ms", "15000"},
                 /*capture_stdout=*/true);
  ASSERT_TRUE(manager.running());
  ManagerReport report;
  const std::uint16_t port = await_port(manager, report);
  ASSERT_NE(port, 0) << "manager_daemon never printed PORT";

  const std::string port_arg = std::to_string(port);
  std::vector<std::unique_ptr<Daemon>> clients;
  for (const char* slice : {"0,1", "2,3", "4,5", "6,7"})
    clients.push_back(std::make_unique<Daemon>(
        DUST_CLIENT_DAEMON_BIN,
        std::vector<std::string>{"--port", port_arg, "--nodes", slice,
                                 "--run-ms", "4000"},
        /*capture_stdout=*/false));

  drain(manager, report, wall_ms() + 30000);
  EXPECT_EQ(manager.wait_exit(), 0);
  for (auto& client : clients) EXPECT_EQ(client->wait_exit(), 0);

  // Same heuristic fallback ratio, same placement, bit-identical amounts.
  EXPECT_EQ(report.hfr_bits, reference.hfr_bits);
  EXPECT_EQ(report.assigns, reference.assigns);
  EXPECT_EQ(report.final_assigns, reference.assigns)
      << "no relationship should churn when every process stays alive";
  EXPECT_EQ(report.keepalive_failures, 0);
}

// collector_daemon's FINAL line: "FINAL samples=N batches=N ...".
struct CollectorReport {
  long samples = -1;
  long batches = -1;
  long blocks = -1;
  long undeclared = -1;
  long verify_failures = -1;
  long out_of_order = -1;
  bool seen = false;
};

void parse_collector_line(const std::string& line, CollectorReport& report) {
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag != "FINAL") return;
  report.seen = true;
  std::string field;
  while (in >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = field.substr(0, eq);
    const long value = std::stol(field.substr(eq + 1));
    if (key == "samples") report.samples = value;
    if (key == "batches") report.batches = value;
    if (key == "blocks") report.blocks = value;
    if (key == "undeclared") report.undeclared = value;
    if (key == "verify_failures") report.verify_failures = value;
    if (key == "out_of_order") report.out_of_order = value;
  }
}

TEST(WireDaemon, DestinationStreamsBlocksToCollectorWhilePlacementMatches) {
  // The data plane must not perturb the control plane: the node that
  // receives the offloaded monitoring load also streams its telemetry
  // blocks through the hub to a collector process, and the placement still
  // matches the in-process simulation bit for bit.
  const Reference reference = in_process_reference();
  ASSERT_EQ(reference.assigns.size(), 1u);
  const unsigned destination = std::get<1>(*reference.assigns.begin());

  std::string others;
  for (unsigned v = 0; v < wire::kDemoNodeCount; ++v) {
    if (v == destination) continue;
    if (!others.empty()) others += ',';
    others += std::to_string(v);
  }

  Daemon manager(DUST_MANAGER_DAEMON_BIN,
                 {"--run-ms", "5000", "--settle-ms", "15000"},
                 /*capture_stdout=*/true);
  ASSERT_TRUE(manager.running());
  ManagerReport report;
  const std::uint16_t port = await_port(manager, report);
  ASSERT_NE(port, 0) << "manager_daemon never printed PORT";

  const std::string port_arg = std::to_string(port);
  Daemon collector(DUST_COLLECTOR_DAEMON_BIN,
                   {"--port", port_arg, "--run-ms", "6000"},
                   /*capture_stdout=*/true);
  ASSERT_TRUE(collector.running());
  std::string line;
  ASSERT_TRUE(collector.read_line(line, wall_ms() + 10000));
  ASSERT_EQ(line.rfind("READY", 0), 0u)
      << "collector_daemon spoke before READY: " << line;

  constexpr long kStreamSamples = 1500;  // per series, two series
  Daemon quiet(DUST_CLIENT_DAEMON_BIN,
               {"--port", port_arg, "--nodes", others, "--run-ms", "5000"},
               /*capture_stdout=*/false);
  Daemon origin(DUST_CLIENT_DAEMON_BIN,
                {"--port", port_arg, "--nodes", std::to_string(destination),
                 "--run-ms", "5000", "--stream", "--stream-samples",
                 std::to_string(kStreamSamples), "--stream-delay-ms", "1500"},
                /*capture_stdout=*/false);
  ASSERT_TRUE(quiet.running());
  ASSERT_TRUE(origin.running());

  drain(manager, report, wall_ms() + 30000);
  EXPECT_EQ(manager.wait_exit(), 0);
  EXPECT_EQ(quiet.wait_exit(), 0);
  EXPECT_EQ(origin.wait_exit(), 0);

  CollectorReport data;
  const std::int64_t collector_deadline = wall_ms() + 15000;
  while (!data.seen && collector.read_line(line, collector_deadline))
    parse_collector_line(line, data);
  EXPECT_EQ(collector.wait_exit(), 0)
      << "collector saw undeclared loss or verify failures";

  // Control plane: bit-identical to the in-process run, nobody flapped.
  EXPECT_EQ(report.hfr_bits, reference.hfr_bits);
  EXPECT_EQ(report.assigns, reference.assigns);
  EXPECT_EQ(report.final_assigns, reference.assigns);
  EXPECT_EQ(report.keepalive_failures, 0);

  // Data plane: every streamed sample arrived across three processes, and
  // the idle-link transfer involved no loss at all, declared or otherwise.
  ASSERT_TRUE(data.seen) << "collector_daemon never printed FINAL";
  EXPECT_EQ(data.samples, 2 * kStreamSamples);
  EXPECT_GE(data.batches, 1);
  EXPECT_EQ(data.undeclared, 0);
  EXPECT_EQ(data.verify_failures, 0);
  EXPECT_EQ(data.out_of_order, 0);
}

TEST(WireDaemon, ClientProcessDeathSubstitutesReplicaOverTheWire) {
  // The reference run tells us which node hosts the offloaded workload; that
  // node gets a process of its own, scheduled to crash mid-run.
  const Reference reference = in_process_reference();
  ASSERT_EQ(reference.assigns.size(), 1u);
  const unsigned victim = std::get<1>(*reference.assigns.begin());

  std::string survivors;
  for (unsigned v = 0; v < wire::kDemoNodeCount; ++v) {
    if (v == victim) continue;
    if (!survivors.empty()) survivors += ',';
    survivors += std::to_string(v);
  }

  Daemon manager(DUST_MANAGER_DAEMON_BIN,
                 {"--run-ms", "8000", "--settle-ms", "15000"},
                 /*capture_stdout=*/true);
  ASSERT_TRUE(manager.running());
  ManagerReport report;
  const std::uint16_t port = await_port(manager, report);
  ASSERT_NE(port, 0) << "manager_daemon never printed PORT";

  const std::string port_arg = std::to_string(port);
  Daemon healthy(DUST_CLIENT_DAEMON_BIN,
                 {"--port", port_arg, "--nodes", survivors, "--run-ms", "8000"},
                 /*capture_stdout=*/false);
  Daemon doomed(DUST_CLIENT_DAEMON_BIN,
                {"--port", port_arg, "--nodes", std::to_string(victim),
                 "--run-ms", "8000", "--die-at-ms", "2500"},
                /*capture_stdout=*/false);
  ASSERT_TRUE(healthy.running());
  ASSERT_TRUE(doomed.running());

  drain(manager, report, wall_ms() + 40000);
  EXPECT_EQ(manager.wait_exit(), 0);
  EXPECT_EQ(healthy.wait_exit(), 0);
  EXPECT_EQ(doomed.wait_exit(), 7);  // std::_Exit(7) — crashed, not finished

  // The first cycle placed onto the soon-to-die node, exactly as in-process.
  EXPECT_EQ(report.assigns, reference.assigns);
  // The crash was noticed via keepalive loss, and every surviving
  // relationship now points at a replica — never the dead node.
  EXPECT_GE(report.keepalive_failures, 1);
  EXPECT_FALSE(report.final_assigns.empty());
  for (const Assign& assign : report.final_assigns)
    EXPECT_NE(std::get<1>(assign), victim)
        << "a relationship still targets the dead node";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(WireDaemon, FleetObservabilityMergesEveryProcessAndStitchesTraces) {
  // The manager scrapes every process on the hub (two client daemons, one
  // collector, itself) into one fleet registry, exports it with node=
  // labels, and stitches spans recorded in different OS processes into one
  // Perfetto trace. Snapshot rejections are deliberately NOT asserted zero:
  // a kLow reply straddling scrape rounds triggers a legitimate
  // reject → request-full resync, which is the protocol healing itself.
  const std::string prom_path =
      ::testing::TempDir() + "fleet_obs_" + std::to_string(getpid()) + ".prom";
  const std::string trace_path =
      ::testing::TempDir() + "fleet_obs_" + std::to_string(getpid()) + ".json";

  Daemon manager(DUST_MANAGER_DAEMON_BIN,
                 {"--run-ms", "5000", "--settle-ms", "15000",
                  "--obs-scrape-ms", "250", "--obs-export", prom_path,
                  "--obs-trace-out", trace_path},
                 /*capture_stdout=*/true);
  ASSERT_TRUE(manager.running());
  ManagerReport report;
  const std::uint16_t port = await_port(manager, report);
  ASSERT_NE(port, 0) << "manager_daemon never printed PORT";

  const std::string port_arg = std::to_string(port);
  Daemon collector(DUST_COLLECTOR_DAEMON_BIN,
                   {"--port", port_arg, "--run-ms", "6000"},
                   /*capture_stdout=*/true);
  ASSERT_TRUE(collector.running());
  std::string line;
  ASSERT_TRUE(collector.read_line(line, wall_ms() + 10000));
  ASSERT_EQ(line.rfind("READY", 0), 0u);

  // The streaming client gives the trace chain its cross-process tail
  // (data_blocks spans on the client, collect_blocks on the collector).
  Daemon streaming(DUST_CLIENT_DAEMON_BIN,
                   {"--port", port_arg, "--nodes", "0,1,2,3", "--run-ms",
                    "5000", "--stream"},
                   /*capture_stdout=*/false);
  Daemon quiet(DUST_CLIENT_DAEMON_BIN,
               {"--port", port_arg, "--nodes", "4,5,6,7", "--run-ms", "5000"},
               /*capture_stdout=*/false);
  ASSERT_TRUE(streaming.running());
  ASSERT_TRUE(quiet.running());

  drain(manager, report, wall_ms() + 30000);
  EXPECT_EQ(manager.wait_exit(), 0);
  EXPECT_EQ(streaming.wait_exit(), 0);
  EXPECT_EQ(quiet.wait_exit(), 0);
  EXPECT_EQ(collector.wait_exit(), 0);

  // Every process merged: the manager itself, both client daemons (named
  // after their first node), and the collector, each with at least one
  // applied snapshot.
  EXPECT_GE(report.obs_nodes, 4);
  EXPECT_GE(report.obs_applied, 4);
  EXPECT_GT(report.obs_spans, 0);
  for (const char* node : {"manager", "client-0", "client-4", "collector"}) {
    const auto it = report.obs_node_seq.find(node);
    ASSERT_NE(it, report.obs_node_seq.end()) << node << " was never scraped";
    EXPECT_GE(it->second, 1) << node;
  }

  // One stitched trace crosses at least three OS processes.
  EXPECT_GE(report.stitched_processes, 3);

  // Fleet Prometheus export: every node appears as a label, and the scrape
  // bandwidth counter the responders maintain made it across the wire.
  const std::string prom = slurp(prom_path);
  ASSERT_FALSE(prom.empty()) << "--obs-export wrote nothing";
  for (const char* node : {"manager", "client-0", "client-4", "collector"})
    EXPECT_NE(prom.find("node=\"" + std::string(node) + "\""),
              std::string::npos)
        << node << " missing from fleet export";
  EXPECT_NE(prom.find("dust_obs_scrape_bytes_total"), std::string::npos);

  // Perfetto file: one process lane per track prefix, from ≥3 daemons.
  const std::string trace_json = slurp(trace_path);
  ASSERT_FALSE(trace_json.empty()) << "--obs-trace-out wrote nothing";
  int daemons_in_trace = 0;
  for (const char* prefix : {"manager/", "client-0/", "client-4/",
                             "collector/"})
    daemons_in_trace += trace_json.find(prefix) != std::string::npos ? 1 : 0;
  EXPECT_GE(daemons_in_trace, 3);

  std::remove(prom_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace dust
