#include "telemetry/packet.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dust::telemetry {
namespace {

TEST(PacketBuild, VxlanRoundTrip) {
  const auto bytes = build_vxlan_packet(0x1234, 0x0a000001, 0x0a000002, 100);
  ParseError error{};
  const auto packet = parse_packet(bytes, &error);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->ethernet.ethertype, EthernetHeader::kEthertypeIpv4);
  EXPECT_EQ(packet->ip.source, 0x0a000001u);
  EXPECT_EQ(packet->ip.destination, 0x0a000002u);
  EXPECT_EQ(packet->ip.protocol, Ipv4Header::kProtocolUdp);
  ASSERT_TRUE(packet->udp.has_value());
  EXPECT_EQ(packet->udp->destination_port, UdpHeader::kVxlanPort);
  ASSERT_TRUE(packet->vxlan.has_value());
  EXPECT_EQ(packet->vxlan->vni, 0x1234u);
  ASSERT_TRUE(packet->inner.has_value());
  EXPECT_EQ(packet->total_bytes, bytes.size());
  // Payload begins right after the inner Ethernet header.
  EXPECT_EQ(bytes.size() - packet->payload_offset, 100u);
}

TEST(PacketBuild, PlainUdpRoundTrip) {
  const auto bytes = build_udp_packet(0xc0a80001, 0xc0a80002, 1111, 53, 32);
  const auto packet = parse_packet(bytes);
  ASSERT_TRUE(packet.has_value());
  ASSERT_TRUE(packet->udp.has_value());
  EXPECT_EQ(packet->udp->source_port, 1111);
  EXPECT_EQ(packet->udp->destination_port, 53);
  EXPECT_FALSE(packet->vxlan.has_value());
  EXPECT_FALSE(packet->inner.has_value());
}

TEST(PacketParse, VniIs24Bits) {
  const auto bytes = build_vxlan_packet(0xffffff, 1, 2, 0);
  const auto packet = parse_packet(bytes);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->vxlan->vni, 0xffffffu);
}

TEST(PacketParse, TruncatedEthernet) {
  std::vector<std::uint8_t> bytes(10, 0);
  ParseError error{};
  EXPECT_FALSE(parse_packet(bytes, &error).has_value());
  EXPECT_EQ(error, ParseError::kTruncated);
}

TEST(PacketParse, TruncatedIp) {
  auto bytes = build_udp_packet(1, 2, 3, 4, 0);
  bytes.resize(EthernetHeader::kSize + 10);
  ParseError error{};
  EXPECT_FALSE(parse_packet(bytes, &error).has_value());
  EXPECT_EQ(error, ParseError::kTruncated);
}

TEST(PacketParse, NonIpv4Ethertype) {
  auto bytes = build_udp_packet(1, 2, 3, 4, 0);
  bytes[12] = 0x86;  // 0x86dd = IPv6
  bytes[13] = 0xdd;
  ParseError error{};
  EXPECT_FALSE(parse_packet(bytes, &error).has_value());
  EXPECT_EQ(error, ParseError::kNotIpv4);
}

TEST(PacketParse, CorruptedChecksumRejected) {
  auto bytes = build_udp_packet(1, 2, 3, 4, 0);
  bytes[EthernetHeader::kSize + 8] ^= 0xff;  // flip the TTL
  ParseError error{};
  EXPECT_FALSE(parse_packet(bytes, &error).has_value());
  EXPECT_EQ(error, ParseError::kBadChecksum);
}

TEST(PacketParse, BadVersionRejected) {
  auto bytes = build_udp_packet(1, 2, 3, 4, 0);
  bytes[EthernetHeader::kSize] = 0x65;  // version 6
  ParseError error{};
  EXPECT_FALSE(parse_packet(bytes, &error).has_value());
  EXPECT_EQ(error, ParseError::kBadIpHeader);
}

TEST(PacketParse, NonUdpParsesShallow) {
  auto bytes = build_udp_packet(1, 2, 3, 4, 0);
  const std::size_t ip_start = EthernetHeader::kSize;
  bytes[ip_start + 9] = 6;  // TCP
  // Re-checksum after the protocol change.
  bytes[ip_start + 10] = 0;
  bytes[ip_start + 11] = 0;
  const std::uint16_t checksum = ipv4_checksum(
      std::span<const std::uint8_t>(bytes).subspan(ip_start, 20));
  bytes[ip_start + 10] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[ip_start + 11] = static_cast<std::uint8_t>(checksum & 0xff);
  const auto packet = parse_packet(bytes);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->ip.protocol, 6);
  EXPECT_FALSE(packet->udp.has_value());
}

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example header.
  const std::uint8_t header[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                                   0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                                   0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(ipv4_checksum(header), 0xb861);
}

TEST(FlowCounter, AggregatesPerVni) {
  FlowCounter counter;
  for (int i = 0; i < 3; ++i) {
    const auto bytes = build_vxlan_packet(100, 1, 2, 50);
    counter.add(*parse_packet(bytes));
  }
  const auto other = build_vxlan_packet(200, 1, 2, 10);
  counter.add(*parse_packet(other));
  const auto plain = build_udp_packet(1, 2, 3, 4, 10);
  counter.add(*parse_packet(plain));

  EXPECT_EQ(counter.total_packets(), 5u);
  ASSERT_EQ(counter.per_vni().size(), 3u);
  EXPECT_EQ(counter.per_vni().at(100).packets, 3u);
  EXPECT_EQ(counter.per_vni().at(200).packets, 1u);
  EXPECT_EQ(counter.per_vni().at(FlowCounter::kNonVxlan).packets, 1u);
  EXPECT_GT(counter.per_vni().at(100).bytes,
            counter.per_vni().at(200).bytes);
}

class PacketFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: the parser never crashes or reads out of bounds on random bytes
// and random truncations of valid packets.
TEST_P(PacketFuzzSweep, NeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)parse_packet(junk);
    auto valid = build_vxlan_packet(static_cast<std::uint32_t>(rng.below(1 << 24)),
                                    1, 2, rng.below(64));
    valid.resize(rng.below(valid.size() + 1));
    (void)parse_packet(valid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dust::telemetry
