// Tests for hop-bounded path reconstruction, edge-disjoint routes, and the
// DOT exporter.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/dot.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::graph {
namespace {

Graph square() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(HopBoundedPath, ReconstructsMinCostRoute) {
  Graph g = square();
  std::vector<double> cost{5.0, 5.0, 1.0, 1.0};
  const Path path = hop_bounded_path(g, 0, 3, cost, 0);
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(path.cost(cost), 2.0);
}

TEST(HopBoundedPath, BoundForcesShorterRoute) {
  // Line 0-1-2 plus expensive direct 0-2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  std::vector<double> cost{1.0, 1.0, 10.0};
  EXPECT_EQ(hop_bounded_path(g, 0, 2, cost, 0).hops(), 2u);  // cheap 2-hop
  const Path bounded = hop_bounded_path(g, 0, 2, cost, 1);
  EXPECT_EQ(bounded.hops(), 1u);  // must take the expensive direct edge
  EXPECT_DOUBLE_EQ(bounded.cost(cost), 10.0);
}

TEST(HopBoundedPath, UnreachableEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  std::vector<double> cost{1.0};
  EXPECT_TRUE(hop_bounded_path(g, 0, 2, cost, 0).nodes.empty());
  Graph h = square();
  std::vector<double> hcost(4, 1.0);
  EXPECT_TRUE(hop_bounded_path(h, 0, 3, hcost, 1).nodes.empty());
}

TEST(HopBoundedPath, SelfPathTrivial) {
  Graph g = square();
  std::vector<double> cost(4, 1.0);
  const Path path = hop_bounded_path(g, 2, 2, cost, 0);
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{2}));
  EXPECT_TRUE(path.edges.empty());
}

class HopBoundedPathSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: reconstructed path cost equals hop_bounded_min_cost for every
// destination and bound.
TEST_P(HopBoundedPathSweep, CostMatchesDp) {
  util::Rng rng(GetParam());
  const Graph g = make_random_connected(12, 10, rng);
  std::vector<double> cost(g.edge_count());
  for (double& c : cost) c = rng.uniform(0.1, 5.0);
  for (std::uint32_t bound : {2u, 3u, 0u}) {
    const auto dp = hop_bounded_min_cost(g, 0, cost, bound);
    for (NodeId v = 1; v < g.node_count(); ++v) {
      const Path path = hop_bounded_path(g, 0, v, cost, bound);
      if (dp[v] == kInfiniteCost) {
        EXPECT_TRUE(path.nodes.empty());
      } else {
        ASSERT_FALSE(path.nodes.empty());
        EXPECT_NEAR(path.cost(cost), dp[v], 1e-9);
        if (bound) {
          EXPECT_LE(path.hops(), bound);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopBoundedPathSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(EdgeDisjoint, FindsBothRoutesOfSquare) {
  Graph g = square();
  std::vector<double> cost(4, 1.0);
  const auto paths = edge_disjoint_paths(g, 0, 3, cost, 2);
  ASSERT_EQ(paths.size(), 2u);
  std::set<EdgeId> used;
  for (const Path& p : paths) {
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.destination(), 3u);
    for (EdgeId e : p.edges) EXPECT_TRUE(used.insert(e).second) << "edge reused";
  }
}

TEST(EdgeDisjoint, CapsAtConnectivity) {
  Graph g = square();
  std::vector<double> cost(4, 1.0);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 3, cost, 5).size(), 2u);  // 2-connected
}

TEST(EdgeDisjoint, BridgeAllowsOnlyOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> cost(2, 1.0);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 2, cost, 2).size(), 1u);
}

TEST(EdgeDisjoint, PrefersCheapRoutesFirst) {
  // Square with one cheap and one expensive route; k=1 must pick the cheap.
  Graph g = square();
  std::vector<double> cost{1.0, 1.0, 10.0, 10.0};
  const auto paths = edge_disjoint_paths(g, 0, 3, cost, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].cost(cost), 2.0);
}

TEST(EdgeDisjoint, FatTreeInterPodMultiplicity) {
  const FatTree ft(4);
  std::vector<double> cost(ft.graph().edge_count(), 1.0);
  // Edge switches have degree k/2 = 2, so at most 2 edge-disjoint routes.
  const auto paths = edge_disjoint_paths(ft.graph(), ft.edge_switch(0, 0),
                                         ft.edge_switch(1, 0), cost, 4);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(EdgeDisjoint, ZeroKOrSelfEmpty) {
  Graph g = square();
  std::vector<double> cost(4, 1.0);
  EXPECT_TRUE(edge_disjoint_paths(g, 0, 3, cost, 0).empty());
  EXPECT_TRUE(edge_disjoint_paths(g, 1, 1, cost, 2).empty());
}

TEST(Dot, BasicStructure) {
  Graph g(2);
  g.add_edge(0, 1);
  std::ostringstream os;
  write_dot(os, g);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph dust {"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("label=\"0\""), std::string::npos);
}

TEST(Dot, CustomLabelsColorsAndEscaping) {
  Graph g(2);
  g.add_edge(0, 1);
  DotOptions options;
  options.node_label = [](NodeId v) {
    return v == 0 ? std::string("sw\"1\"") : std::string("sw2");
  };
  options.node_color = [](NodeId v) {
    return v == 0 ? std::string("red") : std::string();
  };
  options.edge_label = [](EdgeId) { return std::string("10G"); };
  options.graph_name = "pod";
  std::ostringstream os;
  write_dot(os, g, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph pod {"), std::string::npos);
  EXPECT_NE(out.find("sw\\\"1\\\""), std::string::npos);
  EXPECT_NE(out.find("fillcolor=\"red\""), std::string::npos);
  EXPECT_NE(out.find("label=\"10G\""), std::string::npos);
}

TEST(Dot, FatTreeExportsAllNodesAndEdges) {
  const FatTree ft(4);
  std::ostringstream os;
  DotOptions options;
  options.node_label = [&ft](NodeId v) { return ft.node_name(v); };
  write_dot(os, ft.graph(), options);
  const std::string out = os.str();
  std::size_t edges = 0;
  for (std::size_t pos = out.find(" -- "); pos != std::string::npos;
       pos = out.find(" -- ", pos + 1))
    ++edges;
  EXPECT_EQ(edges, ft.graph().edge_count());
  EXPECT_NE(out.find("core0"), std::string::npos);
  EXPECT_NE(out.find("edge3.1"), std::string::npos);
}

}  // namespace
}  // namespace dust::graph
