#include "telemetry/sampled_flow.hpp"

#include <gtest/gtest.h>

namespace dust::telemetry {
namespace {

ParsedPacket make_packet(std::uint32_t vni) {
  const auto bytes = build_vxlan_packet(vni, 1, 2, 64);
  return *parse_packet(bytes);
}

TEST(SampledFlow, RateOneIsExact) {
  SampledFlowCollector collector(1, util::Rng(1));
  FlowCounter truth;
  for (int i = 0; i < 500; ++i) {
    const ParsedPacket packet = make_packet(i % 3);
    collector.offer(packet);
    truth.add(packet);
  }
  EXPECT_EQ(collector.sampled(), 500u);
  EXPECT_DOUBLE_EQ(estimation_error(truth, collector.estimate()), 0.0);
}

TEST(SampledFlow, ZeroRateRejected) {
  EXPECT_THROW(SampledFlowCollector(0, util::Rng(1)), std::invalid_argument);
}

TEST(SampledFlow, SamplesRoughlyOneInN) {
  SampledFlowCollector collector(10, util::Rng(2));
  for (int i = 0; i < 20000; ++i) collector.offer(make_packet(1));
  EXPECT_EQ(collector.offered(), 20000u);
  EXPECT_NEAR(static_cast<double>(collector.sampled()), 2000.0, 200.0);
}

TEST(SampledFlow, EstimateScalesUp) {
  SampledFlowCollector collector(10, util::Rng(3));
  for (int i = 0; i < 10000; ++i) collector.offer(make_packet(7));
  const auto estimate = collector.estimate();
  ASSERT_TRUE(estimate.count(7));
  EXPECT_NEAR(static_cast<double>(estimate.at(7).packets), 10000.0, 1000.0);
  EXPECT_NEAR(static_cast<double>(collector.estimated_total_packets()),
              10000.0, 1000.0);
}

TEST(SampledFlow, SmallFlowsVanishUnderAggressiveSampling) {
  // The paper's argument against sampling: a mouse flow next to an elephant
  // flow is likely missed entirely at high sampling rates.
  SampledFlowCollector collector(1000, util::Rng(4));
  FlowCounter truth;
  for (int i = 0; i < 50000; ++i) {  // elephant on VNI 1
    const ParsedPacket packet = make_packet(1);
    collector.offer(packet);
    truth.add(packet);
  }
  for (int i = 0; i < 20; ++i) {  // mouse on VNI 2
    const ParsedPacket packet = make_packet(2);
    collector.offer(packet);
    truth.add(packet);
  }
  const auto estimate = collector.estimate();
  // The mouse flow is almost certainly invisible (P(miss) ~ 0.98).
  const bool mouse_seen = estimate.count(2) > 0;
  const double error = estimation_error(truth, estimate);
  if (!mouse_seen) {
    EXPECT_GE(error, 0.5);  // one of two VNIs 100% wrong
  }
}

class SamplingErrorSweep : public ::testing::TestWithParam<std::uint32_t> {};

// Property: estimation error grows with the sampling rate, and full
// counting (FlowCounter, what DUST's in-device agents do) has zero error.
TEST_P(SamplingErrorSweep, ErrorGrowsWithRate) {
  util::Rng traffic_rng(5);
  FlowCounter truth;
  SampledFlowCollector collector(GetParam(), util::Rng(6));
  for (int i = 0; i < 30000; ++i) {
    const auto vni = static_cast<std::uint32_t>(traffic_rng.below(5));
    const ParsedPacket packet = make_packet(vni);
    truth.add(packet);
    collector.offer(packet);
  }
  const double error = estimation_error(truth, collector.estimate());
  if (GetParam() == 1) {
    EXPECT_DOUBLE_EQ(error, 0.0);
  } else {
    EXPECT_GT(error, 0.0);
    EXPECT_LT(error, 1.0);  // still a bounded estimate at these rates
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingErrorSweep,
                         ::testing::Values(1u, 16u, 64u, 256u));

}  // namespace
}  // namespace dust::telemetry
