#include "net/traffic.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"

namespace dust::net {
namespace {

TEST(RandomizeLinks, RespectsProfileRange) {
  util::Rng rng(1);
  NetworkState net(graph::make_ring(10));
  LinkProfile profile;
  profile.bandwidth_mbps = 25000.0;
  profile.min_utilization = 0.3;
  profile.max_utilization = 0.7;
  randomize_links(net, profile, rng);
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(net.link(e).bandwidth_mbps, 25000.0);
    EXPECT_GE(net.link(e).utilization, 0.3);
    EXPECT_LE(net.link(e).utilization, 0.7);
  }
}

TEST(RandomizeLinks, RejectsBadRange) {
  util::Rng rng(2);
  NetworkState net(graph::make_ring(4));
  LinkProfile bad;
  bad.min_utilization = 0.8;
  bad.max_utilization = 0.2;
  EXPECT_THROW(randomize_links(net, bad, rng), std::invalid_argument);
  bad.min_utilization = 0.0;
  bad.max_utilization = 0.5;
  EXPECT_THROW(randomize_links(net, bad, rng), std::invalid_argument);
}

TEST(RandomizeNodeLoads, RespectsProfile) {
  util::Rng rng(3);
  NetworkState net(graph::make_ring(20));
  NodeLoadProfile profile;
  profile.x_min = 20.0;
  profile.x_max = 90.0;
  profile.monitoring_data_min_mb = 5.0;
  profile.monitoring_data_max_mb = 15.0;
  randomize_node_loads(net, profile, rng);
  for (graph::NodeId v = 0; v < net.node_count(); ++v) {
    EXPECT_GE(net.node_utilization(v), 20.0);
    EXPECT_LE(net.node_utilization(v), 90.0);
    EXPECT_GE(net.monitoring_data_mb(v), 5.0);
    EXPECT_LE(net.monitoring_data_mb(v), 15.0);
  }
}

TEST(RandomizeNodeLoads, RejectsBadRange) {
  util::Rng rng(4);
  NetworkState net(graph::make_ring(4));
  NodeLoadProfile bad;
  bad.x_min = 80.0;
  bad.x_max = 20.0;
  EXPECT_THROW(randomize_node_loads(net, bad, rng), std::invalid_argument);
}

TEST(MakeRandomState, Deterministic) {
  util::Rng rng_a(42), rng_b(42);
  const NetworkState a = make_random_state(graph::make_ring(8), LinkProfile{},
                                           NodeLoadProfile{}, rng_a);
  const NetworkState b = make_random_state(graph::make_ring(8), LinkProfile{},
                                           NodeLoadProfile{}, rng_b);
  for (graph::NodeId v = 0; v < a.node_count(); ++v)
    EXPECT_DOUBLE_EQ(a.node_utilization(v), b.node_utilization(v));
  for (graph::EdgeId e = 0; e < a.edge_count(); ++e)
    EXPECT_DOUBLE_EQ(a.link(e).utilization, b.link(e).utilization);
}

TEST(MakeRandomState, DifferentSeedsDiffer) {
  util::Rng rng_a(1), rng_b(2);
  const NetworkState a = make_random_state(graph::make_ring(8), LinkProfile{},
                                           NodeLoadProfile{}, rng_a);
  const NetworkState b = make_random_state(graph::make_ring(8), LinkProfile{},
                                           NodeLoadProfile{}, rng_b);
  bool any_different = false;
  for (graph::NodeId v = 0; v < a.node_count(); ++v)
    if (a.node_utilization(v) != b.node_utilization(v)) any_different = true;
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace dust::net
