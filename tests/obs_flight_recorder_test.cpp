// Flight recorder ring (obs/flight_recorder.hpp): ordering, wrap-around,
// detail truncation, disabled gating, and the text timeline rendering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace dust::obs {
namespace {

struct FlightRecorderTest : ::testing::Test {
  void SetUp() override { set_enabled(true); }
};

TEST_F(FlightRecorderTest, RecordsEventsInOrderWithPayload) {
  FlightRecorder recorder(16);
  recorder.record(FlightEventKind::kCycleStart, 1000, 0, FlightEvent::kNoNode,
                  FlightEvent::kNoNode, 3.0, "cycle");
  recorder.record(FlightEventKind::kOffloadCreated, 1001, 77, 0, 5, 12.5,
                  "0>5");
  recorder.record(FlightEventKind::kCycleEnd, 1002, 0, FlightEvent::kNoNode,
                  FlightEvent::kNoNode, 1.0, "");

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kCycleStart);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kOffloadCreated);
  EXPECT_EQ(events[1].sim_ms, 1001);
  EXPECT_EQ(events[1].trace_id, 77u);
  EXPECT_EQ(events[1].node, 0);
  EXPECT_EQ(events[1].peer, 5);
  EXPECT_DOUBLE_EQ(events[1].value, 12.5);
  EXPECT_STREQ(events[1].detail, "0>5");
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(recorder.recorded(), 3u);
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheNewestCapacityEvents) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i)
    recorder.record(FlightEventKind::kCustom, i, std::to_string(i));
  EXPECT_EQ(recorder.recorded(), 10u);  // total ever, not just retained

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // oldest surviving first
    EXPECT_STREQ(events[i].detail, std::to_string(6 + i).c_str());
  }
}

TEST_F(FlightRecorderTest, TailReturnsTheMostRecentN) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 8; ++i)
    recorder.record(FlightEventKind::kCustom, i, "");
  const std::vector<FlightEvent> last3 = recorder.tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.front().seq, 5u);
  EXPECT_EQ(last3.back().seq, 7u);
  EXPECT_EQ(recorder.tail(100).size(), 8u);  // n > held: everything
}

TEST_F(FlightRecorderTest, DetailTruncatesAtCapacityWithNulTerminator) {
  FlightRecorder recorder(4);
  const std::string longer(100, 'x');
  recorder.record(FlightEventKind::kCustom, 0, longer);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail),
            std::string(FlightEvent::kDetailCapacity - 1, 'x'));
}

TEST_F(FlightRecorderTest, ClearEmptiesRingAndRestartsSequence) {
  FlightRecorder recorder(8);
  recorder.record(FlightEventKind::kCustom, 0, "a");
  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.record(FlightEventKind::kCustom, 1, "b");
  ASSERT_EQ(recorder.snapshot().size(), 1u);
  EXPECT_EQ(recorder.snapshot().front().seq, 0u);
}

TEST_F(FlightRecorderTest, DisabledInstrumentationIsANoOp) {
  FlightRecorder recorder(8);
  set_enabled(false);
  recorder.record(FlightEventKind::kCustom, 0, "dropped");
  set_enabled(true);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST_F(FlightRecorderTest, TextTimelineRendersOneLinePerEvent) {
  FlightRecorder recorder(8);
  recorder.record(FlightEventKind::kMessageDrop, 2500, 9, 3, -1, 0.0,
                  "loss: stat c3>M");
  recorder.record(FlightEventKind::kAlert, 3000, 0, FlightEvent::kNoNode,
                  FlightEvent::kNoNode, 42.0, "hfr-spike");
  const std::string text = flight_text(recorder.snapshot());
  EXPECT_NE(text.find("#0 t=2500ms msg_drop [loss: stat c3>M] node=3"),
            std::string::npos);
  EXPECT_NE(text.find("trace=9"), std::string::npos);
  EXPECT_NE(text.find("#1 t=3000ms alert [hfr-spike] value=42"),
            std::string::npos);
}

}  // namespace
}  // namespace dust::obs
