#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace dust::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, AddNodesSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, ConstructWithNodeCount) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddEdgeUpdatesAdjacencyBothWays) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].neighbor, 2u);
  EXPECT_EQ(g.neighbors(0)[0].edge, e);
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(2)[0].neighbor, 0u);
  EXPECT_EQ(g.neighbors(1).size(), 0u);
}

TEST(Graph, EdgeEndpointsAndOther) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge(e).a, 0u);
  EXPECT_EQ(g.edge(e).b, 1u);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsParallelEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(5, 0), std::out_of_range);
}

TEST(Graph, FindEdge) {
  Graph g(4);
  const EdgeId e = g.add_edge(1, 3);
  EXPECT_EQ(g.find_edge(1, 3), e);
  EXPECT_EQ(g.find_edge(3, 1), e);
  EXPECT_FALSE(g.find_edge(0, 1).has_value());
  EXPECT_FALSE(g.find_edge(0, 99).has_value());
}

TEST(Graph, Degree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, ConnectedPath) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, IsolatedNodeDisconnects) {
  Graph g(2);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, SingleNodeConnected) {
  Graph g(1);
  EXPECT_TRUE(g.connected());
}

}  // namespace
}  // namespace dust::graph
