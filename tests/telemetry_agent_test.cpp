#include "telemetry/agent.hpp"

#include <gtest/gtest.h>

namespace dust::telemetry {
namespace {

DeviceSnapshot snapshot_at(std::int64_t t, double rx_mbps = 20000.0) {
  DeviceSnapshot s;
  s.timestamp_ms = t;
  s.device_cpu_percent = 30.0;
  s.memory_used_mib = 10000.0;
  s.rx_mbps = rx_mbps;
  s.tx_mbps = 0.0;
  return s;
}

TEST(MonitorAgent, RejectsNonPositiveInterval) {
  EXPECT_THROW(MonitorAgent("a", {}, 0), std::invalid_argument);
  EXPECT_THROW(MonitorAgent("a", {}, -5), std::invalid_argument);
}

TEST(MonitorAgent, DueRespectsInterval) {
  MonitorAgent agent("a", {}, 1000);
  EXPECT_TRUE(agent.due(0));  // never sampled yet
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  agent.sample(snapshot_at(0), db, rng);
  EXPECT_FALSE(agent.due(500));
  EXPECT_TRUE(agent.due(1000));
}

TEST(MonitorAgent, SampleBeforeBindThrows) {
  MonitorAgent agent("a", {}, 1000);
  Tsdb db;
  util::Rng rng(1);
  EXPECT_THROW(agent.sample(snapshot_at(0), db, rng), std::logic_error);
}

TEST(MonitorAgent, SampleWritesThreeMetrics) {
  MonitorAgent agent("network.health", {}, 1000);
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  agent.sample(snapshot_at(42), db, rng);
  EXPECT_EQ(db.metric_count(), 3u);
  ASSERT_TRUE(db.find("network.health.value").has_value());
  const auto samples = db.query(*db.find("network.health.value"), 0, 100);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].timestamp_ms, 42);
}

TEST(MonitorAgent, CpuCostScalesWithTraffic) {
  AgentCostModel cost;
  cost.cpu_base_ms = 10.0;
  cost.cpu_per_gbps_ms = 5.0;
  cost.burst_probability = 0.0;
  MonitorAgent agent("a", cost, 1000);
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  // 20 Gbps → 10 + 5*20 = 110 core-ms.
  EXPECT_NEAR(agent.sample(snapshot_at(0, 20000.0), db, rng), 110.0, 1e-9);
  // 0 traffic → base only.
  EXPECT_NEAR(agent.sample(snapshot_at(1000, 0.0), db, rng), 10.0, 1e-9);
}

TEST(MonitorAgent, BurstMultiplies) {
  AgentCostModel cost;
  cost.cpu_base_ms = 10.0;
  cost.cpu_per_gbps_ms = 0.0;
  cost.burst_probability = 1.0;  // always burst
  cost.burst_multiplier = 4.0;
  MonitorAgent agent("a", cost, 1000);
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  EXPECT_NEAR(agent.sample(snapshot_at(0), db, rng), 40.0, 1e-9);
}

TEST(MonitorAgent, RxTxAgentReadsTrafficFields) {
  MonitorAgent agent("interface.rxtx.rates", {}, 1000);
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  DeviceSnapshot snap = snapshot_at(0);
  snap.rx_mbps = 1234.0;
  snap.tx_mbps = 567.0;
  agent.sample(snap, db, rng);
  EXPECT_DOUBLE_EQ(
      db.query(*db.find("interface.rxtx.rates.value"), 0, 1)[0].value, 1234.0);
  EXPECT_DOUBLE_EQ(
      db.query(*db.find("interface.rxtx.rates.aux"), 0, 1)[0].value, 567.0);
}

TEST(MonitorAgent, SamplesTakenCounter) {
  MonitorAgent agent("a", {}, 1000);
  Tsdb db;
  agent.bind(db);
  util::Rng rng(1);
  EXPECT_EQ(agent.samples_taken(), 0u);
  agent.sample(snapshot_at(0), db, rng);
  agent.sample(snapshot_at(1000), db, rng);
  EXPECT_EQ(agent.samples_taken(), 2u);
}

TEST(StandardAgents, TenAgentsAsInPaper) {
  const auto agents = standard_agents();
  EXPECT_EQ(agents.size(), 10u);
}

TEST(StandardAgents, CalibrationTotals) {
  // The Fig. 1 / Fig. 6 calibration depends on these aggregate costs
  // (see agent.cpp): base ~80 core-ms/tick, ~60 core-ms per Gbps, and
  // ~1.28 GiB of agent memory.
  const auto agents = standard_agents();
  double base = 0, per_gbps = 0, memory = 0;
  for (const auto& agent : agents) {
    base += agent.cost_model().cpu_base_ms;
    per_gbps += agent.cost_model().cpu_per_gbps_ms;
    memory += agent.memory_mib();
  }
  EXPECT_NEAR(base, 80.0, 1e-9);
  EXPECT_NEAR(per_gbps, 60.0, 1e-9);
  EXPECT_NEAR(memory, 1280.0, 1e-9);
}

TEST(StandardAgents, AtTwentyGbpsAverageAboutOneCore) {
  // Deterministic expectation ignoring bursts: (80 + 60*20) ms per 1000 ms
  // tick = 1.28 cores — the "around 100%" of Fig. 1.
  const auto agents = standard_agents();
  double total_ms = 0;
  for (const auto& agent : agents)
    total_ms +=
        agent.cost_model().cpu_base_ms + agent.cost_model().cpu_per_gbps_ms * 20;
  EXPECT_NEAR(total_ms / 1000.0, 1.28, 1e-9);
}

TEST(StandardAgents, UniqueNames) {
  const auto agents = standard_agents();
  std::set<std::string> names;
  for (const auto& agent : agents) names.insert(agent.name());
  EXPECT_EQ(names.size(), agents.size());
}

}  // namespace
}  // namespace dust::telemetry
