#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb random_fat_tree_nmdb(std::uint32_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  return Nmdb(std::move(state), Thresholds{});
}

TEST(Optimizer, BackendNames) {
  EXPECT_STREQ(to_string(SolverBackend::kTransportation), "transportation");
  EXPECT_STREQ(to_string(SolverBackend::kSimplex), "simplex");
  EXPECT_STREQ(to_string(SolverBackend::kMinCostFlow), "min-cost-flow");
  EXPECT_STREQ(to_string(SolverBackend::kBranchAndBound), "branch-and-bound");
}

TEST(Optimizer, NothingToOffloadIsOptimalEmpty) {
  net::NetworkState state(graph::make_ring(4));
  for (graph::NodeId v = 0; v < 4; ++v) state.set_node_utilization(v, 50.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_TRUE(r.optimal());
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Optimizer, InfeasibleWhenSpareTooSmall) {
  net::NetworkState state(graph::make_ring(3));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_node_utilization(2, 70.0);  // neutral
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_EQ(r.status, solver::Status::kInfeasible);
}

TEST(Optimizer, PartialModeShipsWhatFits) {
  net::NetworkState state(graph::make_ring(3));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_node_utilization(2, 70.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  EXPECT_TRUE(r.optimal());
  EXPECT_NEAR(r.offloaded_total(), 5.0, 1e-9);
  EXPECT_NEAR(r.unplaced, 10.0, 1e-9);
}

TEST(Optimizer, MaxHopUnreachabilityCausesInfeasible) {
  // Busy node whose only candidates are 2+ hops away, with max_hops = 1.
  net::NetworkState state(graph::make_ring(5));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 70.0);
  state.set_node_utilization(4, 70.0);  // both neighbours neutral
  state.set_node_utilization(2, 40.0);  // candidate 2 hops away
  state.set_node_utilization(3, 40.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.placement.max_hops = 1;
  EXPECT_EQ(OptimizationEngine(options).run(nmdb).status,
            solver::Status::kInfeasible);
  options.placement.max_hops = 2;
  EXPECT_TRUE(OptimizationEngine(options).run(nmdb).optimal());
}

class BackendAgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: all four exact backends return the same objective, and their
// solutions satisfy every placement constraint.
TEST_P(BackendAgreementSweep, AllBackendsAgreeAndFeasible) {
  Nmdb nmdb = random_fat_tree_nmdb(4, GetParam());
  PlacementOptions placement;
  placement.max_hops = 6;
  const PlacementProblem problem = build_placement_problem(nmdb, placement);
  if (problem.total_excess() > problem.total_spare()) GTEST_SKIP();

  double reference = -1.0;
  for (SolverBackend backend :
       {SolverBackend::kTransportation, SolverBackend::kSimplex,
        SolverBackend::kMinCostFlow, SolverBackend::kBranchAndBound}) {
    OptimizerOptions options;
    options.backend = backend;
    const PlacementResult r = OptimizationEngine(options).solve(problem);
    ASSERT_TRUE(r.optimal()) << to_string(backend);
    EXPECT_LT(placement_violation(problem, r), 1e-6) << to_string(backend);
    if (reference < 0)
      reference = r.objective;
    else
      EXPECT_NEAR(r.objective, reference, 1e-5 * (1.0 + reference))
          << to_string(backend);
  }
}

// Property: the exact optimum never exceeds the heuristic objective when the
// heuristic fully places everything (both solve the same model).
TEST_P(BackendAgreementSweep, OptimalNeverWorseThanCompleteHeuristic) {
  Nmdb nmdb = random_fat_tree_nmdb(4, GetParam() ^ 0xbeef);
  const HeuristicResult h = HeuristicEngine().run(nmdb);
  if (!h.complete() || h.busy_count == 0) GTEST_SKIP();
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_LE(r.objective, h.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendAgreementSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

TEST(Optimizer, RunMeasuresBuildAndSolveTimes) {
  Nmdb nmdb = random_fat_tree_nmdb(4, 99);
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_GE(r.build_seconds, 0.0);
  EXPECT_GE(r.solve_seconds, 0.0);
}

TEST(Optimizer, AssignmentsReferenceRealNodes) {
  Nmdb nmdb = random_fat_tree_nmdb(8, 5);
  OptimizerOptions options;
  options.placement.max_hops = 4;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  const auto busy = nmdb.busy_nodes();
  const auto candidates = nmdb.candidate_nodes();
  for (const Assignment& a : r.assignments) {
    EXPECT_NE(std::find(busy.begin(), busy.end(), a.from), busy.end());
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), a.to),
              candidates.end());
    EXPECT_GT(a.amount, 0.0);
    EXPECT_GE(a.trmin_seconds, 0.0);
  }
}

TEST(Optimizer, FlexibleOffloadingSplitsAcrossDestinations) {
  // One very busy node, several small candidates: the solution must split
  // (the paper's "one busy node to multiple destinations" flexibility).
  net::NetworkState state(graph::make_star(4));
  state.set_node_utilization(0, 98.0);  // hub busy: Cs = 18
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf)
    state.set_node_utilization(leaf, 55.0);  // Cd = 5 each
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_GE(r.assignments.size(), 4u);  // needs >= ceil(18/5) destinations
  EXPECT_NEAR(r.offloaded_total(), 18.0, 1e-9);
}

TEST(Optimizer, MultipleBusyShareOneDestination) {
  net::NetworkState state(graph::make_star(2));
  state.set_node_utilization(1, 90.0);  // Cs = 10
  state.set_node_utilization(2, 85.0);  // Cs = 5
  state.set_node_utilization(0, 40.0);  // hub: Cd = 20
  state.set_monitoring_data_mb(1, 10.0);
  state.set_monitoring_data_mb(2, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.absorbed_by(0), 15.0, 1e-9);
}

}  // namespace
}  // namespace dust::core
