#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb random_fat_tree_nmdb(std::uint32_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  return Nmdb(std::move(state), Thresholds{});
}

TEST(Optimizer, BackendNames) {
  EXPECT_STREQ(to_string(SolverBackend::kTransportation), "transportation");
  EXPECT_STREQ(to_string(SolverBackend::kSimplex), "simplex");
  EXPECT_STREQ(to_string(SolverBackend::kMinCostFlow), "min-cost-flow");
  EXPECT_STREQ(to_string(SolverBackend::kBranchAndBound), "branch-and-bound");
}

TEST(Optimizer, NothingToOffloadIsOptimalEmpty) {
  net::NetworkState state(graph::make_ring(4));
  for (graph::NodeId v = 0; v < 4; ++v) state.set_node_utilization(v, 50.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_TRUE(r.optimal());
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Optimizer, InfeasibleWhenSpareTooSmall) {
  net::NetworkState state(graph::make_ring(3));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_node_utilization(2, 70.0);  // neutral
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_EQ(r.status, solver::Status::kInfeasible);
}

TEST(Optimizer, PartialModeShipsWhatFits) {
  net::NetworkState state(graph::make_ring(3));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_node_utilization(2, 70.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  EXPECT_TRUE(r.optimal());
  EXPECT_NEAR(r.offloaded_total(), 5.0, 1e-9);
  EXPECT_NEAR(r.unplaced, 10.0, 1e-9);
}

TEST(Optimizer, MaxHopUnreachabilityCausesInfeasible) {
  // Busy node whose only candidates are 2+ hops away, with max_hops = 1.
  net::NetworkState state(graph::make_ring(5));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 70.0);
  state.set_node_utilization(4, 70.0);  // both neighbours neutral
  state.set_node_utilization(2, 40.0);  // candidate 2 hops away
  state.set_node_utilization(3, 40.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.placement.max_hops = 1;
  EXPECT_EQ(OptimizationEngine(options).run(nmdb).status,
            solver::Status::kInfeasible);
  options.placement.max_hops = 2;
  EXPECT_TRUE(OptimizationEngine(options).run(nmdb).optimal());
}

class BackendAgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: all four exact backends return the same objective, and their
// solutions satisfy every placement constraint.
TEST_P(BackendAgreementSweep, AllBackendsAgreeAndFeasible) {
  Nmdb nmdb = random_fat_tree_nmdb(4, GetParam());
  PlacementOptions placement;
  placement.max_hops = 6;
  const PlacementProblem problem = build_placement_problem(nmdb, placement);
  if (problem.total_excess() > problem.total_spare()) GTEST_SKIP();

  double reference = -1.0;
  for (SolverBackend backend :
       {SolverBackend::kTransportation, SolverBackend::kSimplex,
        SolverBackend::kMinCostFlow, SolverBackend::kBranchAndBound}) {
    OptimizerOptions options;
    options.backend = backend;
    const PlacementResult r = OptimizationEngine(options).solve(problem);
    ASSERT_TRUE(r.optimal()) << to_string(backend);
    EXPECT_LT(placement_violation(problem, r), 1e-6) << to_string(backend);
    if (reference < 0)
      reference = r.objective;
    else
      EXPECT_NEAR(r.objective, reference, 1e-5 * (1.0 + reference))
          << to_string(backend);
  }
}

// Property: the exact optimum never exceeds the heuristic objective when the
// heuristic fully places everything (both solve the same model).
TEST_P(BackendAgreementSweep, OptimalNeverWorseThanCompleteHeuristic) {
  Nmdb nmdb = random_fat_tree_nmdb(4, GetParam() ^ 0xbeef);
  const HeuristicResult h = HeuristicEngine().run(nmdb);
  if (!h.complete() || h.busy_count == 0) GTEST_SKIP();
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_LE(r.objective, h.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendAgreementSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

TEST(Optimizer, RunMeasuresBuildAndSolveTimes) {
  Nmdb nmdb = random_fat_tree_nmdb(4, 99);
  const PlacementResult r = OptimizationEngine().run(nmdb);
  EXPECT_GE(r.build_seconds, 0.0);
  EXPECT_GE(r.solve_seconds, 0.0);
}

TEST(Optimizer, AssignmentsReferenceRealNodes) {
  Nmdb nmdb = random_fat_tree_nmdb(8, 5);
  OptimizerOptions options;
  options.placement.max_hops = 4;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  const auto busy = nmdb.busy_nodes();
  const auto candidates = nmdb.candidate_nodes();
  for (const Assignment& a : r.assignments) {
    EXPECT_NE(std::find(busy.begin(), busy.end(), a.from), busy.end());
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), a.to),
              candidates.end());
    EXPECT_GT(a.amount, 0.0);
    EXPECT_GE(a.trmin_seconds, 0.0);
  }
}

TEST(Optimizer, FlexibleOffloadingSplitsAcrossDestinations) {
  // One very busy node, several small candidates: the solution must split
  // (the paper's "one busy node to multiple destinations" flexibility).
  net::NetworkState state(graph::make_star(4));
  state.set_node_utilization(0, 98.0);  // hub busy: Cs = 18
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf)
    state.set_node_utilization(leaf, 55.0);  // Cd = 5 each
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_GE(r.assignments.size(), 4u);  // needs >= ceil(18/5) destinations
  EXPECT_NEAR(r.offloaded_total(), 18.0, 1e-9);
}

// Warm starts may change the solver's pivot path but never the optimum: a
// stateful warm engine tracking a slowly drifting problem must stay
// objective-identical to a fresh cold engine on every cycle.
TEST(Optimizer, WarmStartMatchesColdAcrossPerturbedCycles) {
  util::Rng rng(2024);
  Nmdb nmdb = random_fat_tree_nmdb(4, 77);
  PlacementOptions placement;
  placement.max_hops = 6;
  PlacementProblem problem = build_placement_problem(nmdb, placement);
  if (problem.total_excess() > problem.total_spare()) GTEST_SKIP();

  OptimizerOptions warm_options;
  warm_options.warm_start = true;
  warm_options.verify_warm_start = true;  // internal cross-check every cycle
  const OptimizationEngine warm_engine(warm_options);
  const OptimizationEngine cold_engine;

  for (int cycle = 0; cycle < 12; ++cycle) {
    const PlacementResult w = warm_engine.solve(problem);
    const PlacementResult c = cold_engine.solve(problem);
    ASSERT_EQ(w.status, c.status) << "cycle " << cycle;
    if (c.optimal()) {
      EXPECT_NEAR(w.objective, c.objective, 1e-6 * (1.0 + c.objective))
          << "cycle " << cycle;
      EXPECT_LT(placement_violation(problem, w), 1e-6);
    }
    // Drift the costs slightly (same busy/candidate shape) — the realistic
    // steady state the warm path is built for.
    for (double& cost : problem.trmin)
      if (cost != solver::kInfinity) cost *= rng.uniform(0.95, 1.05);
  }
  EXPECT_GT(warm_engine.warm_solves(), 0u);
  EXPECT_EQ(warm_engine.cold_solves(), 1u);  // only the very first cycle
}

TEST(Optimizer, WarmStateDroppedOnShapeChange) {
  PlacementProblem p;
  p.busy = {0, 1};
  p.candidates = {2, 3};
  p.cs = {5.0, 5.0};
  p.cd = {6.0, 6.0};
  p.trmin = {1.0, 2.0, 2.0, 1.0};

  OptimizerOptions options;
  options.warm_start = true;
  const OptimizationEngine engine(options);
  const double reference = engine.solve(p).objective;  // cold (no state yet)
  EXPECT_DOUBLE_EQ(engine.solve(p).objective, reference);  // warm
  PlacementProblem shrunk = p;
  shrunk.busy = {0};
  shrunk.cs = {5.0};
  shrunk.trmin = {1.0, 2.0};
  EXPECT_TRUE(engine.solve(shrunk).optimal());  // cold: shape changed
  EXPECT_EQ(engine.cold_solves(), 2u);
  EXPECT_EQ(engine.warm_solves(), 1u);
  engine.reset_warm_state();
  EXPECT_TRUE(engine.solve(shrunk).optimal());
  EXPECT_EQ(engine.cold_solves(), 3u);  // reset forces another cold solve
}

// Mid-churn the busy set can empty entirely (every node released below
// Cmax). A warm engine must treat that as a trivially optimal no-op cycle,
// invalidate its warm state (the saved basis describes a shape that no
// longer exists), and then solve the next non-empty cycle correctly cold.
TEST(Optimizer, WarmStateSurvivesBusySetEmptyingMidChurn) {
  PlacementProblem p;
  p.busy = {0, 1};
  p.candidates = {2, 3};
  p.cs = {5.0, 5.0};
  p.cd = {6.0, 6.0};
  p.trmin = {1.0, 2.0, 2.0, 1.0};

  OptimizerOptions options;
  options.warm_start = true;
  options.verify_warm_start = true;
  const OptimizationEngine engine(options);
  const PlacementResult first = engine.solve(p);
  ASSERT_TRUE(first.optimal());

  PlacementProblem idle;  // churn released both busy nodes
  idle.candidates = {2, 3};
  idle.cd = {6.0, 6.0};
  const PlacementResult empty_cycle = engine.solve(idle);
  EXPECT_EQ(empty_cycle.status, solver::Status::kOptimal);
  EXPECT_TRUE(empty_cycle.assignments.empty());
  EXPECT_DOUBLE_EQ(empty_cycle.objective, 0.0);
  EXPECT_DOUBLE_EQ(empty_cycle.unplaced, 0.0);

  // Back to the original problem: the stale basis must not be reused.
  const PlacementResult again = engine.solve(p);
  ASSERT_TRUE(again.optimal());
  EXPECT_DOUBLE_EQ(again.objective, first.objective);
  EXPECT_EQ(engine.warm_solves(), 0u);  // both real solves were cold
  EXPECT_EQ(engine.cold_solves(), 2u);  // and the empty cycle was neither

  // Steady state resumes: an identical re-solve takes the warm path again.
  const PlacementResult warm = engine.solve(p);
  EXPECT_DOUBLE_EQ(warm.objective, first.objective);
  EXPECT_EQ(engine.warm_solves(), 1u);
}

TEST(Optimizer, MultipleBusyShareOneDestination) {
  net::NetworkState state(graph::make_star(2));
  state.set_node_utilization(1, 90.0);  // Cs = 10
  state.set_node_utilization(2, 85.0);  // Cs = 5
  state.set_node_utilization(0, 40.0);  // hub: Cd = 20
  state.set_monitoring_data_mb(1, 10.0);
  state.set_monitoring_data_mb(2, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.absorbed_by(0), 15.0, 1e-9);
}

}  // namespace
}  // namespace dust::core
