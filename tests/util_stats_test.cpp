#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dust::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentile, Median) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{10, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 12.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
}

TEST(Percentile, OutOfRangeThrows) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(MeanStddev, Basic) {
  const std::vector<double> v{2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecovers) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(2.0 + 0.5 * i + rng.normal(0.0, 0.1));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, DegenerateThrows) {
  const std::vector<double> x{1, 1};
  const std::vector<double> y{2, 3};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
}

TEST(LinearFit, TooFewThrows) {
  const std::vector<double> x{1};
  const std::vector<double> y{2};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
}

TEST(PowerFit, ExactPowerLaw) {
  // y = 3 x^{-0.5} — the shape the paper fits to HFR vs scale (Fig. 11a).
  std::vector<double> x, y;
  for (double v : {4.0, 8.0, 16.0, 64.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -0.5));
  }
  const PowerFit fit = power_fit(x, y);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.exponent, -0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerFit, RejectsNonPositive) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1, 0};
  EXPECT_THROW(power_fit(x, y), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3.0);  // clamps to 0
  h.add(42.0);  // clamps to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(2), 6.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(7.0, 5.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace dust::util
