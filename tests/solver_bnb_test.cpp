#include "solver/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dust::solver {
namespace {

TEST(BranchAndBound, PureLpDelegatesToSimplex) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 2.5);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 2.5, 1e-9);  // fractional OK: no integer vars
}

TEST(BranchAndBound, RoundsDownSingleInteger) {
  // max x (min -x), x integer, x <= 2.5 → 2.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0, /*integer=*/true);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 2.5);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(BranchAndBound, SmallKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, binary.
  // Optimum: a=1, b=0, c=... a+c: 5+3=8 > 7 no; a alone 10; a+b: 9 <=7? 5+4=9>7.
  // b+c: 6+4=10 weight 7 <= 7 → value 10. So optimum 10 via {b,c} (or {a}).
  LinearProgram lp;
  const auto a = lp.add_variable(0, 1, -10.0, true);
  const auto b = lp.add_variable(0, 1, -6.0, true);
  const auto c = lp.add_variable(0, 1, -4.0, true);
  lp.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLessEqual, 2.0);
  lp.add_constraint({{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLessEqual, 7.0);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-6);
}

TEST(BranchAndBound, IntegerInfeasible) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0, true);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 0.4);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 0.6);
  EXPECT_EQ(solve_branch_and_bound(lp).status, Status::kInfeasible);
}

TEST(BranchAndBound, LpInfeasiblePropagates) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0, true);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, -1.0);
  EXPECT_EQ(solve_branch_and_bound(lp).status, Status::kInfeasible);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min -x - y, x integer <= 1.5, y continuous <= 1.5, x + y <= 2.4
  // → x = 1, y = 1.4 (obj -2.4) beats x=1.5? x integer so x∈{0,1}.
  LinearProgram lp;
  const auto x = lp.add_variable(0, 1.5, -1.0, true);
  const auto y = lp.add_variable(0, 1.5, -1.0, false);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 2.4);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-6);
  EXPECT_NEAR(s.values[y], 1.4, 1e-6);
}

TEST(BranchAndBound, IntegralRelaxationNeedsNoBranching) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0, true);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 3.0);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
  EXPECT_EQ(s.iterations, 1u);  // root node only
}

TEST(BranchAndBound, EqualityWithIntegers) {
  // 2x + 3y = 12, x,y >= 0 integer, min x + y → (3, 2) obj 5 or (0,4) obj 4.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0, true);
  const auto y = lp.add_variable(0, kInfinity, 1.0, true);
  lp.add_constraint({{x, 2.0}, {y, 3.0}}, Sense::kEqual, 12.0);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  EXPECT_NEAR(s.values[y], 4.0, 1e-6);
}

class BnbExhaustiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: B&B matches brute-force enumeration on small bounded integer
// programs with positive constraint coefficients.
TEST_P(BnbExhaustiveSweep, MatchesBruteForce) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    constexpr int kVars = 3;
    constexpr int kBound = 4;  // x in {0..4}
    LinearProgram lp;
    std::vector<double> costs;
    for (int v = 0; v < kVars; ++v) {
      costs.push_back(rng.uniform(-3.0, 3.0));
      lp.add_variable(0, kBound, costs.back(), true);
    }
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int c = 0; c < 2; ++c) {
      auto& row = rows.emplace_back();
      std::vector<std::pair<std::size_t, double>> terms;
      for (int v = 0; v < kVars; ++v) {
        row.push_back(rng.uniform(0.2, 2.0));
        terms.emplace_back(v, row.back());
      }
      rhs.push_back(rng.uniform(2.0, 8.0));
      lp.add_constraint(std::move(terms), Sense::kLessEqual, rhs.back());
    }
    // Brute force over 5^3 = 125 points.
    double best = kInfinity;
    for (int a = 0; a <= kBound; ++a)
      for (int b = 0; b <= kBound; ++b)
        for (int c = 0; c <= kBound; ++c) {
          const double x[3] = {double(a), double(b), double(c)};
          bool ok = true;
          for (std::size_t r = 0; r < rows.size(); ++r) {
            double lhs = 0;
            for (int v = 0; v < kVars; ++v) lhs += rows[r][v] * x[v];
            if (lhs > rhs[r] + 1e-9) ok = false;
          }
          if (!ok) continue;
          double obj = 0;
          for (int v = 0; v < kVars; ++v) obj += costs[v] * x[v];
          best = std::min(best, obj);
        }
    const Solution s = solve_branch_and_bound(lp);
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
    for (int v = 0; v < kVars; ++v) {
      EXPECT_NEAR(s.values[v], std::round(s.values[v]), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbExhaustiveSweep,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

}  // namespace
}  // namespace dust::solver
