// End-to-end causal tracing (DESIGN.md §10): run the Fig. 4 scenario over
// the simulated transport and check that one offload reconstructs as one
// causally linked span tree — STAT roots the trace, the solver and
// Offload-Request hang under it, the busy node's ACK joins it, and a REP
// after destination death extends the same chain. Also the failure side:
// a partition-dropped Offload-Request leaves the trace visibly truncated
// at the msg_drop flight event, and a retransmitted request (same
// request_id, same trace) repairs the chain without starting a new trace.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dust {
namespace {

/// The paper's illustrative 7-node network (Fig. 4): busy switch S1 (node 0),
/// offload candidates S2 (1) and S6 (5), relays in between.
net::NetworkState make_fig4_state() {
  graph::Graph g(7);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 6);
  g.add_edge(3, 5);
  net::NetworkState state(std::move(g));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net::LinkState{.bandwidth_mbps = 10000.0,
                                     .utilization = 0.5});
  state.set_node_utilization(0, 93.0);
  state.set_node_utilization(1, 42.0);
  state.set_node_utilization(5, 52.0);
  for (graph::NodeId v : {2u, 3u, 4u, 6u}) state.set_node_utilization(v, 70.0);
  state.set_monitoring_data_mb(0, 80.0);
  return state;
}

struct Fig4Trace : ::testing::Test {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  std::unique_ptr<core::DustManager> manager;
  std::vector<std::unique_ptr<core::DustClient>> clients;

  void SetUp() override {
    obs::set_enabled(true);
    obs::MetricRegistry::global().reset();
    obs::FlightRecorder::global().clear();
    obs::reset_trace_ids();
  }

  void boot(core::ManagerConfig config) {
    manager = std::make_unique<core::DustManager>(
        sim, transport, core::Nmdb(make_fig4_state(), core::Thresholds{}),
        config);
    for (graph::NodeId v = 0; v < 7; ++v) {
      clients.push_back(std::make_unique<core::DustClient>(
          sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 1000},
          util::Rng(100 + v)));
    }
    clients[0]->set_reported_state(93.0, 80.0, 10);
    clients[1]->set_reported_state(42.0, 5.0, 10);
    clients[5]->set_reported_state(52.0, 5.0, 10);
    for (graph::NodeId v : {2u, 3u, 4u, 6u})
      clients[v]->set_reported_state(70.0, 5.0, 10);
    for (auto& client : clients) client->start();
    manager->start();
  }

  static core::ManagerConfig fast_config() {
    core::ManagerConfig config;
    config.update_interval_ms = 1000;
    config.placement_period_ms = 5000;
    config.keepalive_timeout_ms = 4000;
    config.keepalive_check_period_ms = 1000;
    return config;
  }

  /// The first assembled trace containing an offload_request span — the
  /// first placement cycle's chain (traces come back oldest-root first).
  static const obs::TraceTree* offload_trace(
      const std::vector<obs::TraceTree>& traces) {
    for (const obs::TraceTree& trace : traces)
      if (trace.find("offload_request") != nullptr) return &trace;
    return nullptr;
  }
};

TEST_F(Fig4Trace, SingleOffloadReconstructsAsOneCausalChain) {
  boot(fast_config());
  sim.run_until(12000);
  ASSERT_GE(manager->active_offload_count(), 1u);

  const obs::RegistrySnapshot scrape =
      obs::MetricRegistry::global().snapshot();
  const std::vector<obs::TraceTree> traces = obs::assemble_traces(scrape);
  const obs::TraceTree* trace = offload_trace(traces);
  ASSERT_NE(trace, nullptr);

  // The full protocol chain, causally linked root to tip.
  EXPECT_EQ(trace->chain().substr(0, 38),
            "stat>solve>offload_request>offload_ack");

  const obs::SpanRecord* stat = trace->find("stat");
  const obs::SpanRecord* solve = trace->find("solve");
  const obs::SpanRecord* request = trace->find("offload_request");
  const obs::SpanRecord* ack = trace->find("offload_ack");
  const obs::SpanRecord* transfer = trace->find("agent_transfer");
  ASSERT_NE(stat, nullptr);
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(request, nullptr);
  ASSERT_NE(ack, nullptr);
  ASSERT_NE(transfer, nullptr);

  // Parent links cross the layers exactly once each.
  EXPECT_EQ(stat->parent_span_id, 0u);
  EXPECT_EQ(stat->trace_id, stat->span_id);  // the STAT rooted the trace
  EXPECT_EQ(solve->parent_span_id, stat->span_id);
  EXPECT_EQ(request->parent_span_id, solve->span_id);
  EXPECT_EQ(ack->parent_span_id, request->span_id);
  EXPECT_EQ(transfer->parent_span_id, request->span_id);

  // Tracks place each hop on the right timeline row.
  EXPECT_EQ(stat->track, "client-0");
  EXPECT_EQ(ack->track, "client-0");
  EXPECT_EQ(solve->track, "manager");
  EXPECT_EQ(request->track, "manager");

  // Sim-time ordering along the chain is monotone.
  EXPECT_LE(stat->sim_start_ms, solve->sim_start_ms);
  EXPECT_LE(request->sim_start_ms, ack->sim_start_ms);

  // The Perfetto export carries the same story: per-track processes, the
  // chain's complete events, and flow arrows between parent and child.
  std::ostringstream os;
  obs::write_perfetto(scrape, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"manager\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client-0\""), std::string::npos);
  for (const char* name : {"stat", "solve", "offload_request", "offload_ack"})
    EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST_F(Fig4Trace, RepAfterDestinationDeathExtendsTheSameChain) {
  boot(fast_config());
  // Give the standby candidate real headroom below COmax (60): whichever of
  // the two candidates hosts first, the survivor can absorb the ~13% excess
  // when the host dies (52% would leave only 8% spare — no replica).
  clients[5]->set_reported_state(30.0, 5.0, 10);
  sim.run_until(12000);
  ASSERT_GE(manager->active_offload_count(), 1u);
  const std::vector<graph::NodeId> hosts = clients[0]->hosting_destinations();
  ASSERT_FALSE(hosts.empty());
  clients[hosts.front()]->set_failed(true);
  sim.run_until(24000);  // keepalive timeout + REP + replacement ACK
  ASSERT_GE(clients[0]->reps_received(), 1u);

  const obs::RegistrySnapshot scrape =
      obs::MetricRegistry::global().snapshot();
  const std::vector<obs::TraceTree> traces = obs::assemble_traces(scrape);
  const obs::TraceTree* with_rep = nullptr;
  for (const obs::TraceTree& trace : traces)
    if (trace.find("rep") != nullptr) with_rep = &trace;
  ASSERT_NE(with_rep, nullptr);

  // The REP extends the original offload chain: it is parented under the
  // busy node's offload_ack (the chain tip when the ACK arrived), and the
  // client's replacement offload_ack joins below it — one trace end to end.
  const obs::SpanRecord* rep = with_rep->find("rep");
  ASSERT_NE(rep, nullptr);
  EXPECT_NE(with_rep->find("offload_request"), nullptr);
  EXPECT_NE(with_rep->find("stat"), nullptr);
  const obs::SpanRecord* rep_parent = nullptr;
  const obs::SpanRecord* rep_child_ack = nullptr;
  for (const obs::SpanRecord& span : with_rep->spans) {
    if (span.span_id == rep->parent_span_id) rep_parent = &span;
    if (span.parent_span_id == rep->span_id && span.name == "offload_ack")
      rep_child_ack = &span;
  }
  ASSERT_NE(rep_parent, nullptr);
  EXPECT_EQ(rep_parent->name, "offload_ack");
  ASSERT_NE(rep_child_ack, nullptr);
  EXPECT_EQ(rep_child_ack->track, "client-0");

  // The flight recorder saw the same story as discrete events.
  bool saw_failure = false;
  bool saw_substitution = false;
  for (const obs::FlightEvent& event :
       obs::FlightRecorder::global().snapshot()) {
    if (event.kind == obs::FlightEventKind::kKeepaliveFailure)
      saw_failure = true;
    if (event.kind == obs::FlightEventKind::kReplicaSubstitution)
      saw_substitution = true;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_substitution);
}

TEST_F(Fig4Trace, DroppedOffloadRequestTruncatesTheTraceAtTheDropEvent) {
  boot(fast_config());  // offload_request_retry_ms = 0: no recovery
  // Partition the busy node before the first placement cycle (t=5000): the
  // Offload-Request to it is dropped, so no ACK ever joins the trace.
  sim.schedule_at(2000, [this] {
    transport.set_partitioned(core::client_endpoint(0), true);
  });
  sim.schedule_at(7000, [this] {
    transport.set_partitioned(core::client_endpoint(0), false);
  });
  sim.run_until(9000);

  const obs::RegistrySnapshot scrape =
      obs::MetricRegistry::global().snapshot();
  const std::vector<obs::TraceTree> traces = obs::assemble_traces(scrape);
  const obs::TraceTree* trace = offload_trace(traces);
  ASSERT_NE(trace, nullptr);

  // Visibly truncated: request recorded, nothing below it.
  EXPECT_NE(trace->find("offload_request"), nullptr);
  EXPECT_EQ(trace->find("offload_ack"), nullptr);
  EXPECT_EQ(trace->find("agent_transfer"), nullptr);
  EXPECT_EQ(trace->chain(), "stat>solve>offload_request");

  // The drop itself is on the flight-recorder timeline, tagged with the
  // same trace id and the partition cause.
  bool saw_drop = false;
  for (const obs::FlightEvent& event :
       obs::FlightRecorder::global().snapshot())
    if (event.kind == obs::FlightEventKind::kMessageDrop &&
        event.trace_id == trace->trace_id &&
        std::string(event.detail).find("partition: offload_request") == 0)
      saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

TEST_F(Fig4Trace, RetransmittedRequestJoinsTheSameTrace) {
  core::ManagerConfig config = fast_config();
  config.offload_request_retry_ms = 1500;
  boot(config);
  sim.schedule_at(2000, [this] {
    transport.set_partitioned(core::client_endpoint(0), true);
  });
  sim.schedule_at(7000, [this] {
    transport.set_partitioned(core::client_endpoint(0), false);
  });
  sim.run_until(12000);

  const obs::RegistrySnapshot scrape =
      obs::MetricRegistry::global().snapshot();
  const std::vector<obs::TraceTree> traces = obs::assemble_traces(scrape);
  const obs::TraceTree* trace = offload_trace(traces);
  ASSERT_NE(trace, nullptr);

  // The retry re-sent the same request_id with the same trace, so the
  // recovered ACK repaired the original chain — no second trace appeared.
  const obs::SpanRecord* request = trace->find("offload_request");
  const obs::SpanRecord* ack = trace->find("offload_ack");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->parent_span_id, request->span_id);
  EXPECT_EQ(trace->chain().substr(0, 38),
            "stat>solve>offload_request>offload_ack");

  // Flight recorder: the drop, then the retransmit, on the same trace.
  bool saw_drop = false;
  bool saw_retransmit = false;
  for (const obs::FlightEvent& event :
       obs::FlightRecorder::global().snapshot()) {
    if (event.kind == obs::FlightEventKind::kMessageDrop &&
        event.trace_id == trace->trace_id)
      saw_drop = true;
    if (event.kind == obs::FlightEventKind::kRetransmit &&
        event.trace_id == trace->trace_id)
      saw_retransmit = true;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_retransmit);

  // And the relationship itself converged.
  bool acknowledged = false;
  for (const core::ActiveOffload& offload : manager->active_offloads())
    if (offload.acknowledged) acknowledged = true;
  EXPECT_TRUE(acknowledged);
}

}  // namespace
}  // namespace dust
