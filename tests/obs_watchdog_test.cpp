// Health watchdog rules (obs/watchdog.hpp) against a local registry with
// hand-fed metrics: each rule in isolation, baseline behaviour, priming,
// and the alert side-channels (counters + flight recorder).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace dust::obs {
namespace {

struct WatchdogTest : ::testing::Test {
  MetricRegistry registry;
  void SetUp() override { set_enabled(true); }

  WatchdogConfig tight() {
    WatchdogConfig config;
    config.latency_regression_factor = 2.0;
    config.min_latency_samples = 3;
    config.hfr_spike_percent = 50.0;
    config.staleness_limit_ms = 1000.0;
    return config;
  }

  void observe_solves(double ms, int n) {
    Histogram& hist = registry.histogram("dust_core_placement_solve_ms");
    for (int i = 0; i < n; ++i) hist.observe(ms);
  }
};

TEST_F(WatchdogTest, FirstEvaluationOnlyPrimesTheWindows) {
  Watchdog dog(registry, tight());
  observe_solves(1000.0, 5);
  registry.gauge("dust_core_hfr_percent").set(99.0);
  EXPECT_TRUE(dog.evaluate().empty());  // priming, never alerts
  EXPECT_EQ(dog.alerts_raised(), 0u);
}

TEST_F(WatchdogTest, LatencyRegressionFiresAgainstRollingBaseline) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime

  // Healthy window seeds the baseline near 10 ms.
  observe_solves(10.0, 4);
  EXPECT_TRUE(dog.evaluate().empty());
  EXPECT_NEAR(dog.latency_baseline_ms(), 10.0, 1e-9);

  // 5x regression: fires, and must NOT drag the baseline up.
  observe_solves(50.0, 4);
  std::vector<Alert> alerts = dog.evaluate(7000);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "placement-latency-regression");
  EXPECT_NEAR(alerts[0].value, 50.0, 1e-9);
  EXPECT_EQ(alerts[0].sim_ms, 7000);
  EXPECT_NEAR(dog.latency_baseline_ms(), 10.0, 1e-9);

  // Back to healthy: no alert, baseline moves by the EWMA only.
  observe_solves(12.0, 4);
  EXPECT_TRUE(dog.evaluate().empty());
  EXPECT_GT(dog.latency_baseline_ms(), 10.0);
  EXPECT_LT(dog.latency_baseline_ms(), 12.0);
}

TEST_F(WatchdogTest, SparseWindowsNeitherAlertNorMoveTheBaseline) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  observe_solves(10.0, 4);
  (void)dog.evaluate();  // baseline = 10
  observe_solves(500.0, 2);  // below min_latency_samples = 3
  EXPECT_TRUE(dog.evaluate().empty());
  EXPECT_NEAR(dog.latency_baseline_ms(), 10.0, 1e-9);
}

TEST_F(WatchdogTest, HfrSpikeReadsTheHeuristicFailureGauge) {
  Watchdog dog(registry, tight());
  registry.gauge("dust_core_hfr_percent").set(30.0);
  (void)dog.evaluate();  // prime
  EXPECT_TRUE(dog.evaluate().empty());  // 30% is under the 50% threshold

  registry.gauge("dust_core_hfr_percent").set(75.0);
  std::vector<Alert> alerts = dog.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "hfr-spike");
  EXPECT_NEAR(alerts[0].value, 75.0, 1e-9);
}

TEST_F(WatchdogTest, NmdbStalenessFiresOnWindowQuantileAboveLimit) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  registry.histogram("dust_core_nmdb_staleness_ms").observe(500.0);
  EXPECT_TRUE(dog.evaluate().empty());

  registry.histogram("dust_core_nmdb_staleness_ms").observe(90000.0);
  std::vector<Alert> alerts = dog.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "nmdb-staleness");
  // Windowed p90, not lifetime: only the new observation is in the window,
  // and the interpolated quantile clamps to the observed maximum.
  EXPECT_NEAR(alerts[0].value, 90000.0, 1e-9);
}

TEST_F(WatchdogTest, NmdbStalenessQuantileIgnoresAHealthyMean) {
  // 8 fresh views + 1 badly stale one: the window mean (~19 s) is under the
  // 60 s limit, but p90 lands on the stale tail and fires.
  WatchdogConfig config = tight();
  config.staleness_limit_ms = 60000.0;
  config.staleness_quantile = 0.9;
  Watchdog dog(registry, config);
  (void)dog.evaluate();  // prime
  Histogram& staleness = registry.histogram("dust_core_nmdb_staleness_ms");
  for (int i = 0; i < 8; ++i) staleness.observe(100.0);
  staleness.observe(170000.0);
  std::vector<Alert> alerts = dog.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "nmdb-staleness");
  EXPECT_GT(alerts[0].value, 60000.0);
}

TEST_F(WatchdogTest, ReplicaSubstitutionShortfallFires) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime

  // Two dead destinations, both re-homed: balanced, no alert.
  registry.counter("dust_core_keepalive_failures_total").inc(2);
  registry.counter("dust_core_tx_rep_total").inc(2);
  EXPECT_TRUE(dog.evaluate().empty());

  // Three failures, one REP: two dead destinations were never re-homed.
  registry.counter("dust_core_keepalive_failures_total").inc(3);
  registry.counter("dust_core_tx_rep_total").inc(1);
  std::vector<Alert> alerts = dog.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "replica-substitution");
  EXPECT_NEAR(alerts[0].value, 2.0, 1e-9);  // the shortfall
}

TEST_F(WatchdogTest, FederationFailoverFiresOnAnyTakeover) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  EXPECT_TRUE(dog.evaluate().empty());  // no takeovers yet

  registry.counter("dust_fed_takeovers_total").inc();
  std::vector<Alert> alerts = dog.evaluate(4200);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "federation-failover");
  EXPECT_NEAR(alerts[0].value, 1.0, 1e-9);
  EXPECT_EQ(alerts[0].sim_ms, 4200);
  EXPECT_TRUE(dog.evaluate().empty());  // windowed: same total, no re-fire
}

TEST_F(WatchdogTest, FederationStaleEpochToleratesTakeoverNoise) {
  // A couple of in-flight frames from a deposed primary are normal during a
  // takeover; sustained growth past the limit means it never stopped.
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime

  registry.counter("dust_fed_stale_frames_total").inc(3);  // at the limit
  EXPECT_TRUE(dog.evaluate().empty());

  registry.counter("dust_fed_stale_frames_total").inc(7);
  std::vector<Alert> alerts = dog.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "federation-stale-epoch");
  EXPECT_NEAR(alerts[0].value, 7.0, 1e-9);  // the window delta, not lifetime
}

TEST_F(WatchdogTest, FederationRulesCanBeDisabled) {
  WatchdogConfig config = tight();
  config.check_federation = false;
  Watchdog dog(registry, config);
  (void)dog.evaluate();  // prime
  registry.counter("dust_fed_takeovers_total").inc();
  registry.counter("dust_fed_stale_frames_total").inc(100);
  EXPECT_TRUE(dog.evaluate().empty());
}

TEST_F(WatchdogTest, AlertsLandOnCountersAndTheFlightRecorder) {
  FlightRecorder::global().clear();
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  registry.gauge("dust_core_hfr_percent").set(75.0);
  (void)dog.evaluate(12345);

  EXPECT_EQ(dog.alerts_raised(), 1u);
  const RegistrySnapshot scrape = registry.snapshot();
  const CounterSnapshot* total = scrape.find_counter("dust_obs_alerts_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 1u);
  const CounterSnapshot* by_rule =
      scrape.find_counter("dust_obs_alert_hfr-spike_total");
  ASSERT_NE(by_rule, nullptr);
  EXPECT_EQ(by_rule->value, 1u);

  bool saw_alert_event = false;
  for (const FlightEvent& event : FlightRecorder::global().snapshot())
    if (event.kind == FlightEventKind::kAlert &&
        std::string(event.detail) == "hfr-spike" && event.sim_ms == 12345)
      saw_alert_event = true;
  EXPECT_TRUE(saw_alert_event);
}

TEST_F(WatchdogTest, RegistryResetResyncsInsteadOfMisfiring) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  observe_solves(10.0, 4);
  registry.counter("dust_core_keepalive_failures_total").inc(5);
  registry.counter("dust_core_tx_rep_total").inc(5);
  (void)dog.evaluate();

  registry.reset();  // counters rewind below the cursors
  EXPECT_TRUE(dog.evaluate().empty());
  registry.counter("dust_core_keepalive_failures_total").inc(1);
  registry.counter("dust_core_tx_rep_total").inc(1);
  EXPECT_TRUE(dog.evaluate().empty());  // balanced window after resync
}

TEST_F(WatchdogTest, DisabledObservabilitySkipsEvaluation) {
  Watchdog dog(registry, tight());
  (void)dog.evaluate();  // prime
  registry.gauge("dust_core_hfr_percent").set(99.0);
  set_enabled(false);
  EXPECT_TRUE(dog.evaluate().empty());
  set_enabled(true);
}

}  // namespace
}  // namespace dust::obs
