// FederatedManager behaviour over the in-process simulator (DESIGN.md §16):
// cross-domain delegation end to end (digest -> request -> grant -> offload
// -> agent transfer -> keepalives to the granting shard), rejection when a
// neighbor has no spare, epoch fencing, and the standby takeover protocol.
//
// Shards are wired directly to each other through set_peer_sender /
// handle_peer_frame — the daemon runtime routes the same frames through
// wire::SocketTransport's federation handler instead; the state machines
// under test are identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "federation/federated_manager.hpp"
#include "federation/partition.hpp"
#include "graph/topology.hpp"
#include "net/network_state.hpp"

namespace dust::federation {
namespace {

/// N shards over a ring, all on one simulator. Every shard's inner manager
/// listens on its own endpoint of the shared transport; federation frames
/// hop directly between FederatedManager objects via a router that matches
/// frame.to against each shard's federation endpoint.
struct FedHarness {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  DomainPartition partition;
  std::vector<std::unique_ptr<FederatedManager>> shards;
  std::vector<std::unique_ptr<core::DustClient>> clients;

  FedHarness(std::uint32_t nodes, std::size_t shard_count,
             double initial_util = 70.0) {
    net::NetworkState state(graph::make_ring(nodes));
    for (graph::NodeId v = 0; v < nodes; ++v) {
      state.set_node_utilization(v, initial_util);
      state.set_monitoring_data_mb(v, 10.0);
    }
    partition = partition_balanced(state.graph(), shard_count);
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      shards.push_back(std::make_unique<FederatedManager>(
          sim, transport, core::Nmdb(state, core::Thresholds{}), partition,
          fast_config(s)));
      shards.back()->set_peer_sender(
          [this](wire::Frame&& frame) { return route(std::move(frame)); });
    }
    for (std::uint32_t s = 0; s < shard_count; ++s)
      for (std::uint32_t t = 0; t < shard_count; ++t)
        if (s != t) shards[s]->add_peer(t);
    for (graph::NodeId v = 0; v < nodes; ++v) {
      clients.push_back(std::make_unique<core::DustClient>(
          sim, transport, v,
          core::ClientConfig{
              .keepalive_interval_ms = 500,
              .manager = shard_manager_endpoint(partition.shard_of(v))},
          util::Rng(100 + v)));
      clients.back()->set_reported_state(initial_util, 10.0, 10);
    }
  }

  static FederatedManagerConfig fast_config(std::uint32_t shard) {
    FederatedManagerConfig config;
    config.shard = shard;
    config.digest_period_ms = 1000;
    config.digest_stale_ms = 5000;
    config.primary_silence_timeout_ms = 3000;
    config.manager.update_interval_ms = 500;
    config.manager.placement_period_ms = 2000;  // federated cycle period
    config.manager.keepalive_timeout_ms = 2000;
    config.manager.keepalive_check_period_ms = 500;
    return config;
  }

  /// Deliver a federation frame to whichever shard (or extra receiver)
  /// owns frame.to. Synchronous: the reply conversation completes within
  /// the sending shard's cycle, like a same-poll socket round trip.
  bool route(wire::Frame&& frame) {
    for (auto& shard : shards) {
      const std::string primary_ep = federation_endpoint(shard->shard());
      const std::string standby_ep =
          standby_federation_endpoint(shard->shard());
      if (frame.to == (shard->primary() ? primary_ep : standby_ep)) {
        shard->handle_peer_frame(std::move(frame));
        return true;
      }
    }
    lost_frames.push_back(std::move(frame));
    return false;
  }

  void start_all() {
    for (auto& client : clients) client->start();
    for (auto& shard : shards) shard->start();
  }

  std::vector<wire::Frame> lost_frames;
};

TEST(Federation, DelegationMovesOverflowAcrossShards) {
  FedHarness h(6, 2);
  h.start_all();
  // Shard 0's domain: one hot node, everyone else neutral (no local spare).
  // Shard 1's domain: all comfortable candidates.
  const std::uint32_t origin = 0, granting = 1;
  const graph::NodeId busy = h.partition.members[origin].front();
  for (graph::NodeId v : h.partition.members[origin])
    h.clients[v]->set_reported_state(v == busy ? 95.0 : 70.0, 10.0, 10);
  for (graph::NodeId v : h.partition.members[granting])
    h.clients[v]->set_reported_state(30.0, 5.0, 10);
  h.sim.run_until(10000);

  const FederationStats& origin_stats = h.shards[origin]->stats();
  const FederationStats& granting_stats = h.shards[granting]->stats();
  EXPECT_GT(origin_stats.digests_received, 0u);
  ASSERT_GE(origin_stats.delegations_requested, 1u);
  EXPECT_GE(granting_stats.delegations_granted, 1u);
  ASSERT_GE(origin_stats.delegations_confirmed, 1u);

  // Origin bookkeeping: an offload whose destination it does not supervise.
  const auto origin_offloads = h.shards[origin]->manager().active_offloads();
  ASSERT_FALSE(origin_offloads.empty());
  const core::ActiveOffload& delegated = origin_offloads.front();
  EXPECT_EQ(delegated.busy, busy);
  EXPECT_TRUE(delegated.external_destination);
  EXPECT_FALSE(h.shards[origin]->in_domain(delegated.destination));

  // Granting bookkeeping: the adopted twin, supervised locally.
  const auto granting_offloads =
      h.shards[granting]->manager().active_offloads();
  ASSERT_FALSE(granting_offloads.empty());
  EXPECT_TRUE(granting_offloads.front().external_origin);
  EXPECT_EQ(granting_offloads.front().destination, delegated.destination);

  // The agents actually moved: busy client sheds, the foreign destination
  // hosts, and its keepalives satisfy the granting shard's supervision.
  EXPECT_GT(h.clients[busy]->offloaded_agent_count(), 0u);
  EXPECT_GT(h.clients[delegated.destination]->hosted_agent_count(), 0u);
  EXPECT_GT(h.clients[delegated.destination]->keepalives_sent(), 0u);
  EXPECT_EQ(h.shards[granting]->manager().keepalive_failures(), 0u);
}

TEST(Federation, DelegationRejectedWhenNeighborHasNoSpare) {
  FedHarness h(6, 2);
  h.start_all();
  // Both domains hot: shard 0 has an overflow node, shard 1 nothing to give.
  const graph::NodeId busy = h.partition.members[0].front();
  for (auto& client : h.clients) client->set_reported_state(75.0, 10.0, 10);
  h.clients[busy]->set_reported_state(95.0, 10.0, 10);
  h.sim.run_until(10000);

  EXPECT_EQ(h.shards[0]->stats().delegations_confirmed, 0u);
  EXPECT_EQ(h.shards[1]->stats().delegations_granted, 0u);
  // Either shard 1's digests advertised no spare (no request worth
  // sending), or a request went out and was rejected — never a grant.
  if (h.shards[0]->stats().delegations_requested > 0) {
    EXPECT_GE(h.shards[0]->stats().delegations_refused, 1u);
  }
  EXPECT_TRUE(h.shards[0]->manager().active_offloads().empty());
}

TEST(Federation, StaleEpochFramesAreRejected) {
  FedHarness h(6, 2);
  h.start_all();
  h.sim.run_until(3000);
  ASSERT_GT(h.shards[0]->peer_epoch(1), 0u);

  // A frame from shard 1 claiming a *newer* epoch advances the fence...
  wire::CapacityDigestBody body;
  body.shard = 1;
  body.epoch = 5;
  body.seq = 1000;
  body.spare = 42.0;
  h.shards[0]->handle_peer_frame(
      wire::capacity_digest_frame("test", federation_endpoint(0), body));
  EXPECT_EQ(h.shards[0]->peer_epoch(1), 5u);
  ASSERT_NE(h.shards[0]->digest_of(1), nullptr);
  EXPECT_DOUBLE_EQ(h.shards[0]->digest_of(1)->spare, 42.0);

  // ...and everything below it — including the live primary's real epoch —
  // is now fenced out and counted, leaving state untouched.
  const std::uint64_t stale_before = h.shards[0]->stats().stale_frames_rejected;
  body.epoch = 4;
  body.seq = 2000;
  body.spare = 7.0;
  h.shards[0]->handle_peer_frame(
      wire::capacity_digest_frame("test", federation_endpoint(0), body));
  EXPECT_EQ(h.shards[0]->stats().stale_frames_rejected, stale_before + 1);
  EXPECT_DOUBLE_EQ(h.shards[0]->digest_of(1)->spare, 42.0);
  EXPECT_EQ(h.shards[0]->peer_epoch(1), 5u);
}

TEST(Federation, StandbyDetectsSilenceAndTakesOverWithHigherEpoch) {
  FedHarness h(6, 2);
  // The standby twin of shard 0 lives on its own transport (its inner
  // manager binds the same control endpoint the primary owns — exactly the
  // daemon deployment, where the standby is a separate process).
  sim::Transport standby_transport{h.sim, util::Rng(99)};
  net::NetworkState state(graph::make_ring(6));
  for (graph::NodeId v = 0; v < 6; ++v) state.set_node_utilization(v, 70.0);
  FederatedManagerConfig standby_config = FedHarness::fast_config(0);
  standby_config.standby = true;
  FederatedManager standby(h.sim, standby_transport,
                           core::Nmdb(state, core::Thresholds{}), h.partition,
                           standby_config);
  standby.set_peer_sender(
      [&h](wire::Frame&& frame) { return h.route(std::move(frame)); });
  standby.add_peer(1);
  // The primary copies its federation traffic to the standby; shard 1 also
  // lets it observe cross-domain frames.
  h.shards[0]->add_observer(standby_federation_endpoint(0));
  auto route_with_standby = [&](wire::Frame&& frame) {
    if (frame.to == standby_federation_endpoint(0)) {
      standby.handle_peer_frame(std::move(frame));
      return true;
    }
    return h.route(std::move(frame));
  };
  for (auto& shard : h.shards) shard->set_peer_sender(route_with_standby);

  h.start_all();
  standby.start();
  h.sim.run_until(4000);
  // Primary alive: its hellos/digests keep reaching the standby.
  EXPECT_FALSE(standby.primary_silent());
  EXPECT_EQ(standby.stats().takeovers, 0u);
  const std::uint64_t primary_epoch = h.shards[0]->epoch();
  ASSERT_GT(standby.peer_epoch(0), 0u);

  // Primary dies silently. After the silence timeout the standby notices.
  h.shards[0]->stop();
  h.sim.run_until(4000 + standby_config.primary_silence_timeout_ms + 1500);
  ASSERT_TRUE(standby.primary_silent());

  standby.become_primary();
  EXPECT_TRUE(standby.primary());
  EXPECT_EQ(standby.stats().takeovers, 1u);
  EXPECT_GT(standby.epoch(), primary_epoch);

  // The handoff broadcast fenced shard 1: a leftover frame from the dead
  // primary's epoch is rejected, the new primary's accepted.
  const std::uint64_t stale_before = h.shards[1]->stats().stale_frames_rejected;
  wire::CapacityDigestBody zombie;
  zombie.shard = 0;
  zombie.epoch = primary_epoch;
  zombie.seq = 10000;
  h.shards[1]->handle_peer_frame(
      wire::capacity_digest_frame("test", federation_endpoint(1), zombie));
  EXPECT_EQ(h.shards[1]->stats().stale_frames_rejected, stale_before + 1);
  EXPECT_EQ(h.shards[1]->peer_epoch(0), standby.epoch());
  h.sim.run_until(h.sim.now() + 2000);
  EXPECT_GT(h.shards[1]->digest_of(0)->epoch, primary_epoch);
}

TEST(Federation, HandoffDropsAdoptedBookkeepingButKeepsPlacements) {
  FedHarness h(6, 2);
  h.start_all();
  const graph::NodeId busy = h.partition.members[0].front();
  for (graph::NodeId v : h.partition.members[0])
    h.clients[v]->set_reported_state(v == busy ? 95.0 : 70.0, 10.0, 10);
  for (graph::NodeId v : h.partition.members[1])
    h.clients[v]->set_reported_state(30.0, 5.0, 10);
  h.sim.run_until(10000);
  ASSERT_GE(h.shards[0]->stats().delegations_confirmed, 1u);
  const graph::NodeId destination =
      h.shards[0]->manager().active_offloads().front().destination;
  ASSERT_GT(h.clients[destination]->hosted_agent_count(), 0u);
  ASSERT_FALSE(h.shards[1]->manager().active_offloads().empty());

  // Shard 0 fails over: its new primary broadcasts a DomainHandoff at a
  // higher epoch. Shard 1 un-books the adopted delegation (the new primary
  // re-solves from scratch) without touching the clients: the transferred
  // agents keep running on the destination.
  wire::DomainHandoffBody handoff;
  handoff.domain = 0;
  handoff.epoch = h.shards[0]->epoch() + 1;
  handoff.endpoint = federation_endpoint(0);
  h.shards[1]->handle_peer_frame(
      wire::domain_handoff_frame("test", federation_endpoint(1), handoff));
  EXPECT_TRUE(h.shards[1]->manager().active_offloads().empty());
  EXPECT_GT(h.clients[destination]->hosted_agent_count(), 0u);
  EXPECT_GT(h.clients[busy]->offloaded_agent_count(), 0u);
}

}  // namespace
}  // namespace dust::federation
