// Protocol fuzzing: random interleavings of STAT updates, node failures,
// recoveries, congestion flips, and message loss against a live
// manager+clients deployment. After every step a set of global invariants
// must hold — this is the "no sequence of events wedges the control plane"
// guarantee.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"

namespace dust::core {
namespace {

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, InvariantsHoldUnderRandomEvents) {
  util::Rng rng(GetParam());
  const graph::FatTree topo(4);
  const std::size_t n = topo.graph().node_count();

  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(GetParam() ^ 0xf00d));
  net::NetworkState state(topo.graph());
  for (graph::NodeId v = 0; v < n; ++v) {
    state.set_node_utilization(v, 50.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  ManagerConfig config;
  config.update_interval_ms = 2000;
  config.placement_period_ms = 8000;
  config.keepalive_timeout_ms = 6000;
  config.keepalive_check_period_ms = 2000;
  DustManager manager(sim, transport, Nmdb(std::move(state), Thresholds{}),
                      config);
  std::vector<std::unique_ptr<DustClient>> clients;
  std::vector<double> reported(n, 50.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    clients.push_back(std::make_unique<DustClient>(
        sim, transport, v, ClientConfig{.keepalive_interval_ms = 2000},
        util::Rng(GetParam() + v)));
    clients.back()->set_reported_state(50.0, 10.0, 10);
    clients.back()->start();
  }
  manager.start();

  for (int step = 0; step < 120; ++step) {
    // One random event per step.
    const auto victim = static_cast<graph::NodeId>(rng.below(n));
    switch (rng.below(6)) {
      case 0:  // load spike
        reported[victim] = rng.uniform(81.0, 99.0);
        break;
      case 1:  // load drop
        reported[victim] = rng.uniform(15.0, 55.0);
        break;
      case 2:  // node crash
        clients[victim]->set_failed(true);
        break;
      case 3:  // node recovery (fresh client instance re-joins)
        if (clients[victim]->failed()) {
          clients[victim] = std::make_unique<DustClient>(
              sim, transport, victim,
              ClientConfig{.keepalive_interval_ms = 2000},
              util::Rng(GetParam() * 31 + victim));
          clients[victim]->set_reported_state(reported[victim], 10.0, 10);
          clients[victim]->start();
          // Rejoining resets the quarantine a keepalive death imposed.
          manager.nmdb().set_offload_capable(victim, true);
        }
        break;
      case 4:  // congestion flip
        transport.set_congested(rng.bernoulli(0.5));
        break;
      case 5:  // transient loss
        transport.set_loss_probability(rng.bernoulli(0.3) ? 0.1 : 0.0);
        break;
    }
    for (graph::NodeId v = 0; v < n; ++v)
      if (!clients[v]->failed())
        clients[v]->set_reported_state(reported[v], 10.0, 10);
    sim.run_until(sim.now() + static_cast<sim::TimeMs>(500 + rng.below(4000)));

    // ---- invariants ----
    std::map<graph::NodeId, double> absorbed;
    for (const ActiveOffload& offload : manager.active_offloads()) {
      // Relationships reference distinct, valid nodes.
      ASSERT_LT(offload.busy, n);
      ASSERT_LT(offload.destination, n);
      EXPECT_NE(offload.busy, offload.destination);
      EXPECT_GT(offload.amount, 0.0);
      absorbed[offload.destination] += offload.amount;
      // Routes, when resolved, connect the right endpoints.
      if (!offload.route.empty()) {
        EXPECT_EQ(offload.route.front(), offload.busy);
        EXPECT_EQ(offload.route.back(), offload.destination);
      }
    }
    // No destination is booked beyond its spare capacity as the manager
    // last knew it (conservative: spare computed from current NMDB + what
    // the manager itself booked).
    for (const auto& [node, total] : absorbed) {
      EXPECT_LE(total, 100.0);  // sanity ceiling
    }
  }
  // The control plane is still alive: a fresh overload gets handled.
  transport.set_loss_probability(0.0);
  transport.set_congested(false);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (clients[v]->failed()) {
      clients[v] = std::make_unique<DustClient>(
          sim, transport, v, ClientConfig{.keepalive_interval_ms = 2000},
          util::Rng(999 + v));
      clients[v]->start();
    }
    manager.nmdb().set_offload_capable(v, true);
    clients[v]->set_reported_state(40.0, 10.0, 10);
  }
  clients[0]->set_reported_state(95.0, 10.0, 10);
  sim.run_until(sim.now() + 30000);
  bool offloaded_zero = false;
  for (const ActiveOffload& offload : manager.active_offloads())
    if (offload.busy == 0) offloaded_zero = true;
  EXPECT_TRUE(offloaded_zero) << "control plane wedged after fuzzing";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dust::core
