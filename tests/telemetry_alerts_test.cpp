#include "telemetry/alerts.hpp"

#include <gtest/gtest.h>

namespace dust::telemetry {
namespace {

struct Fixture : ::testing::Test {
  Tsdb db;
  MetricId cpu = db.register_metric({"cpu", "%", MetricKind::kGauge});
  AlertEngine engine;
};

TEST_F(Fixture, RuleValidation) {
  EXPECT_THROW(engine.add_rule({"", "cpu", Comparison::kAbove, 80, 0}),
               std::invalid_argument);
  EXPECT_THROW(engine.add_rule({"r", "", Comparison::kAbove, 80, 0}),
               std::invalid_argument);
  EXPECT_THROW(engine.add_rule({"r", "cpu", Comparison::kAbove, 80, -1}),
               std::invalid_argument);
  const auto id = engine.add_rule({"r", "cpu", Comparison::kAbove, 80, 0});
  EXPECT_EQ(engine.rule(id).threshold, 80.0);
  EXPECT_EQ(engine.rule_count(), 1u);
}

TEST_F(Fixture, ImmediateFiringWithZeroHold) {
  const auto id = engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 0});
  db.append(cpu, {1000, 95.0});
  EXPECT_EQ(engine.evaluate(db, 1000), 1u);
  EXPECT_EQ(engine.state(id), AlertState::kFiring);
  EXPECT_EQ(engine.firing(), std::vector<std::string>{"hot"});
}

TEST_F(Fixture, HoldDurationGatesFiring) {
  const auto id = engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 5000});
  db.append(cpu, {0, 95.0});
  engine.evaluate(db, 0);
  EXPECT_EQ(engine.state(id), AlertState::kPending);
  db.append(cpu, {3000, 96.0});
  engine.evaluate(db, 3000);
  EXPECT_EQ(engine.state(id), AlertState::kPending);  // 3 s < 5 s hold
  db.append(cpu, {5000, 97.0});
  engine.evaluate(db, 5000);
  EXPECT_EQ(engine.state(id), AlertState::kFiring);
}

TEST_F(Fixture, RecoveryClearsImmediately) {
  const auto id = engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 0});
  db.append(cpu, {0, 95.0});
  engine.evaluate(db, 0);
  ASSERT_EQ(engine.state(id), AlertState::kFiring);
  db.append(cpu, {1000, 50.0});
  engine.evaluate(db, 1000);
  EXPECT_EQ(engine.state(id), AlertState::kOk);
  EXPECT_TRUE(engine.firing().empty());
}

TEST_F(Fixture, DipDuringPendingResetsHold) {
  const auto id = engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 4000});
  db.append(cpu, {0, 95.0});
  engine.evaluate(db, 0);  // pending since 0
  db.append(cpu, {2000, 50.0});
  engine.evaluate(db, 2000);  // back to ok
  EXPECT_EQ(engine.state(id), AlertState::kOk);
  db.append(cpu, {3000, 95.0});
  engine.evaluate(db, 3000);  // pending since 3000
  db.append(cpu, {5000, 95.0});
  engine.evaluate(db, 5000);  // only 2 s in breach
  EXPECT_EQ(engine.state(id), AlertState::kPending);
  db.append(cpu, {7000, 95.0});
  engine.evaluate(db, 7000);
  EXPECT_EQ(engine.state(id), AlertState::kFiring);
}

TEST_F(Fixture, BelowComparison) {
  const auto id =
      engine.add_rule({"link-down", "cpu", Comparison::kBelow, 10.0, 0});
  db.append(cpu, {0, 5.0});
  engine.evaluate(db, 0);
  EXPECT_EQ(engine.state(id), AlertState::kFiring);
  db.append(cpu, {1000, 50.0});
  engine.evaluate(db, 1000);
  EXPECT_EQ(engine.state(id), AlertState::kOk);
}

TEST_F(Fixture, MissingMetricLeavesRuleUntouched) {
  const auto id =
      engine.add_rule({"ghost", "does.not.exist", Comparison::kAbove, 1, 0});
  EXPECT_EQ(engine.evaluate(db, 0), 0u);
  EXPECT_EQ(engine.state(id), AlertState::kOk);
}

TEST_F(Fixture, MetricWithoutSamplesLeavesRuleUntouched) {
  db.register_metric({"empty", "", MetricKind::kGauge});
  const auto id = engine.add_rule({"e", "empty", Comparison::kAbove, 1, 0});
  engine.evaluate(db, 0);
  EXPECT_EQ(engine.state(id), AlertState::kOk);
}

TEST_F(Fixture, HistoryRecordsTransitions) {
  engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 1000});
  db.append(cpu, {0, 95.0});
  engine.evaluate(db, 0);
  db.append(cpu, {1000, 95.0});
  engine.evaluate(db, 1000);
  db.append(cpu, {2000, 10.0});
  engine.evaluate(db, 2000);
  ASSERT_EQ(engine.history().size(), 3u);
  EXPECT_EQ(engine.history()[0].to, AlertState::kPending);
  EXPECT_EQ(engine.history()[1].to, AlertState::kFiring);
  EXPECT_EQ(engine.history()[2].to, AlertState::kOk);
  EXPECT_EQ(engine.history()[1].timestamp_ms, 1000);
}

TEST_F(Fixture, MultipleRulesIndependent) {
  const auto hot = engine.add_rule({"hot", "cpu", Comparison::kAbove, 80, 0});
  const auto cold = engine.add_rule({"cold", "cpu", Comparison::kBelow, 20, 0});
  db.append(cpu, {0, 95.0});
  engine.evaluate(db, 0);
  EXPECT_EQ(engine.state(hot), AlertState::kFiring);
  EXPECT_EQ(engine.state(cold), AlertState::kOk);
  db.append(cpu, {1000, 10.0});
  engine.evaluate(db, 1000);
  EXPECT_EQ(engine.state(hot), AlertState::kOk);
  EXPECT_EQ(engine.state(cold), AlertState::kFiring);
}

TEST(AlertState, ToStringCoversAll) {
  EXPECT_STREQ(to_string(AlertState::kOk), "ok");
  EXPECT_STREQ(to_string(AlertState::kPending), "pending");
  EXPECT_STREQ(to_string(AlertState::kFiring), "firing");
}

}  // namespace
}  // namespace dust::telemetry
