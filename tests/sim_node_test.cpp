#include "sim/node.hpp"

#include <gtest/gtest.h>

#include "telemetry/agent.hpp"

namespace dust::sim {
namespace {

NodeResources aruba8325() { return NodeResources{8, 16384.0}; }

TEST(MonitoredNode, ValidatesConstruction) {
  EXPECT_THROW(MonitoredNode("x", NodeResources{0, 100}, 10, 10),
               std::invalid_argument);
  EXPECT_THROW(MonitoredNode("x", NodeResources{4, 0}, 10, 10),
               std::invalid_argument);
  EXPECT_THROW(MonitoredNode("x", aruba8325(), 150, 10), std::invalid_argument);
  EXPECT_THROW(MonitoredNode("x", aruba8325(), 10, 999999), std::invalid_argument);
}

TEST(MonitoredNode, BaseLoadOnly) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  node.set_export_cost_ms(0.0);
  util::Rng rng(1);
  const TickStats stats = node.tick(0, 1000, 0.0, 0.0, rng);
  EXPECT_NEAR(stats.device_cpu_percent, 15.0, 1e-9);
  EXPECT_NEAR(stats.monitor_cpu_cores, 0.0, 1e-9);
  EXPECT_NEAR(stats.memory_percent, 10000.0 / 16384.0 * 100.0, 1e-6);
}

TEST(MonitoredNode, LocalAgentsChargeCpuAndMemory) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  util::Rng rng(1);
  const TickStats before = node.tick(0, 1000, 20000.0, 0.0, rng);
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  EXPECT_EQ(node.local_agent_count(), 10u);
  const TickStats after = node.tick(1000, 1000, 20000.0, 0.0, rng);
  EXPECT_GT(after.device_cpu_percent, before.device_cpu_percent + 10.0);
  EXPECT_GT(after.monitor_cpu_cores, 1.0);  // ~1.28 cores at 20 Gbps
  EXPECT_GT(after.memory_percent, before.memory_percent + 5.0);
  EXPECT_GT(after.monitor_memory_mib, 1200.0);
}

TEST(MonitoredNode, AgentsRespectSamplingInterval) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  node.set_export_cost_ms(0.0);
  telemetry::AgentCostModel cost;
  cost.cpu_base_ms = 100.0;
  cost.cpu_per_gbps_ms = 0.0;
  node.add_local_agent(telemetry::MonitorAgent("slow", cost, 10000));
  util::Rng rng(1);
  const TickStats t0 = node.tick(0, 1000, 0.0, 0.0, rng);
  EXPECT_NEAR(t0.monitor_cpu_cores, 0.1, 1e-9);  // sampled
  const TickStats t1 = node.tick(1000, 1000, 0.0, 0.0, rng);
  EXPECT_NEAR(t1.monitor_cpu_cores, 0.0, 1e-9);  // not due yet
}

TEST(MonitoredNode, RemoveLocalAgentsReturnsThem) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  auto removed = node.remove_local_agents();
  EXPECT_EQ(removed.size(), 10u);
  EXPECT_EQ(node.local_agent_count(), 0u);
}

TEST(MonitoredNode, OffloadShrinksOriginGrowsDestination) {
  util::Rng rng(1);
  MonitoredNode origin("busy", aruba8325(), 15.0, 10000.0);
  MonitoredNode destination("dest", aruba8325(), 10.0, 6000.0);
  for (auto& agent : telemetry::standard_agents())
    origin.add_local_agent(agent);

  // Warm both up with traffic.
  const TickStats origin_before = origin.tick(0, 1000, 20000.0, 0.0, rng);
  const TickStats dest_before = destination.tick(0, 1000, 5000.0, 0.0, rng);

  // Move all agents.
  auto agents = origin.remove_local_agents();
  for (auto& agent : agents) destination.add_remote_agent("busy", agent);
  origin.set_offloaded_agent_count(agents.size());

  const TickStats origin_after = origin.tick(1000, 1000, 20000.0, 0.0, rng);
  // Destination observes the origin remotely, then ticks.
  telemetry::DeviceSnapshot snap;
  snap.timestamp_ms = 1000;
  snap.rx_mbps = 20000.0;
  destination.observe_remote("busy", snap, rng);
  const TickStats dest_after = destination.tick(1000, 1000, 5000.0, 0.0, rng);

  EXPECT_LT(origin_after.device_cpu_percent,
            origin_before.device_cpu_percent - 10.0);
  EXPECT_LT(origin_after.memory_percent, origin_before.memory_percent - 5.0);
  EXPECT_GT(dest_after.device_cpu_percent, dest_before.device_cpu_percent + 5.0);
  EXPECT_GT(dest_after.memory_percent, dest_before.memory_percent + 5.0);
  EXPECT_EQ(destination.remote_agent_count(), 10u);
}

TEST(MonitoredNode, ExportResidualCharged) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  node.set_export_cost_ms(2.0);
  node.set_offloaded_agent_count(10);
  util::Rng rng(1);
  const TickStats stats = node.tick(0, 1000, 0.0, 0.0, rng);
  EXPECT_NEAR(stats.monitor_cpu_cores, 0.02, 1e-9);  // 10 x 2 ms / 1000 ms
}

TEST(MonitoredNode, RemoveRemoteAgentsByOwner) {
  MonitoredNode node("dest", aruba8325(), 10.0, 6000.0);
  auto agents = telemetry::standard_agents();
  node.add_remote_agent("owner-a", agents[0]);
  node.add_remote_agent("owner-a", agents[1]);
  node.add_remote_agent("owner-b", agents[2]);
  EXPECT_EQ(node.remove_remote_agents("owner-a"), 2u);
  EXPECT_EQ(node.remote_agent_count(), 1u);
  EXPECT_EQ(node.remove_remote_agents("owner-a"), 0u);
}

TEST(MonitoredNode, CpuClampsAt100Percent) {
  MonitoredNode node("sw", NodeResources{1, 16384.0}, 50.0, 1000.0);
  telemetry::AgentCostModel cost;
  cost.cpu_base_ms = 5000.0;  // 5 cores worth on a 1-core box
  node.add_local_agent(telemetry::MonitorAgent("hog", cost, 1000));
  util::Rng rng(1);
  const TickStats stats = node.tick(0, 1000, 0.0, 0.0, rng);
  EXPECT_LE(stats.device_cpu_percent, 100.0);
}

TEST(MonitoredNode, TickRejectsBadTickLength) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  util::Rng rng(1);
  EXPECT_THROW(node.tick(0, 0, 0.0, 0.0, rng), std::invalid_argument);
}

TEST(MonitoredNode, TsdbAccumulatesAgentSamples) {
  MonitoredNode node("sw", aruba8325(), 15.0, 10000.0);
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  util::Rng rng(1);
  for (int t = 0; t < 5; ++t) node.tick(1000LL * t, 1000, 10000.0, 0.0, rng);
  EXPECT_EQ(node.tsdb().metric_count(), 30u);  // 10 agents x 3 metrics
  const auto id = node.tsdb().find("system.cpu.memory.value");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(node.tsdb().query(*id, 0, 10000).size(), 5u);
}

}  // namespace
}  // namespace dust::sim
