// Adversarial input for the wire decoder. Run under the asan/ubsan presets
// (`sanitize` label): the properties here are exactly the ones a sanitizer
// can falsify — no out-of-bounds reads, no crashes, no silent acceptance of
// corrupt frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/wire_gen.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/crc32.hpp"

namespace dust {
namespace {

using wire::decode_frame;
using wire::DecodeResult;
using wire::DecodeStatus;
using wire::encode_frame;

TEST(WireFuzz, EverySingleBitFlipIsRejected) {
  util::Rng rng(0xF1);
  for (int round = 0; round < 8; ++round) {
    const std::vector<std::uint8_t> bytes =
        encode_frame(check::random_frame(rng));
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      const DecodeResult decoded = decode_frame(corrupt.data(),
                                                corrupt.size());
      // The CRC covers version/type/length/payload and the magic guards
      // itself, so no single-bit corruption may ever decode as a valid
      // frame. (A flip in the length field may leave the decoder waiting
      // for bytes that never come — that is kNeedMoreData, not acceptance.)
      EXPECT_NE(decoded.status, DecodeStatus::kOk)
          << "round " << round << " bit " << bit;
    }
  }
}

TEST(WireFuzz, EveryTruncationAsksForMoreData) {
  util::Rng rng(0xF2);
  for (int round = 0; round < 20; ++round) {
    const std::vector<std::uint8_t> bytes =
        encode_frame(check::random_frame(rng));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const DecodeResult decoded = decode_frame(bytes.data(), len);
      EXPECT_EQ(decoded.status, DecodeStatus::kNeedMoreData)
          << "round " << round << " len " << len;
      EXPECT_EQ(decoded.consumed, 0u);
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashesAndAlwaysMakesProgress) {
  util::Rng rng(0xF3);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(rng.below(4096));
    for (std::uint8_t& byte : garbage)
      byte = static_cast<std::uint8_t>(rng());
    std::size_t offset = 0;
    while (offset < garbage.size()) {
      const DecodeResult decoded =
          decode_frame(garbage.data() + offset, garbage.size() - offset);
      if (decoded.status == DecodeStatus::kNeedMoreData) break;
      ASSERT_GT(decoded.consumed, 0u) << "decoder must make progress";
      offset += decoded.consumed;
    }
  }
}

TEST(WireFuzz, GarbageThroughFrameBufferInChunks) {
  util::Rng rng(0xF4);
  for (int round = 0; round < 50; ++round) {
    wire::FrameBuffer buffer;
    // Interleave garbage with the occasional valid frame; the valid frames
    // behind a bad-magic run must still surface once the buffer resyncs.
    for (int step = 0; step < 20; ++step) {
      if (rng.bernoulli(0.3)) {
        const std::vector<std::uint8_t> bytes =
            encode_frame(check::random_frame(rng));
        buffer.append(bytes.data(), bytes.size());
      } else {
        std::vector<std::uint8_t> garbage(rng.below(64));
        for (std::uint8_t& byte : garbage)
          byte = static_cast<std::uint8_t>(rng());
        buffer.append(garbage.data(), garbage.size());
      }
      for (int drain = 0; drain < 10000; ++drain) {
        const DecodeResult decoded = buffer.next();
        if (decoded.status == DecodeStatus::kNeedMoreData) break;
      }
    }
  }
}

TEST(WireFuzz, CorruptPayloadIsBadCrcAndStreamRecovers) {
  util::Rng rng(0xF5);
  for (int round = 0; round < 50; ++round) {
    const std::vector<std::uint8_t> first =
        encode_frame(check::random_frame(rng));
    const std::vector<std::uint8_t> second =
        encode_frame(check::random_frame(rng));
    if (first.size() <= wire::kWireHeaderBytes) continue;  // needs a payload

    std::vector<std::uint8_t> stream = first;
    // Corrupt one payload byte of the first frame: header (and thus framing)
    // stays intact, so the error is contained to exactly that frame.
    const std::size_t victim =
        wire::kWireHeaderBytes +
        rng.below(first.size() - wire::kWireHeaderBytes);
    stream[victim] ^= 0xFF;
    stream.insert(stream.end(), second.begin(), second.end());

    DecodeResult decoded = decode_frame(stream.data(), stream.size());
    ASSERT_EQ(decoded.status, DecodeStatus::kBadCrc);
    ASSERT_EQ(decoded.consumed, first.size());
    decoded = decode_frame(stream.data() + decoded.consumed,
                           stream.size() - decoded.consumed);
    EXPECT_EQ(decoded.status, DecodeStatus::kOk);
    EXPECT_EQ(decoded.consumed, second.size());
  }
}

TEST(WireFuzz, UnknownVersionAndTypeAreTypedErrors) {
  util::Rng rng(0xF6);
  const std::vector<std::uint8_t> bytes =
      encode_frame(check::random_frame(rng));

  // Version bump with the CRC recomputed: an intact frame from the future.
  std::vector<std::uint8_t> future = bytes;
  future[8] = 2;
  std::uint32_t crc = wire::crc32(future.data() + 8, future.size() - 8);
  for (int i = 0; i < 4; ++i)
    future[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  DecodeResult decoded = decode_frame(future.data(), future.size());
  EXPECT_EQ(decoded.status, DecodeStatus::kBadVersion);
  EXPECT_EQ(decoded.consumed, future.size());

  // Unknown type tag, CRC intact.
  std::vector<std::uint8_t> alien = bytes;
  alien[10] = 0xEE;
  alien[11] = 0x7F;
  crc = wire::crc32(alien.data() + 8, alien.size() - 8);
  for (int i = 0; i < 4; ++i)
    alien[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  decoded = decode_frame(alien.data(), alien.size());
  EXPECT_EQ(decoded.status, DecodeStatus::kUnknownType);
  EXPECT_EQ(decoded.consumed, alien.size());
}

TEST(WireFuzz, OversizedLengthIsRejectedWithoutAllocation) {
  util::Rng rng(0xF7);
  std::vector<std::uint8_t> bytes = encode_frame(check::random_frame(rng));
  // Claim a payload just over the ceiling.
  const std::uint32_t huge =
      static_cast<std::uint32_t>(wire::kMaxPayloadBytes) + 1;
  for (int i = 0; i < 4; ++i)
    bytes[12 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.status, DecodeStatus::kOversized);
  EXPECT_EQ(decoded.consumed, 1u);  // length is untrusted: resync bytewise
}

}  // namespace
}  // namespace dust
