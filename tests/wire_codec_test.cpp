// wire::Codec properties: encode -> decode -> encode is byte-identical for
// every message type and random field content, the header layout matches the
// DESIGN.md §11 spec byte for byte, and every envelope passenger survives
// the round trip.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/wire_gen.hpp"
#include "core/messages.hpp"
#include "util/rng.hpp"

namespace dust {
namespace {

using wire::decode_frame;
using wire::DecodeResult;
using wire::DecodeStatus;
using wire::encode_frame;
using wire::Frame;
using wire::FrameType;

TEST(WireCodec, RoundTripIsByteIdenticalForEveryMessageType) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    for (std::size_t type_index = 0; type_index < 10; ++type_index) {
      util::Rng rng(seed * 977 + type_index);
      Frame frame = wire::message_frame(
          "dust-client-1", "dust-manager",
          check::random_message(rng, type_index),
          rng.bernoulli(0.5) ? sim::Priority::kLow : sim::Priority::kNormal,
          "kind-" + std::to_string(type_index), rng());

      const std::vector<std::uint8_t> bytes = encode_frame(frame);
      const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
      ASSERT_EQ(decoded.status, DecodeStatus::kOk)
          << "seed " << seed << " type " << type_index;
      EXPECT_EQ(decoded.consumed, bytes.size());
      EXPECT_EQ(decoded.frame.type, frame.type);
      EXPECT_EQ(decoded.frame.priority, frame.priority);
      EXPECT_EQ(decoded.frame.trace_id, frame.trace_id);
      EXPECT_EQ(decoded.frame.from, frame.from);
      EXPECT_EQ(decoded.frame.to, frame.to);
      EXPECT_EQ(decoded.frame.kind, frame.kind);
      EXPECT_EQ(decoded.frame.message.index(), frame.message.index());

      // The strongest equality there is: identical bytes.
      const std::vector<std::uint8_t> reencoded = encode_frame(decoded.frame);
      EXPECT_EQ(reencoded, bytes) << "seed " << seed << " type " << type_index;
    }
  }
}

TEST(WireCodec, RandomFramesRoundTrip) {
  util::Rng rng(0xC0DEC);
  for (int i = 0; i < 500; ++i) {
    const Frame frame = check::random_frame(rng);
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
    ASSERT_EQ(decoded.status, DecodeStatus::kOk) << "iteration " << i;
    EXPECT_EQ(encode_frame(decoded.frame), bytes) << "iteration " << i;
    ASSERT_EQ(decoded.raw_size, bytes.size());
    EXPECT_EQ(std::memcmp(decoded.raw, bytes.data(), bytes.size()), 0);
  }
}

TEST(WireCodec, HeaderLayoutMatchesSpec) {
  Frame frame = wire::message_frame("a", "b", core::Message{core::AckMsg{}},
                                    sim::Priority::kNormal, "ack", 7);
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  ASSERT_GE(bytes.size(), wire::kWireHeaderBytes);
  // Magic: "DUST" read as a little-endian u32, i.e. the literal characters
  // 'D' 'U' 'S' 'T' in byte order.
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(bytes[1], 'U');
  EXPECT_EQ(bytes[2], 'S');
  EXPECT_EQ(bytes[3], 'T');
  // Version at offset 8, type tag at 10, payload length at 12 (all LE).
  EXPECT_EQ(bytes[8] | (bytes[9] << 8), wire::kWireVersion);
  EXPECT_EQ(bytes[10] | (bytes[11] << 8),
            static_cast<int>(FrameType::kAck));
  const std::size_t payload_len = bytes[12] | (bytes[13] << 8) |
                                  (bytes[14] << 16) |
                                  (static_cast<std::size_t>(bytes[15]) << 24);
  EXPECT_EQ(payload_len, bytes.size() - wire::kWireHeaderBytes);
  // Priority is the first payload byte.
  EXPECT_EQ(bytes[16], static_cast<std::uint8_t>(sim::Priority::kNormal));
}

TEST(WireCodec, AnnounceRoundTrip) {
  Frame frame = wire::announce_frame({"dust-client-3", "dust-client-9", ""});
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  EXPECT_EQ(decoded.frame.type, FrameType::kAnnounce);
  EXPECT_EQ(decoded.frame.announce_endpoints, frame.announce_endpoints);
  EXPECT_EQ(encode_frame(decoded.frame), bytes);
}

TEST(WireCodec, EncodeRejectsOverlongStrings) {
  Frame frame = wire::message_frame(std::string(70000, 'x'), "b",
                                    core::Message{core::AckMsg{}},
                                    sim::Priority::kNormal);
  EXPECT_THROW((void)encode_frame(frame), std::invalid_argument);
}

TEST(WireCodec, EveryMessageTypeHasAStableTag) {
  // The tag values are the wire contract — changing one breaks every
  // deployed peer, so pin them.
  util::Rng rng(1);
  const std::pair<std::size_t, FrameType> expected[] = {
      {0, FrameType::kOffloadCapable}, {1, FrameType::kAck},
      {2, FrameType::kStat},           {3, FrameType::kOffloadRequest},
      {4, FrameType::kOffloadAck},     {5, FrameType::kAgentTransfer},
      {6, FrameType::kTelemetryData},  {7, FrameType::kKeepalive},
      {8, FrameType::kRep},            {9, FrameType::kRelease},
  };
  for (const auto& [index, tag] : expected)
    EXPECT_EQ(wire::frame_type_of(check::random_message(rng, index)), tag);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kOffloadCapable), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kRelease), 10);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kAnnounce), 100);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kDataBlocks), 200);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kDataDegrade), 201);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kShardHello), 220);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kCapacityDigest), 221);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kDelegateRequest), 222);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kDelegateReply), 223);
  EXPECT_EQ(static_cast<std::uint16_t>(FrameType::kDomainHandoff), 224);
}

TEST(WireCodec, FederationFramesRoundTrip) {
  wire::ShardHelloBody hello;
  hello.shard = 2;
  hello.epoch = 7;
  hello.standby = true;
  hello.endpoint = "dust-fed-2";
  wire::CapacityDigestBody digest;
  digest.shard = 1;
  digest.epoch = 3;
  digest.seq = 41;
  digest.spare = 123.5;
  digest.excess = 17.25;
  digest.busy_count = 4;
  digest.candidate_count = 9;
  wire::DelegateRequestBody request;
  request.shard = 0;
  request.epoch = 5;
  request.delegation_id = 99;
  request.busy = 12;
  request.amount = 6.5;
  request.agents = 2;
  request.platform_factor = 1.5;
  wire::DelegateReplyBody reply;
  reply.shard = 1;
  reply.epoch = 5;
  reply.delegation_id = 99;
  reply.granted = true;
  reply.destination = 30;
  reply.amount = 6.5;
  wire::DomainHandoffBody handoff;
  handoff.domain = 1;
  handoff.epoch = 6;
  handoff.endpoint = "dust-fed-1";

  const Frame frames[] = {
      wire::shard_hello_frame("dust-fed-2", "dust-fed-0", hello),
      wire::capacity_digest_frame("dust-fed-1", "dust-fed-0", digest),
      wire::delegate_request_frame("dust-fed-0", "dust-fed-1", request, 0xF0),
      wire::delegate_reply_frame("dust-fed-1", "dust-fed-0", reply, 0xF0),
      wire::domain_handoff_frame("dust-fed-1", "dust-fed-0", handoff),
  };
  for (const Frame& frame : frames) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
    ASSERT_EQ(decoded.status, DecodeStatus::kOk)
        << wire::to_string(frame.type);
    EXPECT_EQ(decoded.frame.type, frame.type);
    EXPECT_EQ(decoded.frame.priority, sim::Priority::kNormal);
    EXPECT_EQ(encode_frame(decoded.frame), bytes)
        << wire::to_string(frame.type);
  }

  // Spot-check typed fields survive (byte identity already proves it, but a
  // field-level failure message is far easier to debug).
  const DecodeResult hello_rt = [&] {
    const std::vector<std::uint8_t> bytes = encode_frame(frames[0]);
    return decode_frame(bytes.data(), bytes.size());
  }();
  EXPECT_EQ(hello_rt.frame.shard_hello.shard, 2u);
  EXPECT_EQ(hello_rt.frame.shard_hello.epoch, 7u);
  EXPECT_TRUE(hello_rt.frame.shard_hello.standby);
  EXPECT_EQ(hello_rt.frame.shard_hello.endpoint, "dust-fed-2");
  const DecodeResult reply_rt = [&] {
    const std::vector<std::uint8_t> bytes = encode_frame(frames[3]);
    return decode_frame(bytes.data(), bytes.size());
  }();
  EXPECT_TRUE(reply_rt.frame.delegate_reply.granted);
  EXPECT_EQ(reply_rt.frame.delegate_reply.destination, 30u);
  EXPECT_EQ(reply_rt.frame.delegate_reply.delegation_id, 99u);
  EXPECT_EQ(reply_rt.frame.trace_id, 0xF0u);
}

TEST(WireCodec, DataFramesRoundTrip) {
  util::Rng rng(0xDA7A);
  for (int i = 0; i < 200; ++i) {
    Frame frame =
        rng.bernoulli(0.5)
            ? wire::data_blocks_frame("dust-streamer-1", "dust-collector",
                                      check::random_data_blocks_body(rng))
            : wire::degrade_frame("dust-streamer-1", "dust-collector",
                                  check::random_degrade_body(rng));
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    const DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
    ASSERT_EQ(decoded.status, DecodeStatus::kOk) << "iteration " << i;
    EXPECT_EQ(decoded.frame.type, frame.type);
    EXPECT_EQ(encode_frame(decoded.frame), bytes) << "iteration " << i;
  }
}

TEST(WireCodec, GatherEncodeIsByteIdenticalToContiguousEncode) {
  // The zero-copy path must put exactly the same bytes on the wire as the
  // plain encoder — same layout, same streaming CRC.
  util::Rng rng(0x6A7437);
  for (int i = 0; i < 100; ++i) {
    Frame frame = wire::data_blocks_frame("dust-streamer-2", "dust-collector",
                                          check::random_data_blocks_body(rng));
    const std::vector<std::uint8_t> contiguous = encode_frame(frame);

    // Gather form: payloads move out of the frame into external storage the
    // segments borrow — the gather encoder rejects inline payload copies.
    std::vector<std::vector<std::uint8_t>> storage;
    std::vector<wire::PayloadRef> payloads;
    storage.reserve(frame.data_blocks.blocks.size());
    payloads.reserve(frame.data_blocks.blocks.size());
    for (wire::DataBlock& block : frame.data_blocks.blocks) {
      storage.push_back(std::move(block.payload));
      block.payload.clear();
      payloads.push_back(
          wire::PayloadRef{storage.back().data(), storage.back().size()});
    }
    const wire::GatherFrame gathered =
        wire::encode_data_blocks_gather(frame, payloads);

    std::vector<std::uint8_t> flattened = gathered.head;
    for (const wire::PayloadRef& segment : gathered.segments)
      flattened.insert(flattened.end(), segment.data, segment.data + segment.size);
    EXPECT_EQ(flattened, contiguous) << "iteration " << i;
    EXPECT_EQ(gathered.total_bytes(), contiguous.size());
  }
}

TEST(WireCodec, FrameBufferReassemblesArbitraryChunks) {
  util::Rng rng(0xBEEF);
  for (int round = 0; round < 20; ++round) {
    std::vector<Frame> frames;
    std::vector<std::uint8_t> stream;
    const std::size_t count = 1 + rng.below(6);
    for (std::size_t i = 0; i < count; ++i) {
      frames.push_back(check::random_frame(rng));
      const std::vector<std::uint8_t> bytes = encode_frame(frames.back());
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }

    wire::FrameBuffer buffer;
    std::size_t decoded_count = 0;
    std::size_t cursor = 0;
    while (cursor < stream.size() || true) {
      // Feed a random-sized chunk, then drain.
      if (cursor < stream.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.below(40), stream.size() - cursor);
        buffer.append(stream.data() + cursor, chunk);
        cursor += chunk;
      }
      while (true) {
        const DecodeResult decoded = buffer.next();
        if (decoded.status != DecodeStatus::kOk) {
          ASSERT_EQ(decoded.status, DecodeStatus::kNeedMoreData);
          break;
        }
        ASSERT_LT(decoded_count, frames.size());
        EXPECT_EQ(encode_frame(decoded.frame),
                  encode_frame(frames[decoded_count]));
        ++decoded_count;
      }
      if (cursor >= stream.size()) break;
    }
    EXPECT_EQ(decoded_count, frames.size());
    EXPECT_EQ(buffer.pending_bytes(), 0u);
  }
}

TEST(WireCodec, StatusAndTypeNamesAreStable) {
  EXPECT_STREQ(wire::to_string(DecodeStatus::kOk), "ok");
  EXPECT_STREQ(wire::to_string(DecodeStatus::kBadCrc), "bad_crc");
  EXPECT_STREQ(wire::to_string(FrameType::kStat), "stat");
  EXPECT_STREQ(wire::to_string(FrameType::kAnnounce), "announce");
  EXPECT_STREQ(wire::to_string(FrameType::kCapacityDigest), "capacity_digest");
  EXPECT_STREQ(wire::to_string(FrameType::kDelegateRequest),
               "delegate_request");
}

}  // namespace
}  // namespace dust
