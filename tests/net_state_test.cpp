#include "net/network_state.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"

namespace dust::net {
namespace {

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

TEST(LinkState, UtilizedBandwidth) {
  LinkState link{10000.0, 0.5};
  EXPECT_DOUBLE_EQ(link.utilized_bandwidth(), 5000.0);
}

TEST(NetworkState, ConstructsWithDefaults) {
  NetworkState net(triangle());
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.edge_count(), 3u);
  EXPECT_GT(net.link(0).utilized_bandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(net.node_utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(net.monitoring_data_mb(0), 0.0);
}

TEST(NetworkState, SetLinkValidates) {
  NetworkState net(triangle());
  net.set_link(0, LinkState{25000.0, 0.8});
  EXPECT_DOUBLE_EQ(net.link(0).utilized_bandwidth(), 20000.0);
  EXPECT_THROW(net.set_link(0, LinkState{0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(net.set_link(0, LinkState{100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(net.set_link(0, LinkState{100.0, 1.5}), std::invalid_argument);
  EXPECT_THROW(net.set_link(9, LinkState{}), std::out_of_range);
}

TEST(NetworkState, NodeUtilizationBounds) {
  NetworkState net(triangle());
  net.set_node_utilization(1, 85.0);
  EXPECT_DOUBLE_EQ(net.node_utilization(1), 85.0);
  EXPECT_THROW(net.set_node_utilization(1, -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_node_utilization(1, 101.0), std::invalid_argument);
  EXPECT_THROW(net.set_node_utilization(7, 50.0), std::out_of_range);
}

TEST(NetworkState, MonitoringDataValidation) {
  NetworkState net(triangle());
  net.set_monitoring_data_mb(2, 55.0);
  EXPECT_DOUBLE_EQ(net.monitoring_data_mb(2), 55.0);
  EXPECT_THROW(net.set_monitoring_data_mb(2, -0.1), std::invalid_argument);
}

TEST(NetworkState, UtilizedBandwidthsVector) {
  NetworkState net(triangle());
  net.set_link(0, LinkState{1000.0, 0.5});
  net.set_link(1, LinkState{2000.0, 0.25});
  net.set_link(2, LinkState{4000.0, 1.0});
  const auto lu = net.utilized_bandwidths();
  ASSERT_EQ(lu.size(), 3u);
  EXPECT_DOUBLE_EQ(lu[0], 500.0);
  EXPECT_DOUBLE_EQ(lu[1], 500.0);
  EXPECT_DOUBLE_EQ(lu[2], 4000.0);
}

TEST(NetworkState, InverseBandwidthCosts) {
  NetworkState net(triangle());
  net.set_link(0, LinkState{1000.0, 0.5});
  const auto costs = net.inverse_bandwidth_costs();
  EXPECT_DOUBLE_EQ(costs[0], 1.0 / 500.0);
}

}  // namespace
}  // namespace dust::net
