// The umbrella header must compile standalone and expose every layer.
#include "dust.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryLayerReachable) {
  dust::util::Rng rng(1);
  const dust::graph::FatTree topo(4);
  dust::net::NetworkState state(topo.graph());
  dust::solver::LinearProgram lp;
  dust::telemetry::Tsdb db;
  dust::sim::Simulator sim;
  dust::core::Nmdb nmdb(std::move(state), dust::core::Thresholds{});
  EXPECT_EQ(nmdb.node_count(), 20u);
  EXPECT_EQ(lp.variable_count(), 0u);
  EXPECT_EQ(db.metric_count(), 0u);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_GT(rng(), 0u);
}

}  // namespace
