#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dust::util {
namespace {

TEST(Table, PrintsTitleHeaderAndRows) {
  Table table("demo");
  table.header({"name", "value"});
  table.row({std::string("alpha"), std::int64_t{7}});
  table.row({std::string("beta"), 2.5});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("2.5000"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table table("p");
  table.set_precision(2).header({"x"});
  table.row({3.14159});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.1416"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table("t");
  table.header({"a", "b"});
  EXPECT_THROW(table.row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table table("t");
  table.header({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.row({std::int64_t{1}});
  table.row({std::int64_t{2}});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CsvBasic) {
  Table table("csv");
  table.header({"a", "b"});
  table.row({std::string("x"), std::int64_t{1}});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table table("csv");
  table.header({"a"});
  table.row({std::string("hello, \"world\"")});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, NoHeaderStillPrintsRows) {
  Table table("bare");
  table.row({std::string("only")});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table table("align");
  table.header({"col", "v"});
  table.row({std::string("wide-entry"), std::int64_t{1}});
  table.row({std::string("x"), std::int64_t{2}});
  std::ostringstream os;
  table.print(os);
  // Both data lines should have equal length (right-aligned columns).
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[lines.size() - 1].size(), lines[lines.size() - 2].size());
}

}  // namespace
}  // namespace dust::util
