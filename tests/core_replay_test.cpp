#include "core/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/topology.hpp"

namespace dust::core {
namespace {

std::vector<LoadUpdate> parse(const std::string& text) {
  std::istringstream in(text);
  return load_trace(in);
}

TEST(TraceParse, BasicAndSorted) {
  const auto trace = parse(
      "# a trace\n"
      "2000, 1, 85.5\n"
      "1000, 0, 90, 42.5\n"
      "\n"
      "3000, 2, 40\n");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].time_ms, 1000);  // sorted
  EXPECT_EQ(trace[0].node, 0u);
  EXPECT_DOUBLE_EQ(trace[0].monitoring_data_mb, 42.5);
  EXPECT_DOUBLE_EQ(trace[1].utilization_percent, 85.5);
  EXPECT_LT(trace[1].monitoring_data_mb, 0);  // absent field
}

TEST(TraceParse, RejectsMalformed) {
  EXPECT_THROW(parse("1000,0\n"), std::invalid_argument);
  EXPECT_THROW(parse("nonsense\n"), std::invalid_argument);
  EXPECT_THROW(parse("1000,0,150\n"), std::invalid_argument);  // >100%
  EXPECT_THROW(parse("1000,0,50,abc\n"), std::invalid_argument);
}

TEST(TraceParse, EmptyIsEmpty) { EXPECT_TRUE(parse("# nothing\n").empty()); }

Nmdb ring_nmdb() {
  net::NetworkState state(graph::make_ring(4));
  for (graph::NodeId v = 0; v < 4; ++v) {
    state.set_node_utilization(v, 50.0);
    state.set_monitoring_data_mb(v, 10.0);
  }
  return Nmdb(std::move(state), Thresholds{});
}

TEST(Replay, AppliesUpdatesAndPlacesLoad) {
  Nmdb nmdb = ring_nmdb();
  const auto trace = parse(
      "0, 0, 92\n"       // node 0 overloads at t=0
      "70000, 0, 92\n"); // still overloaded into the second cycle window
  ReplayOptions options;
  options.placement_period_ms = 60000;
  options.optimizer.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const ReplayReport report = replay_trace(nmdb, trace, options);
  EXPECT_EQ(report.updates_applied, 2u);
  EXPECT_GE(report.placement_cycles, 1u);
  EXPECT_GE(report.cycles_with_offloads, 1u);
  EXPECT_NEAR(report.total_offloaded, 12.0 * report.cycles_with_offloads, 1e-6);
  EXPECT_DOUBLE_EQ(report.total_unplaced, 0.0);
  // The plan was applied: node 0 sits at Cmax now.
  EXPECT_NEAR(nmdb.network().node_utilization(0), 80.0, 1e-9);
}

TEST(Replay, MeasureOnlyLeavesStateOverloaded) {
  Nmdb nmdb = ring_nmdb();
  const auto trace = parse("0, 0, 92\n60000, 1, 55\n");
  ReplayOptions options;
  options.apply_plans = false;
  options.optimizer.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const ReplayReport report = replay_trace(nmdb, trace, options);
  EXPECT_GT(report.overloaded_node_cycles, 0u);
  EXPECT_NEAR(nmdb.network().node_utilization(0), 92.0, 1e-9);
}

TEST(Replay, CapacityShortfallReportedAsUnplaced) {
  net::NetworkState state(graph::make_ring(3));
  state.set_node_utilization(0, 99.0);  // Cs = 19
  state.set_node_utilization(1, 58.0);  // Cd = 2
  state.set_node_utilization(2, 59.0);  // Cd = 1
  for (graph::NodeId v = 0; v < 3; ++v) state.set_monitoring_data_mb(v, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const auto trace = parse("0, 0, 99\n");
  ReplayOptions options;
  options.optimizer.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const ReplayReport report = replay_trace(nmdb, trace, options);
  EXPECT_NEAR(report.total_offloaded, 3.0, 1e-6);
  EXPECT_NEAR(report.total_unplaced, 16.0, 1e-6);
}

TEST(Replay, UnknownNodeThrows) {
  Nmdb nmdb = ring_nmdb();
  const auto trace = parse("0, 9, 50\n");
  EXPECT_THROW(replay_trace(nmdb, trace), std::invalid_argument);
}

TEST(Replay, EmptyTraceNoCycles) {
  Nmdb nmdb = ring_nmdb();
  const ReplayReport report = replay_trace(nmdb, {});
  EXPECT_EQ(report.placement_cycles, 0u);
}

TEST(Replay, OverloadFractionAccounting) {
  ReplayReport report;
  report.node_cycles = 40;
  report.overloaded_node_cycles = 10;
  EXPECT_DOUBLE_EQ(report.overload_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(ReplayReport{}.overload_fraction(), 0.0);
}

}  // namespace
}  // namespace dust::core
