// wire::SocketTransport over real loopback TCP: delivery, hub routing, QoS
// shedding, reconnect, and a full manager/client handshake where the socket
// run must land on the same placement as the simulated transport.
#include "wire/socket_transport.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "core/messages.hpp"
#include "util/rng.hpp"
#include "wire/demo_scenario.hpp"

namespace dust {
namespace {

using wire::SocketTransport;
using wire::SocketTransportConfig;

SocketTransportConfig hub_config() {
  SocketTransportConfig config;
  config.role = SocketTransportConfig::Role::kHub;
  return config;
}

SocketTransportConfig leaf_config(std::uint16_t port) {
  SocketTransportConfig config;
  config.role = SocketTransportConfig::Role::kLeaf;
  config.port = port;
  return config;
}

/// Pump every transport until `done` or the wall deadline. Returns whether
/// `done` came true.
bool pump_until(const std::vector<SocketTransport*>& transports,
                const std::function<bool()>& done, int deadline_ms = 5000) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!done()) {
    for (SocketTransport* transport : transports) transport->poll_once(1);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    if (elapsed.count() > deadline_ms) return false;
  }
  return true;
}

TEST(WireSocket, LeafDeliversToHubEndpoint) {
  SocketTransport hub(hub_config());
  SocketTransport leaf(leaf_config(hub.listen_port()));

  std::vector<sim::Envelope> received;
  hub.register_endpoint("dust-manager",
                        [&](const sim::Envelope& envelope) {
                          received.push_back(envelope);
                        });
  leaf.register_endpoint("dust-client-0", [](const sim::Envelope&) {});

  core::Message message{core::StatMsg{0, 55.5, 12.25, 3, 1.0, {0xAB, 0xCD}}};
  leaf.send("dust-client-0", "dust-manager", message, sim::Priority::kNormal,
            "stat", 0xAB);

  ASSERT_TRUE(pump_until({&hub, &leaf}, [&] { return !received.empty(); }));
  const sim::Envelope& envelope = received.front();
  EXPECT_EQ(envelope.from, "dust-client-0");
  EXPECT_EQ(envelope.to, "dust-manager");
  EXPECT_EQ(envelope.priority, sim::Priority::kNormal);
  EXPECT_EQ(envelope.kind, "stat");
  EXPECT_EQ(envelope.trace_id, 0xABu);
  const auto* stat = std::get_if<core::StatMsg>(
      std::any_cast<core::Message>(&envelope.payload));
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->utilization_percent, 55.5);
  EXPECT_EQ(stat->trace.trace_id, 0xABu);
  EXPECT_EQ(leaf.frames_sent(), 1u);
  EXPECT_EQ(hub.frames_received(), 1u);
}

TEST(WireSocket, HubForwardsBetweenLeaves) {
  SocketTransport hub(hub_config());
  SocketTransport left(leaf_config(hub.listen_port()));
  SocketTransport right(leaf_config(hub.listen_port()));

  std::vector<sim::Envelope> received;
  left.register_endpoint("dust-client-1", [](const sim::Envelope&) {});
  right.register_endpoint("dust-client-2",
                          [&](const sim::Envelope& envelope) {
                            received.push_back(envelope);
                          });

  // Wait for both announces to land before routing leaf-to-leaf.
  ASSERT_TRUE(pump_until({&hub, &left, &right},
                         [&] { return hub.peer_count() == 2; }));

  core::Message message{
      core::TelemetryDataMsg{1, telemetry::DeviceSnapshot{}}};
  left.send("dust-client-1", "dust-client-2", message, sim::Priority::kLow,
            "telemetry_data");

  ASSERT_TRUE(pump_until({&hub, &left, &right},
                         [&] { return !received.empty(); }));
  EXPECT_EQ(received.front().to, "dust-client-2");
  EXPECT_EQ(received.front().priority, sim::Priority::kLow);
  EXPECT_GE(hub.frames_forwarded(), 1u);
}

TEST(WireSocket, SameProcessEndpointsBypassTheWire) {
  SocketTransport hub(hub_config());
  std::vector<sim::Envelope> received;
  hub.register_endpoint("a", [](const sim::Envelope&) {});
  hub.register_endpoint("b", [&](const sim::Envelope& envelope) {
    received.push_back(envelope);
  });
  hub.send("a", "b", core::Message{core::AckMsg{3, 1000}},
           sim::Priority::kNormal, "ack");
  EXPECT_TRUE(received.empty());  // delivery happens inside poll_once
  hub.poll_once(0);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received.front().kind, "ack");
}

TEST(WireSocket, QueueCapShedsLowPriorityFirst) {
  // Point the leaf at a dead port: nothing ever flushes, so the outbound
  // queue hits the cap deterministically.
  SocketTransportConfig config = leaf_config(1);
  config.max_queued_frames = 3;
  SocketTransport leaf(config);
  leaf.register_endpoint("dust-client-0", [](const sim::Envelope&) {});

  core::Message low{core::TelemetryDataMsg{0, telemetry::DeviceSnapshot{}}};
  core::Message normal{core::KeepaliveMsg{0, 1}};
  for (int i = 0; i < 3; ++i)
    leaf.send("dust-client-0", "dust-manager", low, sim::Priority::kLow,
              "telemetry_data");
  EXPECT_EQ(leaf.dropped(), 0u);

  // kLow arriving at a full queue is shed outright...
  leaf.send("dust-client-0", "dust-manager", low, sim::Priority::kLow,
            "telemetry_data");
  EXPECT_EQ(leaf.dropped(), 1u);
  // ...while kNormal displaces a queued kLow frame instead.
  leaf.send("dust-client-0", "dust-manager", normal, sim::Priority::kNormal,
            "keepalive");
  EXPECT_EQ(leaf.dropped(), 2u);
  // Two queued kLow frames remain; two more kNormal sends displace both...
  for (int i = 0; i < 2; ++i)
    leaf.send("dust-client-0", "dust-manager", normal, sim::Priority::kNormal,
              "keepalive");
  EXPECT_EQ(leaf.dropped(), 4u);
  // ...and only when no kLow is left does kNormal overflow drop the new
  // frame.
  leaf.send("dust-client-0", "dust-manager", normal, sim::Priority::kNormal,
            "keepalive");
  EXPECT_EQ(leaf.dropped(), 5u);
}

TEST(WireSocket, LeafReconnectsAndRedeliversQueuedFrames) {
  SocketTransportConfig fast_retry;
  std::uint16_t port = 0;
  std::vector<sim::Envelope> received;
  auto make_hub = [&](std::uint16_t bind_port) {
    SocketTransportConfig config = hub_config();
    config.port = bind_port;
    auto hub = std::make_unique<SocketTransport>(config);
    hub->register_endpoint("dust-manager",
                           [&](const sim::Envelope& envelope) {
                             received.push_back(envelope);
                           });
    return hub;
  };

  auto hub = make_hub(0);
  port = hub->listen_port();
  SocketTransportConfig config = leaf_config(port);
  config.reconnect_initial_ms = 10;
  config.reconnect_max_ms = 50;
  SocketTransport leaf(config);
  leaf.register_endpoint("dust-client-0", [](const sim::Envelope&) {});

  core::Message message{core::KeepaliveMsg{0, 1}};
  leaf.send("dust-client-0", "dust-manager", message, sim::Priority::kNormal,
            "keepalive");
  ASSERT_TRUE(
      pump_until({hub.get(), &leaf}, [&] { return received.size() == 1; }));

  // Hub dies; frames sent during the outage queue on the leaf.
  hub.reset();
  leaf.send("dust-client-0", "dust-manager", message, sim::Priority::kNormal,
            "keepalive");
  ASSERT_TRUE(pump_until({&leaf}, [&] { return !leaf.connected(); }));

  // Hub returns on the same port: the leaf must reconnect, re-announce, and
  // flush the queued frame without any caller involvement.
  hub = make_hub(port);
  ASSERT_TRUE(
      pump_until({hub.get(), &leaf}, [&] { return received.size() == 2; }));
  EXPECT_GE(leaf.reconnects(), 1u);
  EXPECT_EQ(received.back().kind, "keepalive");
}

TEST(WireSocket, FederationFramesRouteToFederationHandler) {
  // Two shard managers on separate leaves; delegation frames cross the hub
  // and land on the peer's federation handler, never on the envelope path.
  SocketTransport hub(hub_config());
  SocketTransport left(leaf_config(hub.listen_port()));
  SocketTransport right(leaf_config(hub.listen_port()));

  left.register_endpoint("dust-fed-0", [](const sim::Envelope&) {});
  right.register_endpoint("dust-fed-1", [](const sim::Envelope&) {});
  std::vector<wire::Frame> at_right;
  right.set_federation_handler(
      [&](wire::Frame&& frame) { at_right.push_back(std::move(frame)); });

  ASSERT_TRUE(pump_until({&hub, &left, &right},
                         [&] { return hub.peer_count() == 2; }));

  wire::DelegateRequestBody request;
  request.shard = 0;
  request.epoch = 1;
  request.delegation_id = 7;
  request.busy = 3;
  request.amount = 2.5;
  request.agents = 1;
  ASSERT_TRUE(left.send_frame(
      wire::delegate_request_frame("dust-fed-0", "dust-fed-1", request, 0x77)));
  ASSERT_TRUE(pump_until({&hub, &left, &right},
                         [&] { return !at_right.empty(); }));
  EXPECT_EQ(at_right.front().type, wire::FrameType::kDelegateRequest);
  EXPECT_EQ(at_right.front().delegate_request.delegation_id, 7u);
  EXPECT_EQ(at_right.front().trace_id, 0x77u);

  // Same-process federation endpoints loop back through the codec and the
  // same handler (the in-process multi-shard test topology).
  std::vector<wire::Frame> at_hub;
  hub.register_endpoint("dust-fed-2", [](const sim::Envelope&) {});
  hub.register_endpoint("dust-fed-3", [](const sim::Envelope&) {});
  hub.set_federation_handler(
      [&](wire::Frame&& frame) { at_hub.push_back(std::move(frame)); });
  wire::CapacityDigestBody digest;
  digest.shard = 2;
  digest.epoch = 1;
  digest.spare = 9.0;
  ASSERT_TRUE(hub.send_frame(
      wire::capacity_digest_frame("dust-fed-2", "dust-fed-3", digest)));
  hub.poll_once(0);
  ASSERT_EQ(at_hub.size(), 1u);
  EXPECT_EQ(at_hub.front().type, wire::FrameType::kCapacityDigest);
  EXPECT_EQ(at_hub.front().capacity_digest.spare, 9.0);
}

TEST(WireSocket, ReconnectListenerFramesOutrunTheStaleBacklog) {
  // Satellite: on re-home the fresh handshake (announce, then whatever the
  // reconnect listener sends — a client's current STAT) must reach the new
  // hub BEFORE frames queued during the outage, so a restarted manager
  // never solves from pre-outage ordering.
  std::uint16_t port = 0;
  std::vector<sim::Envelope> received;
  auto make_hub = [&](std::uint16_t bind_port) {
    SocketTransportConfig config = hub_config();
    config.port = bind_port;
    auto hub = std::make_unique<SocketTransport>(config);
    hub->register_endpoint("dust-manager",
                           [&](const sim::Envelope& envelope) {
                             received.push_back(envelope);
                           });
    return hub;
  };

  auto hub = make_hub(0);
  port = hub->listen_port();
  SocketTransportConfig config = leaf_config(port);
  config.reconnect_initial_ms = 10;
  config.reconnect_max_ms = 50;
  SocketTransport leaf(config);
  leaf.register_endpoint("dust-client-0", [](const sim::Envelope&) {});
  int listener_calls = 0;
  leaf.set_reconnect_listener([&] {
    ++listener_calls;
    leaf.send("dust-client-0", "dust-manager",
              core::Message{core::StatMsg{0, 42.0, 1.0, 1, 1.0, {}}},
              sim::Priority::kNormal, "fresh-stat");
  });

  core::Message keepalive{core::KeepaliveMsg{0, 1}};
  leaf.send("dust-client-0", "dust-manager", keepalive, sim::Priority::kNormal,
            "keepalive");
  ASSERT_TRUE(
      pump_until({hub.get(), &leaf}, [&] { return received.size() == 1; }));
  EXPECT_EQ(listener_calls, 0);  // never on the first connect

  // Hub dies; a stale frame queues on the leaf during the outage.
  hub.reset();
  leaf.send("dust-client-0", "dust-manager", keepalive, sim::Priority::kNormal,
            "stale-keepalive");
  ASSERT_TRUE(pump_until({&leaf}, [&] { return !leaf.connected(); }));

  // Hub returns: listener fires once, and its STAT lands before the backlog.
  hub = make_hub(port);
  ASSERT_TRUE(
      pump_until({hub.get(), &leaf}, [&] { return received.size() == 3; }));
  EXPECT_EQ(listener_calls, 1);
  EXPECT_EQ(received[1].kind, "fresh-stat");
  EXPECT_EQ(received[2].kind, "stale-keepalive");
}

// The full control plane over sockets: handshakes, the STAT gate, and one
// placement cycle must create exactly the offload relationships the
// simulated transport creates for the same scenario.
TEST(WireSocket, PlacementOverSocketsMatchesSimTransport) {
  // Reference run: in-process simulated transport.
  std::vector<core::ActiveOffload> reference;
  {
    sim::Simulator sim;
    sim::Transport transport(sim, util::Rng(7));
    core::ManagerConfig config;
    config.update_interval_ms = 200;
    config.placement_period_ms = 1LL << 40;
    core::DustManager manager(sim, transport, wire::demo_nmdb(), config);
    core::Nmdb scenario = wire::demo_nmdb();
    std::vector<std::unique_ptr<core::DustClient>> clients;
    for (graph::NodeId v = 0; v < scenario.node_count(); ++v) {
      core::ClientConfig client_config;
      client_config.offload_capable = scenario.offload_capable(v);
      client_config.platform_factor = scenario.platform_factor(v);
      clients.push_back(std::make_unique<core::DustClient>(
          sim, transport, v, client_config, util::Rng(100 + v)));
      clients.back()->set_reported_state(
          scenario.network().node_utilization(v),
          scenario.network().monitoring_data_mb(v), 1);
      clients.back()->start();
    }
    manager.start();
    sim.run_until(2000);
    ASSERT_EQ(manager.nodes_reporting(), scenario.node_count());
    manager.run_placement_cycle();
    reference = manager.active_offloads();
    ASSERT_FALSE(reference.empty());
  }

  // Socket run: manager on a hub, all clients on one leaf, loopback TCP.
  sim::Simulator sim;
  SocketTransportConfig hub_cfg = hub_config();
  hub_cfg.now = [&sim] { return sim.now(); };
  SocketTransport hub(hub_cfg);
  SocketTransportConfig leaf_cfg = leaf_config(hub.listen_port());
  leaf_cfg.now = [&sim] { return sim.now(); };
  SocketTransport leaf(leaf_cfg);

  core::ManagerConfig config;
  config.update_interval_ms = 200;
  config.placement_period_ms = 1LL << 40;
  core::DustManager manager(sim, hub, wire::demo_nmdb(), config);
  core::Nmdb scenario = wire::demo_nmdb();
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < scenario.node_count(); ++v) {
    core::ClientConfig client_config;
    client_config.offload_capable = scenario.offload_capable(v);
    client_config.platform_factor = scenario.platform_factor(v);
    clients.push_back(std::make_unique<core::DustClient>(
        sim, leaf, v, client_config, util::Rng(100 + v)));
    clients.back()->set_reported_state(
        scenario.network().node_utilization(v),
        scenario.network().monitoring_data_mb(v), 1);
    clients.back()->start();
  }
  manager.start();

  sim::TimeMs t = 0;
  ASSERT_TRUE(pump_until({&hub, &leaf}, [&] {
    sim.run_until(t += 10);
    return manager.nodes_reporting() == scenario.node_count();
  }));
  manager.run_placement_cycle();
  const std::vector<core::ActiveOffload> socketed = manager.active_offloads();

  ASSERT_EQ(socketed.size(), reference.size());
  for (std::size_t i = 0; i < socketed.size(); ++i) {
    EXPECT_EQ(socketed[i].busy, reference[i].busy);
    EXPECT_EQ(socketed[i].destination, reference[i].destination);
    // Bit-identical x_ij: the NMDB both solves ran on was equal field for
    // field, wire round trip included.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(socketed[i].amount),
              std::bit_cast<std::uint64_t>(reference[i].amount));
  }

  // The offload handshake itself (request -> ack -> agent transfer) also
  // completes over the wire.
  ASSERT_TRUE(pump_until({&hub, &leaf}, [&] {
    sim.run_until(t += 10);
    for (const auto& offload : manager.active_offloads())
      if (!offload.acknowledged) return false;
    return true;
  }));
  // All clients share one leaf, so busy -> destination legs stay local;
  // the handshake legs (request / ack) did cross the hub.
  EXPECT_GE(hub.frames_received(), scenario.node_count());
}

}  // namespace
}  // namespace dust
