// Repro bundles: when a dust::check run fails, the RunReport must carry the
// flight-recorder tail captured at the first violation, and dump_repro must
// produce a self-contained bundle (violations + .scn scenario + timeline)
// that stays loadable by the scenario parser. Exercised via the synthetic
// InvariantOptions::force_failure hook so the failure is deterministic.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/runner.hpp"
#include "core/scenario.hpp"

namespace dust::check {
namespace {

RunOptions forced_failure_options() {
  RunOptions options;
  options.check_oracles = false;  // keep the run cheap; one violation suffices
  options.invariant.force_failure = true;
  return options;
}

TEST(HarnessRepro, ForcedViolationCapturesTheFlightTail) {
  const ScenarioSpec spec = generate_scenario(3);
  const RunReport report = run_scenario(spec, forced_failure_options());

  ASSERT_FALSE(report.passed());
  bool forced = false;
  for (const Violation& v : report.violations)
    if (v.invariant == "I0-forced") forced = true;
  EXPECT_TRUE(forced);

  // The tail was captured at the first violation and shows both the
  // violation marker and ordinary control-plane traffic around it.
  ASSERT_FALSE(report.flight_tail.empty());
  EXPECT_NE(report.flight_tail.find("invariant_violation"),
            std::string::npos);
  EXPECT_NE(report.flight_tail.find("I0-forced"), std::string::npos);
  EXPECT_NE(report.flight_tail.find("msg_"), std::string::npos);
}

TEST(HarnessRepro, CleanRunLeavesNoFlightTail) {
  const ScenarioSpec spec = generate_scenario(3);
  RunOptions options;
  options.check_oracles = false;
  const RunReport report = run_scenario(spec, options);
  ASSERT_TRUE(report.passed());
  EXPECT_TRUE(report.flight_tail.empty());
}

TEST(HarnessRepro, DumpReproBundlesScenarioViolationsAndTimeline) {
  const ScenarioSpec spec = generate_scenario(3);
  const RunReport report = run_scenario(spec, forced_failure_options());
  ASSERT_FALSE(report.passed());

  std::ostringstream os;
  dump_repro(os, spec, report);
  const std::string bundle = os.str();

  EXPECT_NE(bundle.find("# dust::check repro bundle"), std::string::npos);
  EXPECT_NE(bundle.find("I0-forced"), std::string::npos);
  EXPECT_NE(bundle.find("flight recorder tail"), std::string::npos);
  EXPECT_NE(bundle.find("invariant_violation"), std::string::npos);

  // The whole bundle must stay parseable as a scenario: every non-scenario
  // line is comment-prefixed, so the embedded .scn loads unchanged.
  std::istringstream is(bundle);
  const core::Nmdb loaded = core::load_scenario(is);
  EXPECT_EQ(loaded.network().graph().node_count(), spec.node_count);
}

}  // namespace
}  // namespace dust::check
