// dust::check invariant-catalog tests: hand-built placement problems with
// deliberately broken results must trip exactly the invariant they violate
// (I1 capacity, I2 drain, I3 hop bound, I4 membership, I5 sign/objective),
// and a correct optimum must pass clean.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/topology.hpp"
#include "solver/lp.hpp"

namespace dust::check {
namespace {

using core::Assignment;
using core::PlacementProblem;
using core::PlacementResult;

PlacementProblem two_by_two() {
  PlacementProblem p;
  p.busy = {0, 1};
  p.candidates = {2, 3};
  p.cs = {10.0, 5.0};
  p.cd = {12.0, 8.0};
  p.trmin = {1.0, 2.0,   // busy 0 → {2, 3}
             3.0, 4.0};  // busy 1 → {2, 3}
  return p;
}

PlacementResult clean_optimum() {
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  r.assignments = {{0, 2, 10.0, 1.0}, {1, 3, 5.0, 4.0}};
  r.objective = 10.0 * 1.0 + 5.0 * 4.0;
  return r;
}

bool has(const std::vector<Violation>& violations, const std::string& name) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.invariant == name; });
}

TEST(Invariants, CleanOptimumPasses) {
  const std::vector<Violation> v =
      check_placement(two_by_two(), clean_optimum());
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(Invariants, OverfilledCapacityTripsI1) {
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  // Everything dumped on destination 3 (Cd = 8): 15 > 8.
  r.assignments = {{0, 3, 10.0, 2.0}, {1, 3, 5.0, 4.0}};
  r.objective = 10.0 * 2.0 + 5.0 * 4.0;
  const std::vector<Violation> v = check_placement(two_by_two(), r);
  EXPECT_TRUE(has(v, "I1-capacity")) << describe(v);
  EXPECT_FALSE(has(v, "I2-drain")) << describe(v);
}

TEST(Invariants, UnderDrainTripsI2) {
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  r.assignments = {{0, 2, 6.0, 1.0}};  // busy 0 sheds 6 of 10; busy 1 nothing
  r.objective = 6.0;
  const std::vector<Violation> v = check_placement(two_by_two(), r);
  EXPECT_TRUE(has(v, "I2-drain")) << describe(v);
}

TEST(Invariants, PartialSolveAccountsForUnplacedRemainder) {
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  r.assignments = {{0, 2, 6.0, 1.0}};
  r.objective = 6.0;
  r.unplaced = 9.0;  // ΣCs − shed = 15 − 6
  const std::vector<Violation> ok = check_placement(two_by_two(), r);
  EXPECT_TRUE(ok.empty()) << describe(ok);

  r.unplaced = 3.0;  // books don't balance: shed 6 != 15 − 3
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I2-drain"));
}

TEST(Invariants, OverShedTripsI2EvenWhenPartial) {
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  // busy 1 (Cs = 5) ships 12 — more than it ever had to shed.
  r.assignments = {{1, 2, 12.0, 3.0}};
  r.objective = 36.0;
  r.unplaced = 3.0;
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I2-drain"));
}

TEST(Invariants, ForbiddenCellTripsI3) {
  PlacementProblem p = two_by_two();
  p.trmin[0] = solver::kInfinity;  // 0 → 2 has no route within max-hops
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  r.assignments = {{0, 2, 10.0, 0.0}, {1, 3, 5.0, 4.0}};
  r.objective = 20.0;
  EXPECT_TRUE(has(check_placement(p, r), "I3-hop-bound"));
}

TEST(Invariants, OutOfSetAssignmentTripsI4) {
  PlacementResult r = clean_optimum();
  r.assignments.push_back({7, 2, 0.0, 1.0});  // node 7 is not busy
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I4-membership"));
  r = clean_optimum();
  r.assignments[0].to = 1;  // busy node as destination
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I4-membership"));
}

TEST(Invariants, NegativeFlowTripsI5) {
  PlacementResult r = clean_optimum();
  r.assignments.push_back({0, 3, -2.0, 2.0});
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I5-sign"));
}

TEST(Invariants, MisreportedObjectiveTripsI5) {
  PlacementResult r = clean_optimum();
  r.objective = 999.0;
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I5-sign"));
}

TEST(Invariants, HeterogeneousCapacityUsesPlatformCoefficients) {
  PlacementProblem p = two_by_two();
  p.busy_factor = {2.0, 1.0};       // busy 0's load is twice as heavy...
  p.candidate_factor = {1.0, 1.0};  // ...on either destination
  PlacementResult r = clean_optimum();
  // busy 0 ships 10 units → destination 2 absorbs 20 > Cd 12.
  EXPECT_TRUE(has(check_placement(p, r), "I1-capacity"));
}

TEST(Invariants, UnboundedVerdictIsItselfAViolation) {
  PlacementResult r;
  r.status = solver::Status::kUnbounded;
  EXPECT_TRUE(has(check_placement(two_by_two(), r), "I2-drain"));
}

TEST(Invariants, ExplicitInfeasibleIsNotAViolation) {
  PlacementResult r;
  r.status = solver::Status::kInfeasible;
  EXPECT_TRUE(check_placement(two_by_two(), r).empty());
}

TEST(Invariants, RolesCatchOffloadToOptedOutNode) {
  net::NetworkState state(graph::make_ring(4));
  core::Nmdb nmdb(std::move(state), core::Thresholds{});
  nmdb.set_offload_capable(2, false);
  PlacementResult r;
  r.status = solver::Status::kOptimal;
  r.assignments = {{0, 2, 5.0, 1.0}};
  const std::vector<Violation> v = check_roles(nmdb, r);
  ASSERT_TRUE(has(v, "I4-membership")) << describe(v);
  EXPECT_NE(v.front().detail.find("None-offloading"), std::string::npos);
  nmdb.set_offload_capable(2, true);
  EXPECT_TRUE(check_roles(nmdb, r).empty());
}

}  // namespace
}  // namespace dust::check
