// Golden-file regression on the paper's Fig. 4 worked example: load
// scenarios/fig4.scn, run the exact placement and the Algorithm-1 heuristic,
// and diff a pinned rendering against tests/golden/fig4.expected. Any change
// to the model build, Trmin evaluation, solver, or heuristic that moves the
// Fig. 4 answer shows up as a one-line diff here. Regenerate deliberately
// with:  DUST_REGEN_GOLDEN=1 ./harness_tests --gtest_filter='GoldenFig4.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "core/scenario.hpp"

namespace dust::core {
namespace {

std::string render(const Nmdb& nmdb) {
  PlacementOptions placement;
  placement.max_hops = 4;
  placement.evaluator = net::EvaluatorMode::kEnumerate;  // paper-faithful
  const PlacementProblem problem = build_placement_problem(nmdb, placement);
  const PlacementResult exact = OptimizationEngine().solve(problem);
  const HeuristicResult heuristic = HeuristicEngine().run(nmdb);

  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "busy:";
  for (graph::NodeId v : problem.busy) os << " " << v;
  os << "\ncandidates:";
  for (graph::NodeId v : problem.candidates) os << " " << v;
  os << "\n";
  for (std::size_t bi = 0; bi < problem.busy.size(); ++bi)
    for (std::size_t cj = 0; cj < problem.candidates.size(); ++cj)
      os << "trmin " << problem.busy[bi] << "->" << problem.candidates[cj]
         << " " << problem.trmin_at(bi, cj) << "\n";
  os << "exact status " << solver::to_string(exact.status) << "\n";
  for (const Assignment& a : exact.assignments)
    os << "offload " << a.from << "->" << a.to << " amount " << a.amount
       << " trmin " << a.trmin_seconds << "\n";
  os << "exact objective " << exact.objective << "\n";
  for (const Assignment& a : heuristic.assignments)
    os << "heuristic " << a.from << "->" << a.to << " amount " << a.amount
       << "\n";
  os << "heuristic objective " << heuristic.objective << "\n";
  os << "heuristic hfr_percent " << heuristic.hfr_percent() << "\n";
  return os.str();
}

TEST(GoldenFig4, PlacementAndHeuristicMatchPinnedExpectation) {
  const std::string scn_path =
      std::string(DUST_SOURCE_DIR) + "/scenarios/fig4.scn";
  std::ifstream scn(scn_path);
  ASSERT_TRUE(scn) << "cannot open " << scn_path;
  const Nmdb nmdb = load_scenario(scn);
  const std::string actual = render(nmdb);

  const std::string golden_path =
      std::string(DUST_SOURCE_DIR) + "/tests/golden/fig4.expected";
  if (std::getenv("DUST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden) << "missing " << golden_path
                      << " — run once with DUST_REGEN_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "Fig. 4 output drifted. If the change is intentional, regenerate "
         "with DUST_REGEN_GOLDEN=1 and review the diff.";
}

}  // namespace
}  // namespace dust::core
