// dust::check smoke: 50 seeded random scenarios (mixed topologies, churn,
// node deaths, transport fault schedules) through the full Manager/Client
// protocol loop, with the invariant catalog checked after every placement
// cycle and the differential oracles on size-gated cycles. A failure prints
// the seed and the annotated .scn dump, so the exact case replays with
//   ScenarioSpec spec = generate_scenario(<seed>); run_scenario(spec);
#include "check/runner.hpp"

#include <gtest/gtest.h>

#include "check/shrink.hpp"

namespace dust::check {
namespace {

class HarnessSmoke : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarnessSmoke, InvariantsAndOraclesHoldUnderFaults) {
  const std::uint64_t seed = GetParam();
  const ScenarioSpec spec = generate_scenario(seed);
  const RunReport report = run_scenario(spec);
  EXPECT_TRUE(report.passed())
      << "seed " << seed << " (" << to_string(spec.topology) << ", n="
      << spec.node_count << ") violated:\n"
      << describe(report.violations) << "\nreplayable scenario:\n"
      << dump_scenario(spec);
  EXPECT_GT(report.cycles_observed, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarnessSmoke,
                         ::testing::Range<std::uint64_t>(1, 51));

// The fuzz only proves something if the generated population actually
// exercises the interesting machinery: offloads, keepalive failures with
// replica substitution, and message drops from the fault schedules.
TEST(HarnessSmokeCoverage, PopulationExercisesProtocolAndFaults) {
  std::size_t offloads = 0, keepalive_failures = 0, oracle_cycles = 0;
  std::uint64_t reps = 0, dropped = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const RunReport report = run_scenario(generate_scenario(seed));
    offloads += report.offloads_created;
    keepalive_failures += report.keepalive_failures;
    oracle_cycles += report.oracle_cycles;
    reps += report.reps_received;
    dropped += report.messages_dropped;
  }
  EXPECT_GT(offloads, 0u);
  EXPECT_GT(keepalive_failures, 0u);
  EXPECT_GT(oracle_cycles, 0u);
  EXPECT_GT(reps, 0u);
  EXPECT_GT(dropped, 0u);
}

}  // namespace
}  // namespace dust::check
