// dust::check generator tests: scenario generation must be deterministic
// (same seed → bit-identical spec, topology, and NMDB), structurally valid
// (connected topology, per-node vectors sized to node_count, busy nodes
// present), and dumpable to a .scn the core parser can load back.
#include "check/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"

namespace dust::check {
namespace {

TEST(Generator, SameSeedSameSpec) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    const ScenarioSpec a = generate_scenario(seed);
    const ScenarioSpec b = generate_scenario(seed);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.node_count, b.node_count);
    EXPECT_EQ(a.load, b.load);
    EXPECT_EQ(a.data_mb, b.data_mb);
    EXPECT_EQ(a.agents, b.agents);
    EXPECT_EQ(a.capable, b.capable);
    EXPECT_EQ(a.platform_factor, b.platform_factor);
    EXPECT_EQ(a.churn.size(), b.churn.size());
    EXPECT_EQ(a.deaths.size(), b.deaths.size());
    EXPECT_EQ(a.faults.size(), b.faults.size());
    // The annotated dump covers every field the struct comparison above
    // does not (event payloads, fault endpoints, duration).
    EXPECT_EQ(dump_scenario(a), dump_scenario(b)) << "seed " << seed;
  }
}

TEST(Generator, DifferentSeedsProduceDifferentScenarios) {
  EXPECT_NE(dump_scenario(generate_scenario(1)),
            dump_scenario(generate_scenario(2)));
}

TEST(Generator, VectorsSizedToNodeCountAndBusyNodesExist) {
  // Busy seeding is per-node Bernoulli, so an individual small scenario may
  // start with no busy node (churn creates some later); the population as a
  // whole must be dominated by scenarios that open with work to place.
  std::size_t with_busy = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    ASSERT_GT(spec.node_count, 0u) << "seed " << seed;
    EXPECT_EQ(spec.load.size(), spec.node_count);
    EXPECT_EQ(spec.data_mb.size(), spec.node_count);
    EXPECT_EQ(spec.agents.size(), spec.node_count);
    EXPECT_EQ(spec.capable.size(), spec.node_count);
    EXPECT_EQ(spec.platform_factor.size(), spec.node_count);
    if (!build_nmdb(spec).busy_nodes().empty()) ++with_busy;
  }
  EXPECT_GE(with_busy, 15u);
}

TEST(Generator, TopologyDeterministicAndConnected) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const graph::Graph g1 = build_topology(spec);
    const graph::Graph g2 = build_topology(spec);
    EXPECT_EQ(g1.node_count(), spec.node_count) << "seed " << seed;
    EXPECT_EQ(g1.node_count(), g2.node_count());
    EXPECT_EQ(g1.edge_count(), g2.edge_count()) << "seed " << seed;
    EXPECT_TRUE(g1.connected())
        << "seed " << seed << " (" << to_string(spec.topology) << ", n="
        << spec.node_count << ") is disconnected";
  }
}

TEST(Generator, AllTopologyKindsAppearAcrossSeeds) {
  bool fat_tree = false, random_regular = false, heterogeneous = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    switch (generate_scenario(seed).topology) {
      case TopologyKind::kFatTree: fat_tree = true; break;
      case TopologyKind::kRandomRegular: random_regular = true; break;
      case TopologyKind::kHeterogeneousDpu: heterogeneous = true; break;
    }
  }
  EXPECT_TRUE(fat_tree);
  EXPECT_TRUE(random_regular);
  EXPECT_TRUE(heterogeneous);
}

TEST(Generator, RespectsMaxNodes) {
  GeneratorOptions options;
  options.max_nodes = 24;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    EXPECT_LE(generate_scenario(seed, options).node_count, 24u)
        << "seed " << seed;
}

TEST(Generator, NmdbMatchesSpecInitialState) {
  const ScenarioSpec spec = generate_scenario(5);
  const core::Nmdb nmdb = build_nmdb(spec);
  ASSERT_EQ(nmdb.node_count(), spec.node_count);
  for (graph::NodeId v = 0; v < spec.node_count; ++v) {
    EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(v), spec.load[v]);
    EXPECT_DOUBLE_EQ(nmdb.network().monitoring_data_mb(v), spec.data_mb[v]);
    EXPECT_EQ(nmdb.agent_count(v), spec.agents[v]);
    EXPECT_EQ(nmdb.offload_capable(v), spec.capable[v] != 0);
    EXPECT_DOUBLE_EQ(nmdb.platform_factor(v), spec.platform_factor[v]);
  }
}

TEST(Generator, DumpRecordsSeedAndRoundTripsThroughParser) {
  const ScenarioSpec spec = generate_scenario(9);
  const std::string dump = dump_scenario(spec);
  EXPECT_NE(dump.find("seed"), std::string::npos);
  EXPECT_NE(dump.find(std::to_string(spec.seed)), std::string::npos);

  // The '#' annotations must not break the core parser: the dump is a
  // loadable .scn describing the t=0 state.
  std::istringstream in(dump);
  const core::Nmdb reloaded = core::load_scenario(in);
  const core::Nmdb direct = build_nmdb(spec);
  ASSERT_EQ(reloaded.node_count(), direct.node_count());
  EXPECT_EQ(reloaded.network().edge_count(), direct.network().edge_count());
  for (graph::NodeId v = 0; v < spec.node_count; ++v) {
    EXPECT_DOUBLE_EQ(reloaded.network().node_utilization(v),
                     direct.network().node_utilization(v));
    EXPECT_EQ(reloaded.offload_capable(v), direct.offload_capable(v));
  }
  EXPECT_EQ(reloaded.busy_nodes(), direct.busy_nodes());
}

}  // namespace
}  // namespace dust::check
