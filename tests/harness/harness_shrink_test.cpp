// dust::check shrinker tests: the delta-debugger must (a) reduce scenarios
// along every axis it owns (topology ladder, event lists, duration) while
// preserving the failure, and (b) — the end-to-end demo the harness exists
// for — take a deliberately injected capacity-constraint bug on a full-size
// random scenario and hand back a ≤ 8-node repro that still fails.
#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "core/optimizer.hpp"

namespace dust::check {
namespace {

// The classic missed-constraint bug: the solver is shown a relaxed capacity
// on one destination (as if a bounds check were dropped), so the plan it
// returns can overfill the real Cd — exactly what invariant I1 exists to
// catch when the result is checked against the *true* problem.
bool capacity_bug_caught(const ScenarioSpec& spec) {
  const core::Nmdb nmdb = build_nmdb(spec);
  core::PlacementOptions placement;
  placement.max_hops = spec.max_hops;
  placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const core::PlacementProblem problem =
      core::build_placement_problem(nmdb, placement);
  if (problem.busy.empty() || problem.candidates.empty()) return false;

  core::PlacementProblem buggy = problem;
  std::size_t target = 0;  // relax the tightest destination
  for (std::size_t j = 1; j < buggy.cd.size(); ++j)
    if (buggy.cd[j] < buggy.cd[target]) target = j;
  buggy.cd[target] = 1e6;

  core::OptimizerOptions options;
  options.allow_partial = true;
  const core::OptimizationEngine engine(options);
  const core::PlacementResult result = engine.solve(buggy);
  for (const Violation& v : check_placement(problem, result))
    if (v.invariant == "I1-capacity") return true;
  return false;
}

TEST(Shrink, InjectedCapacityBugShrinksToSmallRepro) {
  bool shrunk_small = false;
  for (std::uint64_t seed = 1; seed <= 30 && !shrunk_small; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    if (!capacity_bug_caught(spec)) continue;
    ShrinkStats stats;
    const ScenarioSpec shrunk =
        shrink_scenario(spec, capacity_bug_caught, 400, &stats);
    EXPECT_TRUE(capacity_bug_caught(shrunk))
        << "seed " << seed << ": shrinker returned a non-failing scenario";
    EXPECT_LE(shrunk.node_count, spec.node_count);
    EXPECT_GT(stats.attempts, 0u);
    if (shrunk.node_count <= 8) {
      shrunk_small = true;
      SCOPED_TRACE(dump_scenario(shrunk));
      EXPECT_GE(stats.accepted, 1u);
    }
  }
  EXPECT_TRUE(shrunk_small)
      << "no seed in 1..30 shrank the injected capacity bug to ≤ 8 nodes";
}

TEST(Shrink, RemovesEventsTheFailureDoesNotNeed) {
  // A predicate that only needs one death event: everything else —
  // churn, faults, topology size, duration slack — must shrink away.
  const auto needs_a_death = [](const ScenarioSpec& s) {
    return !s.deaths.empty();
  };
  GeneratorOptions options;
  options.death_events = 2;
  const ScenarioSpec spec = generate_scenario(11, options);
  ASSERT_TRUE(needs_a_death(spec));
  ASSERT_FALSE(spec.churn.empty());

  ShrinkStats stats;
  const ScenarioSpec shrunk =
      shrink_scenario(spec, needs_a_death, 400, &stats);
  EXPECT_TRUE(needs_a_death(shrunk));
  EXPECT_EQ(shrunk.deaths.size(), 1u);   // ddmin kept exactly one
  EXPECT_TRUE(shrunk.churn.empty());     // irrelevant events dropped
  EXPECT_TRUE(shrunk.faults.empty());
  EXPECT_LE(shrunk.node_count, spec.node_count);
  EXPECT_LE(shrunk.duration_ms, spec.duration_ms);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Shrink, FixpointWhenNothingCanBeRemoved) {
  const auto always_fails = [](const ScenarioSpec&) { return true; };
  GeneratorOptions options;
  options.churn_events = 0;
  options.death_events = 0;
  options.fault_events = 0;
  const ScenarioSpec spec = generate_scenario(3, options);
  const ScenarioSpec shrunk = shrink_scenario(spec, always_fails, 400);
  // Bottom of the ladder: a 4-node random graph with no events.
  EXPECT_EQ(shrunk.topology, TopologyKind::kRandomRegular);
  EXPECT_EQ(shrunk.node_count, 4u);
  EXPECT_TRUE(shrunk.churn.empty());
  EXPECT_TRUE(shrunk.deaths.empty());
  EXPECT_TRUE(shrunk.faults.empty());
}

TEST(Shrink, NeverAcceptsAPassingReduction) {
  // Predicate pinned to a topology size: any reduction below it passes,
  // so the shrinker must return a spec that still fails.
  const ScenarioSpec spec = generate_scenario(4);
  const std::uint32_t pin = spec.node_count;
  const auto fails = [pin](const ScenarioSpec& s) {
    return s.node_count >= pin;
  };
  ASSERT_TRUE(fails(spec));
  const ScenarioSpec shrunk = shrink_scenario(spec, fails, 400);
  EXPECT_TRUE(fails(shrunk));
}

}  // namespace
}  // namespace dust::check
