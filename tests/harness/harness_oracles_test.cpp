// dust::check differential-oracle tests. The exhaustive basis enumerator is
// the ground truth: on every instance small enough to enumerate, the
// production transportation solver (and through cross_check_solvers, the
// general simplex, min-cost-flow, and branch-and-bound backends) must agree
// with it on both verdict and objective. The NMDB-level oracles (Trmin
// cache, warm start, heuristic soundness) must come back clean on generated
// scenarios.
#include "check/oracles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/scenario.hpp"
#include "core/placement.hpp"
#include "solver/exhaustive.hpp"
#include "solver/transportation.hpp"
#include "util/rng.hpp"

namespace dust::check {
namespace {

solver::TransportationProblem random_instance(util::Rng& rng) {
  solver::TransportationProblem t;
  const std::size_t m = static_cast<std::size_t>(rng.range(1, 3));
  const std::size_t n = static_cast<std::size_t>(rng.range(1, 4));
  for (std::size_t i = 0; i < m; ++i)
    t.supply.push_back(rng.uniform(1.0, 20.0));
  for (std::size_t j = 0; j < n; ++j)
    t.capacity.push_back(rng.uniform(1.0, 20.0));
  for (std::size_t cell = 0; cell < m * n; ++cell)
    t.cost.push_back(rng.bernoulli(0.1) ? solver::kInfinity
                                        : rng.uniform(0.1, 10.0));
  return t;
}

TEST(Oracles, ExhaustiveMatchesTransportationOnRandomInstances) {
  util::Rng rng(99);
  std::size_t optimal_seen = 0;
  std::size_t infeasible_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const solver::TransportationProblem t = random_instance(rng);
    ASSERT_LE(solver::exhaustive_base_count(t), 200000u);
    const solver::TransportationResult truth =
        solver::solve_transportation_exhaustive(t);
    const solver::TransportationResult fast = solver::solve_transportation(t);
    ASSERT_EQ(fast.status, truth.status)
        << "trial " << trial << ": production solver verdict "
        << solver::to_string(fast.status) << " vs brute-force "
        << solver::to_string(truth.status);
    if (truth.optimal()) {
      ++optimal_seen;
      EXPECT_NEAR(fast.objective, truth.objective,
                  1e-6 * (1.0 + truth.objective))
          << "trial " << trial;
    } else {
      ++infeasible_seen;
    }
  }
  // The mix must actually exercise both verdicts or the test proves little.
  EXPECT_GT(optimal_seen, 20u);
  EXPECT_GT(infeasible_seen, 20u);
}

TEST(Oracles, ExhaustiveFindsKnownOptimum) {
  // Degenerate-free 2x2: optimum ships 8 at cost 1 and 4 at cost 2
  // (supply 0 → dest 0, supply 1 split is forced by capacities).
  solver::TransportationProblem t;
  t.supply = {8.0, 4.0};
  t.capacity = {8.0, 10.0};
  t.cost = {1.0, 5.0,
            9.0, 2.0};
  const solver::TransportationResult truth =
      solver::solve_transportation_exhaustive(t);
  ASSERT_TRUE(truth.optimal());
  EXPECT_NEAR(truth.objective, 8.0 * 1.0 + 4.0 * 2.0, 1e-9);
}

TEST(Oracles, ExhaustiveReportsInfeasibleWhenCapacityShort) {
  solver::TransportationProblem t;
  t.supply = {10.0};
  t.capacity = {4.0, 3.0};
  t.cost = {1.0, 2.0};
  EXPECT_EQ(solver::solve_transportation_exhaustive(t).status,
            solver::Status::kInfeasible);
}

TEST(Oracles, SolverCrossCheckCleanOnGeneratedScenarios) {
  OracleOptions options;
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const core::Nmdb nmdb = build_nmdb(spec);
    core::PlacementOptions placement;
    placement.max_hops = spec.max_hops;
    placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    const core::PlacementProblem problem =
        core::build_placement_problem(nmdb, placement);
    if (problem.busy.size() * problem.candidates.size() > options.max_cells)
      continue;
    ++checked;
    const std::vector<Violation> v = cross_check_solvers(problem, options);
    EXPECT_TRUE(v.empty()) << "seed " << seed << ":\n" << describe(v);
  }
  EXPECT_GT(checked, 0u) << "no generated scenario was small enough to check";
}

TEST(Oracles, NmdbCrossCheckCleanOnGeneratedScenarios) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const core::Nmdb nmdb = build_nmdb(spec);
    core::PlacementOptions placement;
    placement.max_hops = spec.max_hops;
    placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    const std::vector<Violation> v = cross_check_nmdb(nmdb, placement, {});
    EXPECT_TRUE(v.empty()) << "seed " << seed << ":\n" << describe(v);
  }
}

// O6 ground truth at the solver level: across fuzzed cost-delta schedules
// (supplies and capacities frozen, costs perturbed step after step), the
// dirty-basis re-solve must agree with a cold solve — and with the
// exhaustive basis enumerator where enumerable — on every step, while
// actually taking the dirty path (cost-only changes keep the retained basis
// eligible).
TEST(Oracles, DirtyBasisMatchesColdOnFuzzedCostDeltas) {
  util::Rng rng(0xD0575EEDull);
  std::size_t dirty_steps_checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    solver::TransportationProblem t = random_instance(rng);
    solver::TransportationBasis basis;
    const solver::TransportationResult primed =
        solver::solve_transportation_dirty(t, basis);
    if (!primed.optimal()) continue;  // nothing retained to re-solve from
    for (int step = 0; step < 6; ++step) {
      // Cost-only delta: reprice a handful of finite cells.
      const std::size_t cells = t.cost.size();
      const std::size_t count = 1 + rng.below(std::max<std::size_t>(1, cells / 3));
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t cell = rng.below(cells);
        if (t.cost[cell] == solver::kInfinity) continue;
        t.cost[cell] = std::max(1e-9, t.cost[cell] * rng.uniform(0.5, 2.0));
      }
      const solver::TransportationResult cold = solver::solve_transportation(t);
      const solver::TransportationResult dirty =
          solver::solve_transportation_dirty(t, basis);
      ASSERT_EQ(dirty.status, cold.status) << "trial " << trial << " step "
                                           << step;
      EXPECT_TRUE(dirty.dirty_resolve)
          << "trial " << trial << " step " << step
          << ": cost-only change did not take the dirty path";
      if (!cold.optimal()) break;
      ++dirty_steps_checked;
      EXPECT_NEAR(dirty.objective, cold.objective,
                  1e-6 * (1.0 + cold.objective))
          << "trial " << trial << " step " << step;
      if (solver::exhaustive_base_count(t) <= 200000u) {
        const solver::TransportationResult truth =
            solver::solve_transportation_exhaustive(t);
        ASSERT_EQ(dirty.status, truth.status) << "trial " << trial;
        EXPECT_NEAR(dirty.objective, truth.objective,
                    1e-6 * (1.0 + truth.objective))
            << "trial " << trial << " step " << step;
      }
    }
  }
  EXPECT_GT(dirty_steps_checked, 100u);
}

// A quantity change must evict the retained basis (its flows solved a
// different supply/demand system), falling back to a cold start — silently
// reusing it would be wrong, not just slow.
TEST(Oracles, DirtyBasisEvictedOnQuantityChange) {
  solver::TransportationProblem t;
  t.supply = {8.0, 4.0};
  t.capacity = {8.0, 10.0};
  t.cost = {1.0, 5.0, 9.0, 2.0};
  solver::TransportationBasis basis;
  ASSERT_TRUE(solver::solve_transportation_dirty(t, basis).optimal());
  ASSERT_TRUE(basis.valid);
  t.supply[0] = 6.0;  // quantities changed: the basis no longer applies
  const solver::TransportationResult r =
      solver::solve_transportation_dirty(t, basis);
  ASSERT_TRUE(r.optimal());
  EXPECT_FALSE(r.dirty_resolve);
  EXPECT_NEAR(r.objective,
              solver::solve_transportation_exhaustive(t).objective, 1e-9);
}

// O6 through the harness: a longer fuzz schedule than the default must stay
// clean on generated scenarios.
TEST(Oracles, DirtyBasisOracleCleanOnLongSchedules) {
  OracleOptions options;
  options.dirty_basis_steps = 24;
  for (std::uint64_t seed : {2u, 7u, 11u}) {
    const ScenarioSpec spec = generate_scenario(seed);
    const core::Nmdb nmdb = build_nmdb(spec);
    core::PlacementOptions placement;
    placement.max_hops = spec.max_hops;
    placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    const std::vector<Violation> v =
        cross_check_nmdb(nmdb, placement, options);
    EXPECT_TRUE(v.empty()) << "seed " << seed << ":\n" << describe(v);
  }
}

TEST(Oracles, CrossCheckSkipsOversizedProblems) {
  core::PlacementProblem big;
  OracleOptions options;
  options.max_cells = 4;
  big.busy = {0, 1, 2};
  big.candidates = {3, 4, 5};
  big.cs = {1.0, 1.0, 1.0};
  big.cd = {2.0, 2.0, 2.0};
  big.trmin.assign(9, 1.0);
  EXPECT_TRUE(cross_check_solvers(big, options).empty());  // gated, not run
}

}  // namespace
}  // namespace dust::check
