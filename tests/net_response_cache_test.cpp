#include "net/response_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::net {
namespace {

NetworkState fat_tree_net(std::uint32_t k, util::Rng& rng) {
  graph::FatTree topo(k);
  NetworkState net(topo.graph());
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e)
    net.set_link(e, LinkState{1000.0, rng.uniform(0.05, 0.95)});
  return net;
}

/// Reference: evaluate from scratch against the live network state.
ResponseTimeResult fresh_row(const NetworkState& net, graph::NodeId source,
                             double data_mb, const ResponseTimeOptions& opt) {
  return min_response_times(net, source, data_mb, opt);
}

void expect_bit_identical(const ResponseTimeResult& cached,
                          const ResponseTimeResult& fresh,
                          graph::NodeId source) {
  ASSERT_EQ(cached.trmin_seconds.size(), fresh.trmin_seconds.size());
  for (std::size_t v = 0; v < fresh.trmin_seconds.size(); ++v) {
    // EXPECT_EQ on doubles is exact — bit-identical is the contract, not
    // merely "close": the cache stores unit rows and rescales by D_i, which
    // must reproduce the direct evaluation to the last ulp.
    EXPECT_EQ(cached.trmin_seconds[v], fresh.trmin_seconds[v])
        << "source " << source << " dest " << v;
  }
}

TEST(ResponseTimeCache, FirstCycleMissesThenHits) {
  util::Rng rng(7);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeOptions opt{3, EvaluatorMode::kHopBoundedDp, 0};
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  const auto a = cache.row(net, 0, 10.0, opt);
  const auto b = cache.row(net, 0, 10.0, opt);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(b.work, 0u);  // served from cache
  expect_bit_identical(a, b, 0);
  expect_bit_identical(b, fresh_row(net, 0, 10.0, opt), 0);
}

TEST(ResponseTimeCache, RescalesForDifferentDataVolumes) {
  util::Rng rng(11);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeOptions opt{4, EvaluatorMode::kHopBoundedDp, 0};
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  (void)cache.row(net, 2, 1.0, opt);  // prime with the unit volume
  for (double data_mb : {0.25, 3.0, 17.5, 1234.0})
    expect_bit_identical(cache.row(net, 2, data_mb, opt),
                         fresh_row(net, 2, data_mb, opt), 2);
  EXPECT_EQ(cache.stats().misses, 1u);  // D_i changes never recompute
}

TEST(ResponseTimeCache, OptionChangeIsAMiss) {
  util::Rng rng(3);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  ResponseTimeOptions dp{3, EvaluatorMode::kHopBoundedDp, 0};
  ResponseTimeOptions wider{4, EvaluatorMode::kHopBoundedDp, 0};
  (void)cache.row(net, 1, 5.0, dp);
  expect_bit_identical(cache.row(net, 1, 5.0, wider),
                       fresh_row(net, 1, 5.0, wider), 1);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ResponseTimeCache, OutOfSyncQueriesBypassTheCache) {
  util::Rng rng(5);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeOptions opt{3, EvaluatorMode::kHopBoundedDp, 0};
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  (void)cache.row(net, 0, 2.0, opt);
  // Move a link without begin_cycle: the cache must not serve stale rows.
  LinkState moved = net.link(0);
  moved.utilization = moved.utilization < 0.5 ? 0.9 : 0.1;
  net.set_link(0, moved);
  const auto direct = cache.row(net, 0, 2.0, opt);
  expect_bit_identical(direct, fresh_row(net, 0, 2.0, opt), 0);
  EXPECT_GE(cache.stats().bypasses, 1u);
}

TEST(ResponseTimeCache, EpsilonFiltersSubThresholdChurn) {
  util::Rng rng(13);
  NetworkState net = fat_tree_net(4, rng);
  net.set_link_epsilon(0.05);
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  ResponseTimeOptions opt{3, EvaluatorMode::kHopBoundedDp, 0};
  for (graph::NodeId s = 0; s < net.node_count(); ++s)
    (void)cache.row(net, s, 1.0, opt);
  const auto misses_before = cache.stats().misses;
  // Jitter every link by well under 5% of its baseline: nothing goes dirty.
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e) {
    LinkState state = net.link(e);
    state.utilization = std::min(1.0, state.utilization * 1.01);
    net.set_link(e, state);
  }
  EXPECT_TRUE(net.dirty_links().empty());
  cache.begin_cycle(net);
  for (graph::NodeId s = 0; s < net.node_count(); ++s)
    (void)cache.row(net, s, 1.0, opt);
  EXPECT_EQ(cache.stats().misses, misses_before);  // 100% hits
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // Crossing the band dirties the link and drops the rows in its ball.
  LinkState moved = net.link(0);
  moved.utilization = std::min(1.0, moved.utilization * 1.2);
  net.set_link(0, moved);
  EXPECT_EQ(net.dirty_links().size(), 1u);
  cache.begin_cycle(net);
  EXPECT_GT(cache.stats().invalidations, 0u);
}

// The core guarantee, hammered: across random link churn, role flips between
// evaluator modes, epsilon-boundary moves, and volume changes, every row the
// cache serves is bit-identical to a from-scratch evaluation of the same
// query (epsilon = 0, so no staleness band to hide behind).
TEST(ResponseTimeCache, RandomizedEquivalenceUnderChurn) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng rng(seed);
    NetworkState net = fat_tree_net(4, rng);
    ResponseTimeCache cache;
    const ResponseTimeOptions modes[] = {
        {3, EvaluatorMode::kHopBoundedDp, 0},
        {0, EvaluatorMode::kHopBoundedDp, 0},
        {3, EvaluatorMode::kEnumerate, 0},
        {3, EvaluatorMode::kSharedFrontier, 0},
        {0, EvaluatorMode::kSharedFrontier, 0},
    };
    for (int cycle = 0; cycle < 25; ++cycle) {
      // Churn a random subset of links (sometimes none — pure steady state).
      const std::size_t churn = static_cast<std::size_t>(
          rng.below(1 + net.edge_count() / 10));
      for (std::size_t i = 0; i < churn; ++i) {
        const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
        net.set_link(e, LinkState{1000.0, rng.uniform(0.05, 0.95)});
      }
      cache.begin_cycle(net);
      for (int q = 0; q < 12; ++q) {
        const auto s = static_cast<graph::NodeId>(rng.below(net.node_count()));
        const ResponseTimeOptions& opt = modes[rng.below(5)];
        const double data_mb = rng.uniform(0.5, 200.0);
        expect_bit_identical(cache.row(net, s, data_mb, opt),
                             fresh_row(net, s, data_mb, opt), s);
      }
    }
    const ResponseTimeCacheStats stats = cache.stats();
    EXPECT_GT(stats.hits, 0u) << "churn too aggressive to exercise hits";
    EXPECT_GT(stats.misses, 0u);
    EXPECT_EQ(stats.bypasses, 0u);  // begin_cycle ran every cycle
  }
}

// Same equivalence through the NetworkState epsilon band: cached rows must
// match a fresh evaluation of the *pinned* (baseline) costs — i.e. the cache
// is allowed to ignore sub-epsilon drift but must track every dirty link.
TEST(ResponseTimeCache, InvalidationNeverServesADirtyBall) {
  util::Rng rng(42);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeOptions opt{2, EvaluatorMode::kHopBoundedDp, 0};
  ResponseTimeCache cache;
  cache.begin_cycle(net);
  for (graph::NodeId s = 0; s < net.node_count(); ++s)
    (void)cache.row(net, s, 1.0, opt);
  for (int round = 0; round < 20; ++round) {
    const auto e = static_cast<graph::EdgeId>(rng.below(net.edge_count()));
    net.set_link(e, LinkState{1000.0, rng.uniform(0.05, 0.95)});
    cache.begin_cycle(net);
    for (graph::NodeId s = 0; s < net.node_count(); ++s)
      expect_bit_identical(cache.row(net, s, 7.0, opt),
                           fresh_row(net, s, 7.0, opt), s);
  }
}

// The reprice deadband: with epsilon > 0, a row survives link improvements
// that could only beat its cached Trmin by less than epsilon. Worsened-link
// checks stay exact (used_edges), so correctness-critical invalidation is
// untouched — the deadband only filters "slightly better elsewhere" churn.
TEST(ResponseTimeCache, RepriceEpsilonKeepsRowsThroughSmallImprovements) {
  util::Rng rng(21);
  NetworkState net = fat_tree_net(4, rng);
  ResponseTimeOptions opt{3, EvaluatorMode::kSharedFrontier, 0};
  ResponseTimeCache cache;
  cache.set_reprice_epsilon(0.10);
  cache.begin_cycle(net);
  for (graph::NodeId s = 0; s < net.node_count(); ++s)
    (void)cache.row(net, s, 1.0, opt);
  const auto misses_before = cache.stats().misses;
  // Improve every link ~2% (higher availability => lower cost): any rival
  // path gets at most ~2% cheaper, well inside the 10% deadband, so every
  // row survives even though every link is dirty.
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e) {
    LinkState state = net.link(e);
    state.utilization = std::min(1.0, state.utilization * 1.02);
    net.set_link(e, state);
  }
  cache.begin_cycle(net);
  for (graph::NodeId s = 0; s < net.node_count(); ++s)
    (void)cache.row(net, s, 1.0, opt);
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // Tightening the deadband clears the cache: a row kept under the looser
  // epsilon might not survive the stricter one.
  cache.set_reprice_epsilon(0.0);
  cache.begin_cycle(net);
  (void)cache.row(net, 0, 1.0, opt);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(NetworkStateDirtyTracking, VersionAndSnapshotSemantics) {
  util::Rng rng(9);
  NetworkState net = fat_tree_net(4, rng);
  net.snapshot_links();  // absorb the construction-time churn
  const std::uint64_t v0 = net.link_version();
  LinkState moved = net.link(3);
  const double u0 = moved.utilization;
  moved.utilization = u0 * 0.5;
  net.set_link(3, moved);
  EXPECT_TRUE(net.link_dirty(3));
  EXPECT_EQ(net.dirty_links().size(), 1u);
  EXPECT_EQ(net.link_version(), v0 + 1);
  // Re-dirtying the same link does not bump the version again.
  moved.utilization = u0 * 0.25;
  net.set_link(3, moved);
  EXPECT_EQ(net.dirty_links().size(), 1u);
  EXPECT_EQ(net.link_version(), v0 + 1);
  net.snapshot_links();
  EXPECT_TRUE(net.dirty_links().empty());
  EXPECT_FALSE(net.link_dirty(3));
  // Re-applying the exact baseline value stays clean (epsilon = 0 still
  // tolerates a zero-magnitude move).
  net.set_link(3, moved);
  EXPECT_TRUE(net.dirty_links().empty());
}

}  // namespace
}  // namespace dust::net
