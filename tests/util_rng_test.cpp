#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dust::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const std::uint64_t first = rng();
  rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(9);
  Rng fork_before = a.fork(3);
  a();  // consuming the parent must not change an already-forked stream
  Rng b(9);
  Rng fork_ref = b.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fork_before(), fork_ref());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(5);
  Rng s1 = parent.fork(1);
  Rng s2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s1() == s2()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(15);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(16);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(20);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(21);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(22);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(24);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(25);
  const std::vector<std::size_t> sample = rng.sample_indices(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(26);
  const std::vector<std::size_t> sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesTooManyThrows) {
  Rng rng(27);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

// Deterministic streams must be stable across runs of the suite (they anchor
// every experiment's reproducibility).
TEST(Rng, GoldenFirstValues) {
  Rng rng(0x5eed);
  const std::uint64_t v0 = rng();
  const std::uint64_t v1 = rng();
  Rng again(0x5eed);
  EXPECT_EQ(again(), v0);
  EXPECT_EQ(again(), v1);
  EXPECT_NE(v0, v1);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanAndVarianceSane) {
  Rng rng(GetParam());
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.02);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST_P(RngSeedSweep, BelowIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr std::uint64_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(buckets)];
  for (int count : counts)
    EXPECT_NEAR(count, n / static_cast<int>(buckets), n / 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 1234u, 0xdeadbeefu,
                                           0xffffffffffffffffu));

}  // namespace
}  // namespace dust::util
