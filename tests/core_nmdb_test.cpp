#include "core/nmdb.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"

namespace dust::core {
namespace {

Nmdb make_nmdb(std::size_t nodes = 5) {
  return Nmdb(net::NetworkState(graph::make_ring(static_cast<std::uint32_t>(nodes))),
              Thresholds{});
}

TEST(Nmdb, InvalidDefaultsRejected) {
  Thresholds bad;
  bad.co_max = 90.0;
  bad.c_max = 80.0;
  EXPECT_THROW(Nmdb(net::NetworkState(graph::make_ring(3)), bad),
               std::invalid_argument);
}

TEST(Nmdb, RecordStatUpdatesState) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(2, 85.0, 33.0, 7);
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(2), 85.0);
  EXPECT_DOUBLE_EQ(nmdb.network().monitoring_data_mb(2), 33.0);
  EXPECT_EQ(nmdb.agent_count(2), 7u);
}

TEST(Nmdb, BusyAndCandidateSets) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(0, 90.0, 10, 1);  // busy
  nmdb.record_stat(1, 70.0, 10, 1);  // neutral
  nmdb.record_stat(2, 50.0, 10, 1);  // candidate
  nmdb.record_stat(3, 81.0, 10, 1);  // busy
  nmdb.record_stat(4, 60.0, 10, 1);  // candidate (<= co_max)
  EXPECT_EQ(nmdb.busy_nodes(), (std::vector<graph::NodeId>{0, 3}));
  EXPECT_EQ(nmdb.candidate_nodes(), (std::vector<graph::NodeId>{2, 4}));
}

TEST(Nmdb, OptOutExcludesFromBothSets) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(0, 90.0, 10, 1);
  nmdb.record_stat(2, 50.0, 10, 1);
  for (graph::NodeId v : {1u, 3u, 4u}) nmdb.record_stat(v, 70.0, 10, 1);
  nmdb.set_offload_capable(0, false);
  nmdb.set_offload_capable(2, false);
  EXPECT_TRUE(nmdb.busy_nodes().empty());
  EXPECT_TRUE(nmdb.candidate_nodes().empty());
  EXPECT_EQ(nmdb.role(0), NodeRole::kNoneOffloading);
}

TEST(Nmdb, PerNodeThresholdOverride) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(0, 75.0, 10, 1);
  EXPECT_EQ(nmdb.role(0), NodeRole::kNeutral);
  Thresholds strict;
  strict.c_max = 70.0;
  strict.co_max = 50.0;
  nmdb.set_thresholds(0, strict);
  EXPECT_EQ(nmdb.role(0), NodeRole::kBusy);
  EXPECT_DOUBLE_EQ(nmdb.thresholds(0).c_max, 70.0);
  EXPECT_DOUBLE_EQ(nmdb.thresholds(1).c_max, 80.0);  // default untouched
}

TEST(Nmdb, InvalidOverrideRejected) {
  Nmdb nmdb = make_nmdb();
  Thresholds bad;
  bad.x_min = 99.0;
  EXPECT_THROW(nmdb.set_thresholds(0, bad), std::invalid_argument);
}

TEST(Nmdb, HostingRoleReported) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(1, 40.0, 10, 1);
  EXPECT_EQ(nmdb.role(1), NodeRole::kOffloadCandidate);
  nmdb.set_hosting(1, true);
  EXPECT_EQ(nmdb.role(1), NodeRole::kOffloadDestination);
  nmdb.set_hosting(1, false);
  EXPECT_EQ(nmdb.role(1), NodeRole::kOffloadCandidate);
}

TEST(Nmdb, TotalsMatchSums) {
  Nmdb nmdb = make_nmdb();
  nmdb.record_stat(0, 90.0, 10, 1);  // Cs = 10
  nmdb.record_stat(1, 85.0, 10, 1);  // Cs = 5
  nmdb.record_stat(2, 40.0, 10, 1);  // Cd = 20
  nmdb.record_stat(3, 55.0, 10, 1);  // Cd = 5
  nmdb.record_stat(4, 70.0, 10, 1);  // neutral
  EXPECT_DOUBLE_EQ(nmdb.total_excess(), 15.0);
  EXPECT_DOUBLE_EQ(nmdb.total_spare(), 25.0);
}

TEST(Nmdb, OutOfRangeNodeThrows) {
  Nmdb nmdb = make_nmdb(3);
  EXPECT_THROW(nmdb.record_stat(9, 50, 1, 1), std::out_of_range);
  EXPECT_THROW(nmdb.set_offload_capable(9, true), std::out_of_range);
  EXPECT_THROW(static_cast<void>(nmdb.role(9)), std::out_of_range);
}

}  // namespace
}  // namespace dust::core
