#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dust::graph {
namespace {

// ---- fat-tree: the paper's exact switch/link counts (§V-B) ----

struct FatTreeCounts {
  std::uint32_t k;
  std::size_t nodes;
  std::size_t edges;
};

class FatTreeSweep : public ::testing::TestWithParam<FatTreeCounts> {};

TEST_P(FatTreeSweep, PaperNodeAndEdgeCounts) {
  const FatTreeCounts expected = GetParam();
  const FatTree ft(expected.k);
  EXPECT_EQ(ft.graph().node_count(), expected.nodes);
  EXPECT_EQ(ft.graph().edge_count(), expected.edges);
}

TEST_P(FatTreeSweep, IsConnected) {
  const FatTree ft(GetParam().k);
  EXPECT_TRUE(ft.graph().connected());
}

TEST_P(FatTreeSweep, LayerPopulations) {
  const FatTree ft(GetParam().k);
  const std::uint32_t k = GetParam().k;
  std::size_t core = 0, agg = 0, edge = 0;
  for (NodeId v = 0; v < ft.graph().node_count(); ++v) {
    switch (ft.layer(v)) {
      case SwitchLayer::kCore: ++core; break;
      case SwitchLayer::kAggregation: ++agg; break;
      case SwitchLayer::kEdge: ++edge; break;
    }
  }
  EXPECT_EQ(core, static_cast<std::size_t>(k / 2) * (k / 2));
  EXPECT_EQ(agg, static_cast<std::size_t>(k) * (k / 2));
  EXPECT_EQ(edge, static_cast<std::size_t>(k) * (k / 2));
}

TEST_P(FatTreeSweep, DegreeInvariants) {
  const FatTree ft(GetParam().k);
  const std::uint32_t k = GetParam().k;
  for (NodeId v = 0; v < ft.graph().node_count(); ++v) {
    switch (ft.layer(v)) {
      case SwitchLayer::kCore:
        EXPECT_EQ(ft.graph().degree(v), k);  // one aggregation per pod
        break;
      case SwitchLayer::kAggregation:
        EXPECT_EQ(ft.graph().degree(v), k);  // k/2 cores + k/2 edges
        break;
      case SwitchLayer::kEdge:
        EXPECT_EQ(ft.graph().degree(v), k / 2);  // aggregations only
        break;
    }
  }
}

// 20/32 (k=4), 80/256 (k=8), 320/2048 (k=16) are quoted in the paper; k=64
// (5120/131072) is checked in the scalability bench instead of here to keep
// unit tests fast.
INSTANTIATE_TEST_SUITE_P(PaperSizes, FatTreeSweep,
                         ::testing::Values(FatTreeCounts{4, 20, 32},
                                           FatTreeCounts{8, 80, 256},
                                           FatTreeCounts{16, 320, 2048},
                                           FatTreeCounts{2, 5, 4},
                                           FatTreeCounts{6, 45, 108}));

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW(FatTree(3), std::invalid_argument);
  EXPECT_THROW(FatTree(0), std::invalid_argument);
  EXPECT_THROW(FatTree(1), std::invalid_argument);
}

TEST(FatTree, NodeAccessorsRoundTrip) {
  const FatTree ft(4);
  for (std::uint32_t c = 0; c < ft.core_count(); ++c)
    EXPECT_EQ(ft.layer(ft.core(c)), SwitchLayer::kCore);
  for (std::uint32_t p = 0; p < ft.pod_count(); ++p) {
    for (std::uint32_t i = 0; i < ft.aggregation_per_pod(); ++i) {
      const NodeId agg = ft.aggregation(p, i);
      EXPECT_EQ(ft.layer(agg), SwitchLayer::kAggregation);
      EXPECT_EQ(ft.pod(agg), p);
    }
    for (std::uint32_t i = 0; i < ft.edge_per_pod(); ++i) {
      const NodeId e = ft.edge_switch(p, i);
      EXPECT_EQ(ft.layer(e), SwitchLayer::kEdge);
      EXPECT_EQ(ft.pod(e), p);
    }
  }
}

TEST(FatTree, AccessorsRejectOutOfRange) {
  const FatTree ft(4);
  EXPECT_THROW(static_cast<void>(ft.core(4)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(ft.aggregation(4, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(ft.aggregation(0, 2)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(ft.edge_switch(0, 2)), std::out_of_range);
}

TEST(FatTree, PodOfCoreThrows) {
  const FatTree ft(4);
  EXPECT_THROW(static_cast<void>(ft.pod(ft.core(0))), std::invalid_argument);
}

TEST(FatTree, IntraPodBipartite) {
  const FatTree ft(4);
  // Every aggregation connects to every edge switch of its own pod.
  for (std::uint32_t p = 0; p < 4; ++p)
    for (std::uint32_t a = 0; a < 2; ++a)
      for (std::uint32_t e = 0; e < 2; ++e)
        EXPECT_TRUE(
            ft.graph().find_edge(ft.aggregation(p, a), ft.edge_switch(p, e)));
}

TEST(FatTree, EdgeSwitchesNeverDirectlyConnected) {
  const FatTree ft(4);
  for (std::uint32_t p1 = 0; p1 < 4; ++p1)
    for (std::uint32_t p2 = 0; p2 < 4; ++p2)
      EXPECT_FALSE(
          ft.graph().find_edge(ft.edge_switch(p1, 0), ft.edge_switch(p2, 1)));
}

TEST(FatTree, NamesAreUniqueAndStructured) {
  const FatTree ft(4);
  std::set<std::string> names;
  for (NodeId v = 0; v < ft.graph().node_count(); ++v)
    names.insert(ft.node_name(v));
  EXPECT_EQ(names.size(), ft.graph().node_count());
  EXPECT_EQ(ft.node_name(ft.core(0)), "core0");
  EXPECT_EQ(ft.node_name(ft.aggregation(2, 1)), "agg2.1");
  EXPECT_EQ(ft.node_name(ft.edge_switch(3, 0)), "edge3.0");
}

// ---- other generators ----

TEST(LeafSpine, FullBipartite) {
  const Graph g = make_leaf_spine(3, 5);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(g.connected());
  for (NodeId s = 0; s < 3; ++s) EXPECT_EQ(g.degree(s), 5u);
  for (NodeId l = 3; l < 8; ++l) EXPECT_EQ(g.degree(l), 3u);
}

TEST(LeafSpine, RejectsEmptyTier) {
  EXPECT_THROW(make_leaf_spine(0, 3), std::invalid_argument);
  EXPECT_THROW(make_leaf_spine(3, 0), std::invalid_argument);
}

TEST(Ring, CycleStructure) {
  const Graph g = make_ring(6);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.connected());
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Ring, RejectsTiny) { EXPECT_THROW(make_ring(2), std::invalid_argument); }

TEST(Grid, MeshStructure) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // Horizontal: 3*3, vertical: 2*4.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Grid, SingleRowIsPath) {
  const Graph g = make_grid(1, 5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.connected());
}

TEST(Star, HubAndLeaves) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_EQ(g.degree(0), 7u);
  for (NodeId leaf = 1; leaf <= 7; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
}

class RandomConnectedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConnectedSweep, AlwaysConnectedWithSpanningTreePlusExtras) {
  util::Rng rng(GetParam());
  const Graph g = make_random_connected(40, 25, rng);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_GE(g.edge_count(), 39u);          // spanning tree
  EXPECT_LE(g.edge_count(), 39u + 25u);    // plus at most the extras
  EXPECT_TRUE(g.connected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConnectedSweep,
                         ::testing::Values(1u, 7u, 99u, 12345u));

TEST(RandomConnected, SingleNode) {
  util::Rng rng(1);
  const Graph g = make_random_connected(1, 10, rng);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(RandomConnected, ExtrasCappedByCompleteGraph) {
  util::Rng rng(2);
  const Graph g = make_random_connected(4, 100, rng);
  EXPECT_LE(g.edge_count(), 6u);  // K4
  EXPECT_TRUE(g.connected());
}

}  // namespace
}  // namespace dust::graph
