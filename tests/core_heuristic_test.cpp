#include "core/heuristic.hpp"

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

TEST(Heuristic, NoBusyNodesTrivial) {
  net::NetworkState state(graph::make_ring(4));
  for (graph::NodeId v = 0; v < 4; ++v) state.set_node_utilization(v, 50.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);
  EXPECT_EQ(r.busy_count, 0u);
  EXPECT_DOUBLE_EQ(r.hfr_percent(), 0.0);
  EXPECT_TRUE(r.complete());
}

TEST(Heuristic, RadiusOneOnlyUsesDirectNeighbours) {
  // Path 0-1-2: node 0 busy, node 2 candidate but 2 hops away, node 1 neutral.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 70.0);
  state.set_node_utilization(2, 30.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_EQ(r.failed, 1u);
  EXPECT_DOUBLE_EQ(r.hfr_percent(), 100.0);  // nothing placed
}

TEST(Heuristic, RadiusTwoReachesThatCandidate) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 70.0);
  state.set_node_utilization(2, 30.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  HeuristicOptions options;
  options.radius = 2;
  const HeuristicResult r = HeuristicEngine(options).run(nmdb);
  EXPECT_TRUE(r.complete());
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.assignments[0].to, 2u);
}

TEST(Heuristic, PicksCheapestNeighbourFirst) {
  // Star: hub 0 busy; two leaf candidates with different link speeds.
  net::NetworkState state(graph::make_star(2));
  state.set_node_utilization(0, 85.0);  // Cs = 5
  state.set_node_utilization(1, 30.0);
  state.set_node_utilization(2, 30.0);
  state.set_monitoring_data_mb(0, 100.0);
  state.set_link(0, net::LinkState{1000.0, 1.0});   // to leaf 1: fast
  state.set_link(1, net::LinkState{1000.0, 0.1});   // to leaf 2: slow
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.assignments[0].to, 1u);
  EXPECT_NEAR(r.assignments[0].trmin_seconds, 0.1, 1e-12);
}

TEST(Heuristic, PartialWhenNeighbourCapacityShort) {
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);
  EXPECT_EQ(r.partially_offloaded, 1u);
  EXPECT_DOUBLE_EQ(r.total_cse, 10.0);
  EXPECT_NEAR(r.hfr_percent(), 10.0 / 15.0 * 100.0, 1e-9);
}

TEST(Heuristic, SharedNeighbourCapacityConsumedAcrossBusyNodes) {
  // Path 0-1-2 where 0 and 2 are both busy and 1 is the only candidate.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 90.0);  // Cs = 10
  state.set_node_utilization(2, 90.0);  // Cs = 10
  state.set_node_utilization(1, 45.0);  // Cd = 15 total, < 20 needed
  state.set_monitoring_data_mb(0, 10.0);
  state.set_monitoring_data_mb(2, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);
  EXPECT_DOUBLE_EQ(r.total_cs, 20.0);
  EXPECT_DOUBLE_EQ(r.total_cse, 5.0);
  EXPECT_NEAR(r.hfr_percent(), 25.0, 1e-9);
  EXPECT_EQ(r.fully_offloaded + r.partially_offloaded, 2u);
  // Destination capacity never exceeded.
  double absorbed = 0;
  for (const Assignment& a : r.assignments) {
    EXPECT_EQ(a.to, 1u);
    absorbed += a.amount;
  }
  EXPECT_NEAR(absorbed, 15.0, 1e-9);
}

TEST(Heuristic, LargestFirstOrderChangesAllocation) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 85.0);  // Cs = 5 (node id first)
  state.set_node_utilization(2, 95.0);  // Cs = 15 (largest)
  state.set_node_utilization(1, 50.0);  // Cd = 10
  state.set_monitoring_data_mb(0, 10.0);
  state.set_monitoring_data_mb(2, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  HeuristicOptions largest;
  largest.order = HeuristicOptions::Order::kLargestExcessFirst;
  const HeuristicResult by_id = HeuristicEngine().run(nmdb);
  const HeuristicResult by_size = HeuristicEngine(largest).run(nmdb);
  // Same HFR either way (total capacity is the binding constraint)...
  EXPECT_NEAR(by_id.total_cse, by_size.total_cse, 1e-9);
  // ...but the largest shedder got the full capacity in largest-first order.
  double to_node1_from_2 = 0;
  for (const Assignment& a : by_size.assignments)
    if (a.from == 2) to_node1_from_2 += a.amount;
  EXPECT_NEAR(to_node1_from_2, 10.0, 1e-9);
}

TEST(Heuristic, LargestCapacityPackingAvoidsStranding) {
  // B1(0) reaches both C1(1, Cd 5, cheap) and C2(2, Cd 10, slow);
  // B2(3) reaches only C1. Cheapest-first lets B1 drain C1 and strands B2;
  // largest-capacity-first routes B1 to C2 so B2 survives.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 1);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 85.0);  // Cs = 5
  state.set_node_utilization(3, 85.0);  // Cs = 5
  state.set_node_utilization(1, 55.0);  // Cd = 5
  state.set_node_utilization(2, 50.0);  // Cd = 10
  state.set_monitoring_data_mb(0, 100.0);
  state.set_monitoring_data_mb(3, 100.0);
  state.set_link(0, net::LinkState{1000.0, 1.0});  // B1-C1 fast
  state.set_link(1, net::LinkState{1000.0, 0.2});  // B1-C2 slow
  state.set_link(2, net::LinkState{1000.0, 1.0});  // B2-C1 fast
  Nmdb nmdb(std::move(state), Thresholds{});

  const HeuristicResult cheapest = HeuristicEngine().run(nmdb);
  EXPECT_NEAR(cheapest.hfr_percent(), 50.0, 1e-9);  // B2 stranded

  HeuristicOptions packing;
  packing.packing = HeuristicOptions::Packing::kLargestCapacityFirst;
  const HeuristicResult largest = HeuristicEngine(packing).run(nmdb);
  EXPECT_TRUE(largest.complete());
  // The fragmentation win costs objective: B1 paid the slow link.
  EXPECT_GT(largest.objective, cheapest.objective);
}

class HeuristicFatTreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Properties on random fat-tree scenarios.
TEST_P(HeuristicFatTreeSweep, InvariantsHold) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  const HeuristicResult r = HeuristicEngine().run(nmdb);

  EXPECT_GE(r.hfr_percent(), 0.0);
  EXPECT_LE(r.hfr_percent(), 100.0);
  EXPECT_EQ(r.fully_offloaded + r.partially_offloaded + r.failed, r.busy_count);
  EXPECT_NEAR(r.total_cs, nmdb.total_excess(), 1e-9);

  // Every assignment is busy -> direct neighbour candidate.
  const graph::Graph& g = nmdb.network().graph();
  std::vector<double> absorbed(g.node_count(), 0.0);
  for (const Assignment& a : r.assignments) {
    EXPECT_TRUE(g.find_edge(a.from, a.to).has_value());
    EXPECT_EQ(nmdb.thresholds(a.to).classify(
                  nmdb.network().node_utilization(a.to)),
              NodeRole::kOffloadCandidate);
    absorbed[a.to] += a.amount;
  }
  for (graph::NodeId o : nmdb.candidate_nodes())
    EXPECT_LE(absorbed[o], nmdb.thresholds(o).spare_capacity(
                               nmdb.network().node_utilization(o)) +
                               1e-9);
  // Shipped + failed = total excess.
  double shipped = 0;
  for (const Assignment& a : r.assignments) shipped += a.amount;
  EXPECT_NEAR(shipped + r.total_cse, r.total_cs, 1e-6);
}

// A radius covering the whole diameter places the theoretical maximum
// min(ΣCs, ΣCd), so its HFR is a lower bound for the one-hop heuristic.
// (Intermediate radii are NOT monotone in general: a busy node may drain a
// distant candidate that was another busy node's only neighbour.)
TEST_P(HeuristicFatTreeSweep, FullRadiusIsLowerBound) {
  util::Rng rng(GetParam() ^ 0xcafe);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  HeuristicOptions full;
  full.radius = 6;  // >= 4-k fat-tree diameter
  const HeuristicResult one_hop = HeuristicEngine().run(nmdb);
  const HeuristicResult wide = HeuristicEngine(full).run(nmdb);
  EXPECT_LE(wide.hfr_percent(), one_hop.hfr_percent() + 1e-9);
  // Full reachability ships min(ΣCs, ΣCd) exactly.
  const double expected_shipped =
      std::min(nmdb.total_excess(), nmdb.total_spare());
  EXPECT_NEAR(wide.total_cs - wide.total_cse, expected_shipped, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicFatTreeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dust::core
