#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb random_nmdb(std::uint64_t seed) {
  util::Rng rng(seed);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  return Nmdb(std::move(state), Thresholds{});
}

void check_feasible(const Nmdb& nmdb, const BaselineResult& r) {
  std::vector<double> absorbed(nmdb.node_count(), 0.0);
  double shipped = 0;
  for (const Assignment& a : r.assignments) {
    EXPECT_GT(a.amount, 0.0);
    absorbed[a.to] += a.amount;
    shipped += a.amount;
  }
  for (graph::NodeId o : nmdb.candidate_nodes())
    EXPECT_LE(absorbed[o], nmdb.thresholds(o).spare_capacity(
                               nmdb.network().node_utilization(o)) +
                               1e-9);
  EXPECT_NEAR(shipped + r.unplaced, nmdb.total_excess(), 1e-6);
}

TEST(GreedyNearest, PrefersCloserCandidate) {
  // Path: cand(1) - busy(0) - relay(2) - cand(3). Closest wins outright.
  graph::Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 85.0);  // Cs = 5
  state.set_node_utilization(1, 30.0);
  state.set_node_utilization(3, 30.0);
  state.set_node_utilization(2, 70.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const BaselineResult r = greedy_nearest_placement(nmdb);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.assignments[0].to, 1u);
  EXPECT_TRUE(r.complete());
}

TEST(GreedyNearest, OverflowsToFartherWhenNearFull) {
  graph::Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 95.0);  // Cs = 15
  state.set_node_utilization(1, 55.0);  // Cd = 5 (near)
  state.set_node_utilization(3, 30.0);  // Cd = 30 (far)
  state.set_node_utilization(2, 70.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const BaselineResult r = greedy_nearest_placement(nmdb);
  EXPECT_TRUE(r.complete());
  EXPECT_NEAR(r.assignments[0].amount, 5.0, 1e-9);
  EXPECT_EQ(r.assignments[0].to, 1u);
  EXPECT_EQ(r.assignments[1].to, 3u);
  EXPECT_NEAR(r.assignments[1].amount, 10.0, 1e-9);
}

TEST(GreedyNearest, MaxHopsLimitsReach) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 70.0);
  state.set_node_utilization(2, 30.0);
  state.set_monitoring_data_mb(0, 10.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  EXPECT_FALSE(greedy_nearest_placement(nmdb, 1).complete());
  EXPECT_TRUE(greedy_nearest_placement(nmdb, 2).complete());
}

class BaselineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineSweep, GreedyFeasible) {
  Nmdb nmdb = random_nmdb(GetParam());
  check_feasible(nmdb, greedy_nearest_placement(nmdb));
}

TEST_P(BaselineSweep, RandomFeasible) {
  Nmdb nmdb = random_nmdb(GetParam());
  util::Rng rng(GetParam() * 31 + 7);
  check_feasible(nmdb, random_placement(nmdb, rng));
}

// The exact optimizer is never worse than either baseline on cost when
// everything can be placed by all three.
TEST_P(BaselineSweep, OptimizerDominatesOnObjective) {
  Nmdb nmdb = random_nmdb(GetParam() ^ 0x555);
  util::Rng rng(GetParam());
  const BaselineResult greedy = greedy_nearest_placement(nmdb);
  const BaselineResult random = random_placement(nmdb, rng);
  const PlacementResult optimal = OptimizationEngine().run(nmdb);
  if (!optimal.optimal() || !greedy.complete() || !random.complete())
    GTEST_SKIP();
  EXPECT_LE(optimal.objective, greedy.objective + 1e-6);
  EXPECT_LE(optimal.objective, random.objective + 1e-6);
}

// Unbounded baselines ship min(ΣCs, ΣCd) — as much as theoretically possible.
TEST_P(BaselineSweep, GreedyShipsMaximum) {
  Nmdb nmdb = random_nmdb(GetParam() ^ 0x888);
  const BaselineResult r = greedy_nearest_placement(nmdb);
  const double shipped = nmdb.total_excess() - r.unplaced;
  EXPECT_NEAR(shipped, std::min(nmdb.total_excess(), nmdb.total_spare()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(RandomPlacement, DeterministicGivenSeed) {
  Nmdb nmdb = random_nmdb(9);
  util::Rng a(5), b(5);
  const BaselineResult ra = random_placement(nmdb, a);
  const BaselineResult rb = random_placement(nmdb, b);
  ASSERT_EQ(ra.assignments.size(), rb.assignments.size());
  for (std::size_t i = 0; i < ra.assignments.size(); ++i) {
    EXPECT_EQ(ra.assignments[i].to, rb.assignments[i].to);
    EXPECT_DOUBLE_EQ(ra.assignments[i].amount, rb.assignments[i].amount);
  }
}

}  // namespace
}  // namespace dust::core
