#include "core/zones.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

TEST(PartitionZones, CoversEveryNodeExactlyOnce) {
  const graph::FatTree ft(8);
  const auto zones = partition_zones(ft.graph(), 20);
  std::set<graph::NodeId> seen;
  for (const Zone& zone : zones) {
    EXPECT_LE(zone.members.size(), 20u);
    EXPECT_FALSE(zone.members.empty());
    for (graph::NodeId v : zone.members) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), ft.graph().node_count());
}

TEST(PartitionZones, ZonesAreConnected) {
  const graph::FatTree ft(8);
  const auto zones = partition_zones(ft.graph(), 20);
  for (const Zone& zone : zones) {
    // BFS within the induced subgraph must reach all members.
    std::set<graph::NodeId> members(zone.members.begin(), zone.members.end());
    std::vector<graph::NodeId> stack{zone.members[0]};
    std::set<graph::NodeId> reached{zone.members[0]};
    while (!stack.empty()) {
      const graph::NodeId node = stack.back();
      stack.pop_back();
      for (const graph::Adjacency& adj : ft.graph().neighbors(node)) {
        if (members.count(adj.neighbor) && !reached.count(adj.neighbor)) {
          reached.insert(adj.neighbor);
          stack.push_back(adj.neighbor);
        }
      }
    }
    EXPECT_EQ(reached.size(), zone.members.size());
  }
}

TEST(PartitionZones, SingleZoneWhenLimitIsLarge) {
  const graph::FatTree ft(4);
  const auto zones = partition_zones(ft.graph(), 1000);
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].members.size(), 20u);
}

TEST(PartitionZones, SizeOneDegeneratesToSingletons) {
  const auto zones = partition_zones(graph::make_ring(5), 1);
  EXPECT_EQ(zones.size(), 5u);
}

TEST(PartitionZones, ZeroSizeRejected) {
  EXPECT_THROW(partition_zones(graph::make_ring(3), 0), std::invalid_argument);
}

TEST(PartitionZones, PaperRecommendationEightyNodes) {
  // §V-B: divide large networks into zones of <= 80 nodes. 16-k fat-tree
  // (320 nodes) must yield >= 4 zones, all within the cap.
  const graph::FatTree ft(16);
  const auto zones = partition_zones(ft.graph(), 80);
  EXPECT_GE(zones.size(), 4u);
  std::size_t total = 0;
  for (const Zone& zone : zones) {
    EXPECT_LE(zone.members.size(), 80u);
    total += zone.members.size();
  }
  EXPECT_EQ(total, 320u);
}

class ZonedOptimizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZonedOptimizeSweep, AssignmentsStayInZoneAndFeasible) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(8).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});

  OptimizerOptions options;
  options.placement.max_hops = 4;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const ZonedResult result = optimize_by_zones(nmdb, 20, options);
  EXPECT_GE(result.zones, 4u);

  const auto zones = partition_zones(nmdb.network().graph(), 20);
  std::vector<std::size_t> zone_of(nmdb.node_count());
  for (std::size_t z = 0; z < zones.size(); ++z)
    for (graph::NodeId v : zones[z].members) zone_of[v] = z;

  std::vector<double> absorbed(nmdb.node_count(), 0.0);
  for (const Assignment& a : result.all_assignments()) {
    EXPECT_EQ(zone_of[a.from], zone_of[a.to]) << "cross-zone offload";
    absorbed[a.to] += a.amount;
  }
  for (graph::NodeId o : nmdb.candidate_nodes())
    EXPECT_LE(absorbed[o], nmdb.thresholds(o).spare_capacity(
                               nmdb.network().node_utilization(o)) +
                               1e-9);
}

// Zoning restricts the solution space: its objective is never below the
// unrestricted optimum (when both fully place the load).
TEST_P(ZonedOptimizeSweep, ZonedObjectiveNeverBeatsGlobal) {
  util::Rng rng(GetParam() ^ 0x2222);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementResult global = OptimizationEngine(options).run(nmdb);
  const ZonedResult zoned = optimize_by_zones(nmdb, 10, options);
  if (!global.optimal() || zoned.unplaced > 1e-9) GTEST_SKIP();
  EXPECT_GE(zoned.objective, global.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZonedOptimizeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ZonedResult, AllAssignmentsConcatenates) {
  ZonedResult r;
  r.per_zone.resize(2);
  r.per_zone[0].assignments = {{0, 1, 2.0, 0.1}};
  r.per_zone[1].assignments = {{5, 6, 3.0, 0.2}, {7, 8, 1.0, 0.3}};
  EXPECT_EQ(r.all_assignments().size(), 3u);
}

}  // namespace
}  // namespace dust::core
