#include "telemetry/gorilla.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dust::telemetry {
namespace {

TEST(BitWriter, SingleBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 3u);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_TRUE(r.exhausted());
}

TEST(BitWriter, MultiBitValuesRoundTrip) {
  BitWriter w;
  w.write_bits(0b10110, 5);
  w.write_bits(0xdeadbeefcafebabeULL, 64);
  w.write_bits(0, 1);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read_bits(5), 0b10110u);
  EXPECT_EQ(r.read_bits(64), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.read_bits(1), 0u);
}

TEST(BitWriter, RejectsOver64) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), std::invalid_argument);
}

TEST(BitReader, ReadPastEndThrows) {
  BitWriter w;
  w.write_bit(true);
  BitReader r(w.bytes(), w.bit_count());
  r.read_bit();
  EXPECT_THROW(r.read_bit(), std::out_of_range);
}

std::vector<Sample> roundtrip(const std::vector<Sample>& in) {
  CompressedBlock block;
  for (const Sample& s : in) block.append(s);
  return block.decode();
}

TEST(CompressedBlock, EmptyDecodesEmpty) {
  CompressedBlock block;
  EXPECT_TRUE(block.decode().empty());
  EXPECT_EQ(block.sample_count(), 0u);
}

TEST(CompressedBlock, SingleSample) {
  const std::vector<Sample> in{{1234567890123LL, 3.14159}};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(CompressedBlock, RegularIntervalConstantValue) {
  std::vector<Sample> in;
  for (int i = 0; i < 100; ++i) in.push_back({1000LL * i, 42.0});
  EXPECT_EQ(roundtrip(in), in);
}

TEST(CompressedBlock, RegularSeriesCompressesWell) {
  CompressedBlock block;
  for (int i = 0; i < 1000; ++i)
    block.append({1000LL * i, 42.0});
  // Constant value + constant delta: ~1 bit/timestamp + 1 bit/value.
  EXPECT_GT(block.compression_ratio(), 20.0);
}

TEST(CompressedBlock, IrregularTimestamps) {
  std::vector<Sample> in{{0, 1.0},   {7, 2.0},     {8, 3.0},
                         {500, 4.0}, {40000, 5.0}, {40001, 6.0}};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(CompressedBlock, LargeTimestampJumps) {
  std::vector<Sample> in{{0, 1.0},
                         {1LL << 40, 2.0},
                         {(1LL << 40) + 5, 3.0},
                         {(1LL << 41), 4.0}};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(CompressedBlock, NegativeAndExtremeValues) {
  std::vector<Sample> in{{0, -1.5},
                         {1, 0.0},
                         {2, -0.0},
                         {3, 1e300},
                         {4, -1e-300},
                         {5, std::numeric_limits<double>::max()}};
  const auto out = roundtrip(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].timestamp_ms, in[i].timestamp_ms);
    EXPECT_EQ(std::signbit(out[i].value), std::signbit(in[i].value));
    EXPECT_EQ(out[i].value, in[i].value);
  }
}

TEST(CompressedBlock, EqualTimestampsAllowed) {
  std::vector<Sample> in{{5, 1.0}, {5, 2.0}, {5, 3.0}};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(CompressedBlock, RejectsDecreasingTimestamps) {
  CompressedBlock block;
  block.append({10, 1.0});
  EXPECT_THROW(block.append({9, 2.0}), std::invalid_argument);
}

TEST(CompressedBlock, TracksTimestampRange) {
  CompressedBlock block;
  block.append({100, 1.0});
  block.append({200, 2.0});
  block.append({350, 3.0});
  EXPECT_EQ(block.first_timestamp_ms(), 100);
  EXPECT_EQ(block.last_timestamp_ms(), 350);
  EXPECT_EQ(block.sample_count(), 3u);
}

class GorillaRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: lossless roundtrip for arbitrary monotone series.
TEST_P(GorillaRandomSweep, RandomWalkRoundTrip) {
  util::Rng rng(GetParam());
  std::vector<Sample> in;
  std::int64_t t = static_cast<std::int64_t>(rng.below(1000000));
  double v = rng.uniform(-100, 100);
  for (int i = 0; i < 500; ++i) {
    in.push_back({t, v});
    t += rng.below(5000);
    v += rng.normal(0.0, 3.0);
    if (rng.bernoulli(0.05)) v = rng.uniform(-1e6, 1e6);  // occasional jump
  }
  EXPECT_EQ(roundtrip(in), in);
}

// Property: smooth gauge-like series (the TSDB's actual workload) compress.
TEST_P(GorillaRandomSweep, SmoothSeriesCompress) {
  util::Rng rng(GetParam() ^ 0x51deca11);
  CompressedBlock block;
  double v = 50.0;
  for (int i = 0; i < 2000; ++i) {
    block.append({1000LL * i, v});
    if (rng.bernoulli(0.1)) v += rng.uniform(-1.0, 1.0);
  }
  EXPECT_GT(block.compression_ratio(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GorillaRandomSweep,
                         ::testing::Values(1u, 22u, 333u, 4444u, 55555u));

}  // namespace
}  // namespace dust::telemetry
