#include "solver/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dust::solver {
namespace {

TEST(Simplex, TrivialTwoVariable) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0 → (2, 2), obj -6.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  const auto y = lp.add_variable(0, kInfinity, -2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 4.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 3.0);
  lp.add_constraint({{y, 1.0}}, Sense::kLessEqual, 2.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x >= 0, y >= 0 → obj 5.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0);
  const auto y = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.values[x] + s.values[y], 5.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + 3y s.t. x + y >= 4, x >= 0, y >= 0 → x=4, y=0, obj 8.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 2.0);
  const auto y = lp.add_variable(0, kInfinity, 3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 4.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_simplex(lp).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  lp.add_constraint({{x, -1.0}}, Sense::kLessEqual, 0.0);  // x >= 0, redundant
  EXPECT_EQ(solve_simplex(lp).status, Status::kUnbounded);
}

TEST(Simplex, RespectsUpperBounds) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 2.5, -1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 2.5, 1e-9);
  EXPECT_NEAR(s.objective, -2.5, 1e-9);
}

TEST(Simplex, RespectsNonzeroLowerBounds) {
  // min x with x in [3, 10] → 3.
  LinearProgram lp;
  const auto x = lp.add_variable(3.0, 10.0, 1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, FixedVariable) {
  LinearProgram lp;
  const auto x = lp.add_variable(4.0, 4.0, 1.0);
  const auto y = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 6.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -7 encoded as a constraint on a free variable.
  LinearProgram lp;
  const auto x = lp.add_variable(-kInfinity, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, -7.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], -7.0, 1e-9);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // max x (min -x) with x <= 5 and x >= 2 via constraint.
  LinearProgram lp;
  const auto x = lp.add_variable(-kInfinity, 5.0, -1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with min x + y → x=0, y=2.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0);
  const auto y = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kLessEqual, -2.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints intersecting at the optimum.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  const auto y = lp.add_variable(0, kInfinity, -1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_constraint({{y, 1.0}}, Sense::kLessEqual, 1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Simplex, ClassicBlendingProblem) {
  // min 0.12a + 0.15b s.t. 60a + 60b >= 300, 12a + 6b >= 36, 10a + 30b >= 90.
  // Known optimum: a = 3, b = 2, objective 0.66.
  LinearProgram lp;
  const auto a = lp.add_variable(0, kInfinity, 0.12);
  const auto b = lp.add_variable(0, kInfinity, 0.15);
  lp.add_constraint({{a, 60.0}, {b, 60.0}}, Sense::kGreaterEqual, 300.0);
  lp.add_constraint({{a, 12.0}, {b, 6.0}}, Sense::kGreaterEqual, 36.0);
  lp.add_constraint({{a, 10.0}, {b, 30.0}}, Sense::kGreaterEqual, 90.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 0.66, 1e-9);
  EXPECT_NEAR(s.values[a], 3.0, 1e-9);
  EXPECT_NEAR(s.values[b], 2.0, 1e-9);
}

TEST(Simplex, DuplicateTermsAggregate) {
  // x listed twice in a constraint: coefficients must sum (2x <= 4 → x <= 2).
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, Sense::kLessEqual, 4.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

TEST(Simplex, SolutionSatisfiesModel) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    LinearProgram lp;
    const std::size_t n = 4;
    for (std::size_t i = 0; i < n; ++i)
      lp.add_variable(0, kInfinity, rng.uniform(-2, 2));
    for (int c = 0; c < 5; ++c) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t i = 0; i < n; ++i)
        terms.emplace_back(i, rng.uniform(0.1, 2.0));  // positive ⇒ bounded
      lp.add_constraint(std::move(terms), Sense::kLessEqual,
                        rng.uniform(1.0, 10.0));
    }
    const Solution s = solve_simplex(lp);
    ASSERT_EQ(s.status, Status::kOptimal) << "trial " << trial;
    EXPECT_LT(lp.max_violation(s.values), 1e-7);
    EXPECT_NEAR(lp.objective_value(s.values), s.objective, 1e-7);
  }
}

TEST(LinearProgram, ConstraintValidation) {
  LinearProgram lp;
  lp.add_variable(0, 1, 1.0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Sense::kEqual, 0.0),
               std::out_of_range);
  EXPECT_THROW(lp.add_variable(2.0, 1.0, 0.0), std::invalid_argument);
}

TEST(LinearProgram, MaxViolationMeasures) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 5, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 3.0);
  EXPECT_DOUBLE_EQ(lp.max_violation({2.0}), 0.0);
  EXPECT_DOUBLE_EQ(lp.max_violation({4.0}), 1.0);   // constraint violated
  EXPECT_DOUBLE_EQ(lp.max_violation({-1.0}), 1.0);  // bound violated
}

TEST(Status, ToStringCoversAll) {
  EXPECT_STREQ(to_string(Status::kOptimal), "optimal");
  EXPECT_STREQ(to_string(Status::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(Status::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(Status::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace dust::solver
