// dust::dataplane end-to-end: streamer → loopback socket → collector.
// Fidelity (full-mode streams arrive bit-exact), explicit backpressure (the
// degradation ladder walks up under congestion and every loss is declared),
// the Cs feedback hook into STAT, and the seeded dust::check audit.
#include <gtest/gtest.h>

#include <any>
#include <cmath>
#include <string>
#include <vector>

#include "check/dataplane_check.hpp"
#include "core/client.hpp"
#include "dataplane/block_streamer.hpp"
#include "dataplane/collector.hpp"
#include "sim/transport.hpp"
#include "telemetry/sampling.hpp"
#include "util/rng.hpp"
#include "wire/socket_transport.hpp"

namespace dust {
namespace {

wire::SocketTransportConfig hub_config() {
  wire::SocketTransportConfig config;
  config.role = wire::SocketTransportConfig::Role::kHub;
  return config;
}

wire::SocketTransportConfig leaf_config(std::uint16_t port,
                                        std::size_t max_queued = 4096) {
  wire::SocketTransportConfig config;
  config.role = wire::SocketTransportConfig::Role::kLeaf;
  config.port = port;
  config.max_queued_frames = max_queued;
  return config;
}

void pump(wire::SocketTransport& leaf, wire::SocketTransport& hub,
          int iterations = 50) {
  for (int i = 0; i < iterations; ++i) {
    leaf.poll_once(1);
    hub.poll_once(1);
  }
}

TEST(Dataplane, FullModeStreamsBitExactSamples) {
  wire::SocketTransport hub(hub_config());
  wire::SocketTransport leaf(leaf_config(hub.listen_port()));
  dataplane::Collector collector(hub, "dust-collector");
  leaf.register_endpoint("dust-streamer-3", [](const sim::Envelope&) {});

  telemetry::Tsdb tsdb;
  const telemetry::MetricId cpu = tsdb.register_metric(
      {"cpu", "percent", telemetry::MetricKind::kGauge});
  const telemetry::MetricId mem = tsdb.register_metric(
      {"mem", "mib", telemetry::MetricKind::kGauge});

  dataplane::BlockStreamerConfig config;
  config.owner = 3;
  config.local_endpoint = "dust-streamer-3";
  dataplane::BlockStreamer streamer(leaf, tsdb, config);

  util::Rng rng(42);
  std::vector<telemetry::Sample> sent;
  for (int i = 0; i < 500; ++i) {
    const telemetry::Sample sample{i * 100, rng.uniform(-50.0, 150.0)};
    tsdb.append(cpu, sample);
    tsdb.append(mem, telemetry::Sample{sample.timestamp_ms, sample.value * 2});
    sent.push_back(sample);
  }
  streamer.flush();
  pump(leaf, hub);

  EXPECT_EQ(streamer.mode(), telemetry::DegradeMode::kFull);
  EXPECT_EQ(streamer.stats().samples_sent, 1000u);
  EXPECT_EQ(streamer.stats().samples_dropped, 0u);
  EXPECT_EQ(streamer.stats().samples_thinned, 0u);

  const dataplane::CollectorStats& stats = collector.stats();
  EXPECT_TRUE(collector.loss_fully_declared());
  EXPECT_EQ(stats.samples, 1000u);
  ASSERT_TRUE(collector.tsdb().find("node3/cpu").has_value());
  ASSERT_TRUE(collector.tsdb().find("node3/mem").has_value());

  const std::vector<telemetry::Sample> got = collector.tsdb().query(
      *collector.tsdb().find("node3/cpu"), 0, 500 * 100);
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].timestamp_ms, sent[i].timestamp_ms);
    EXPECT_EQ(got[i].value, sent[i].value);  // bit-exact, not approximate
  }
}

TEST(Dataplane, CongestionWalksTheLadderAndDeclaresAllLoss) {
  wire::SocketTransport hub(hub_config());
  wire::SocketTransport leaf(leaf_config(hub.listen_port(), 3));
  dataplane::Collector collector(hub, "dust-collector");
  leaf.register_endpoint("dust-streamer-5", [](const sim::Envelope&) {});

  telemetry::Tsdb tsdb;
  const telemetry::MetricId id = tsdb.register_metric(
      {"flows", "count", telemetry::MetricKind::kGauge});

  dataplane::BlockStreamerConfig config;
  config.owner = 5;
  config.local_endpoint = "dust-streamer-5";
  config.max_blocks_per_frame = 1;  // one frame per block: fills fast
  dataplane::BlockStreamer streamer(leaf, tsdb, config);

  std::vector<telemetry::DegradeMode> modes_seen;
  streamer.set_mode_listener(
      [&](telemetry::DegradeMode mode, double keep) {
        modes_seen.push_back(mode);
        EXPECT_GT(keep, 0.0);
        EXPECT_LE(keep, 1.0);
      });

  // Never poll the leaf: its 3-frame queue chokes immediately, so the
  // streamer must escalate and declare instead of losing silently.
  util::Rng rng(7);
  std::int64_t now_ms = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      now_ms += 50;
      tsdb.append(id, telemetry::Sample{now_ms, rng.uniform(0.0, 1000.0)});
    }
    tsdb.series(id).seal_now();
    streamer.pump();
  }
  EXPECT_NE(streamer.mode(), telemetry::DegradeMode::kFull);
  EXPECT_FALSE(modes_seen.empty());
  EXPECT_GT(streamer.stats().samples_dropped + streamer.stats().samples_thinned,
            0u);

  // Drain; the deferred declarations flush ahead of any remaining data.
  for (int i = 0; i < 200; ++i) {
    leaf.poll_once(1);
    hub.poll_once(1);
    streamer.pump();
    if (!streamer.announcement_pending() &&
        collector.stats().batches == streamer.stats().batches_sent &&
        collector.stats().degrade_announcements ==
            streamer.stats().degrade_announcements)
      break;
  }

  EXPECT_TRUE(collector.loss_fully_declared())
      << "undeclared=" << collector.stats().undeclared_gap_batches
      << " verify=" << collector.stats().verify_failures
      << " ooo=" << collector.stats().out_of_order;
  EXPECT_EQ(collector.stats().samples, streamer.stats().samples_sent);
  EXPECT_EQ(collector.stats().samples_declared_dropped,
            streamer.stats().samples_dropped);
  // The queue may already have drained enough for the ladder to relax, but
  // the collector must have heard every escalation along the way.
  EXPECT_GT(collector.stats().degrade_announcements, 0u);

  // Queue empty again: the ladder must walk back down and announce that too.
  for (int i = 0; i < 5; ++i) {
    streamer.pump();
    pump(leaf, hub, 10);
  }
  EXPECT_EQ(streamer.mode(), telemetry::DegradeMode::kFull);
  EXPECT_EQ(collector.mode_of(5), telemetry::DegradeMode::kFull);
}

TEST(Dataplane, ModeListenerShrinksAdvertisedCs) {
  // The ModeListener → DustClient::set_telemetry_degradation hook: a STAT
  // sent under degradation carries the keep fraction and a scaled
  // monitoring volume, so the manager sees Cs shrink AND why.
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  std::vector<sim::Envelope> stats;
  transport.register_endpoint("dust-manager",
                              [&](const sim::Envelope& envelope) {
                                stats.push_back(envelope);
                              });
  core::DustClient client(sim, transport, 2, core::ClientConfig{},
                          util::Rng(2));
  client.set_reported_state(70.0, 40.0, 8);

  client.send_stat();
  client.set_telemetry_degradation(0.25);
  client.send_stat();
  sim.run_until(1000);

  ASSERT_EQ(stats.size(), 2u);
  const auto* full = std::get_if<core::StatMsg>(
      std::any_cast<core::Message>(&stats[0].payload));
  const auto* degraded = std::get_if<core::StatMsg>(
      std::any_cast<core::Message>(&stats[1].payload));
  ASSERT_NE(full, nullptr);
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(full->telemetry_keep_fraction, 1.0);
  EXPECT_EQ(full->monitoring_data_mb, 40.0);
  EXPECT_EQ(degraded->telemetry_keep_fraction, 0.25);
  EXPECT_EQ(degraded->monitoring_data_mb, 10.0);
}

TEST(Dataplane, SampledModeThinsDeterministically) {
  telemetry::SamplingPolicy policy;
  policy.mode = telemetry::DegradeMode::kSampled;
  policy.keep_probability = 0.25;
  std::vector<telemetry::Sample> raw;
  for (int i = 0; i < 4000; ++i)
    raw.push_back(telemetry::Sample{i * 10, static_cast<double>(i)});
  const std::vector<telemetry::Sample> once = policy.apply(raw);
  const std::vector<telemetry::Sample> twice = policy.apply(raw);
  ASSERT_EQ(once.size(), twice.size());  // pure function of (seed, timestamp)
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_EQ(once[i].timestamp_ms, twice[i].timestamp_ms);
  // Keep rate lands near the configured probability.
  const double rate = static_cast<double>(once.size()) / 4000.0;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.35);
}

// The trust-audit feed (DESIGN.md §14): drain_loss_audit() reports each
// owner's delivery window since the previous drain. Declared degradation must
// NOT inflate the expected count (the owner honestly told us), undeclared
// gaps must (that's the silent loss a byzantine destination produces), and
// the drain cursor must make consecutive drains disjoint.
TEST(Dataplane, LossAuditDrainsPerOwnerWindows) {
  wire::SocketTransport hub(hub_config());
  wire::SocketTransport leaf(leaf_config(hub.listen_port()));
  dataplane::Collector collector(hub, "dust-collector");
  leaf.register_endpoint("dust-streamer-3", [](const sim::Envelope&) {});

  telemetry::Tsdb tsdb;
  const telemetry::MetricId cpu = tsdb.register_metric(
      {"cpu", "percent", telemetry::MetricKind::kGauge});
  dataplane::BlockStreamerConfig config;
  config.owner = 3;
  config.local_endpoint = "dust-streamer-3";
  dataplane::BlockStreamer streamer(leaf, tsdb, config);

  util::Rng rng(11);
  for (int i = 0; i < 300; ++i)
    tsdb.append(cpu, telemetry::Sample{i * 100, rng.uniform(0.0, 100.0)});
  streamer.flush();
  pump(leaf, hub);
  ASSERT_EQ(collector.stats().samples, 300u);

  // Window 1: a clean full-mode stream audits as expected == delivered.
  std::vector<dataplane::Collector::LossAuditEntry> audit =
      collector.drain_loss_audit();
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_EQ(audit[0].owner, 3u);
  EXPECT_DOUBLE_EQ(audit[0].delivered, 300.0);
  EXPECT_DOUBLE_EQ(audit[0].expected, audit[0].delivered);
  // The cursor advanced: nothing new, nothing reported.
  EXPECT_TRUE(collector.drain_loss_audit().empty());

  const std::uint64_t next_seq = streamer.stats().batches_sent;

  // Window 2: a declared gap (degrade announcement covering the skipped
  // seqs) does not count against the owner — drain stays empty.
  {
    wire::DegradeBody degrade;
    degrade.owner = 3;
    degrade.mode = telemetry::DegradeMode::kSampled;
    degrade.keep_probability = 0.5;
    degrade.gap_from_batch = next_seq;
    degrade.gap_to_batch = next_seq + 1;
    degrade.samples_dropped = 40;
    wire::Frame frame = wire::degrade_frame("dust-streamer-3",
                                            "dust-collector",
                                            std::move(degrade));
    wire::GatherFrame encoded;
    encoded.head = wire::encode_frame(frame);
    ASSERT_TRUE(leaf.send_data_frame("dust-streamer-3", "dust-collector",
                                     std::move(encoded),
                                     sim::Priority::kNormal, "data_degrade",
                                     nullptr));
  }
  {
    wire::DataBlocksBody body;
    body.owner = 3;
    body.batch_seq = next_seq + 2;  // skips the two declared batches
    wire::Frame frame = wire::data_blocks_frame("dust-streamer-3",
                                                "dust-collector",
                                                std::move(body));
    ASSERT_TRUE(leaf.send_data_frame("dust-streamer-3", "dust-collector",
                                     wire::encode_data_blocks_gather(frame, {}),
                                     sim::Priority::kLow, "data_blocks",
                                     nullptr));
  }
  pump(leaf, hub);
  EXPECT_EQ(collector.stats().undeclared_gap_batches, 0u);
  EXPECT_TRUE(collector.drain_loss_audit().empty());

  // Window 3: an undeclared jump — the silent-loss signature — audits as
  // expected > delivered, charged at the owner's average batch size.
  {
    wire::DataBlocksBody body;
    body.owner = 3;
    body.batch_seq = next_seq + 6;  // 3 batches vanish without declaration
    wire::Frame frame = wire::data_blocks_frame("dust-streamer-3",
                                                "dust-collector",
                                                std::move(body));
    ASSERT_TRUE(leaf.send_data_frame("dust-streamer-3", "dust-collector",
                                     wire::encode_data_blocks_gather(frame, {}),
                                     sim::Priority::kLow, "data_blocks",
                                     nullptr));
  }
  pump(leaf, hub);
  EXPECT_EQ(collector.stats().undeclared_gap_batches, 3u);
  audit = collector.drain_loss_audit();
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_DOUBLE_EQ(audit[0].delivered, 0.0);
  EXPECT_GT(audit[0].expected, 0.0);
  EXPECT_TRUE(collector.drain_loss_audit().empty());
}

class DataplaneCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DataplaneCheck, SeededScenarioHoldsNoSilentLossContract) {
  const check::DataplaneSpec spec = check::random_dataplane_spec(GetParam());
  const check::DataplaneRunReport report =
      check::run_dataplane_scenario(spec);
  const std::vector<check::Violation> violations =
      check::check_dataplane(report);
  EXPECT_TRUE(violations.empty()) << check::describe(violations);
  // Sanity on the generator itself: the run must have actually streamed.
  EXPECT_GT(report.samples_appended, 0u);
  EXPECT_GT(report.streamer.batches_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataplaneCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dust
