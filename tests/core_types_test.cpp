#include "core/types.hpp"

#include <gtest/gtest.h>

namespace dust::core {
namespace {

TEST(Thresholds, DefaultsValid) {
  Thresholds t;
  EXPECT_NO_THROW(t.validate());
}

TEST(Thresholds, ValidateRejectsBadOrderings) {
  Thresholds t;
  t.c_max = 50.0;
  t.co_max = 60.0;  // co_max > c_max
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Thresholds{};
  t.x_min = 70.0;  // x_min > co_max
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Thresholds{};
  t.c_max = 101.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Thresholds{};
  t.x_min = -1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Thresholds, ClassifyBands) {
  Thresholds t;  // c_max 80, co_max 60
  EXPECT_EQ(t.classify(90.0), NodeRole::kBusy);
  EXPECT_EQ(t.classify(80.0), NodeRole::kBusy);  // C_i >= Cmax
  EXPECT_EQ(t.classify(70.0), NodeRole::kNeutral);
  EXPECT_EQ(t.classify(60.0), NodeRole::kOffloadCandidate);  // C_j <= COmax
  EXPECT_EQ(t.classify(10.0), NodeRole::kOffloadCandidate);
}

TEST(Thresholds, ExcessAndSpare) {
  Thresholds t;
  EXPECT_DOUBLE_EQ(t.excess_load(93.0), 13.0);
  EXPECT_DOUBLE_EQ(t.spare_capacity(45.0), 15.0);
}

TEST(Thresholds, DeltaIoEquation5) {
  Thresholds t;
  t.c_max = 80.0;
  t.co_max = 60.0;
  t.x_min = 10.0;
  // (60 - 10) / (100 - 80) = 2.5.
  EXPECT_DOUBLE_EQ(t.delta_io(), 2.5);
}

TEST(Thresholds, DeltaIoLowWhenBusyBandWide) {
  Thresholds t;
  t.c_max = 50.0;
  t.co_max = 40.0;
  t.x_min = 10.0;
  // (40-10)/(100-50) = 0.6 < K_io: prone to infeasible optimization.
  EXPECT_DOUBLE_EQ(t.delta_io(), 0.6);
  EXPECT_LT(t.delta_io(), Thresholds::kRecommendedKio);
}

TEST(Thresholds, DeltaIoThrowsAtFullCmax) {
  Thresholds t;
  t.c_max = 100.0;
  EXPECT_THROW(static_cast<void>(t.delta_io()), std::invalid_argument);
}

TEST(NodeRole, ToStringCoversAll) {
  EXPECT_STREQ(to_string(NodeRole::kNoneOffloading), "none-offloading");
  EXPECT_STREQ(to_string(NodeRole::kBusy), "busy");
  EXPECT_STREQ(to_string(NodeRole::kOffloadCandidate), "offload-candidate");
  EXPECT_STREQ(to_string(NodeRole::kNeutral), "neutral");
  EXPECT_STREQ(to_string(NodeRole::kOffloadDestination), "offload-destination");
}

}  // namespace
}  // namespace dust::core
