// Concurrency stress for the lock-free obs primitives, built to run under
// ThreadSanitizer (the `tsan` ctest label / CMake preset): writer threads
// hammer MetricRegistry counters and histograms while a scraper thread
// snapshots, and the flight recorder absorbs concurrent record() calls
// racing a snapshot(). Assertions check exact conservation totals — the
// relaxed-atomic hot paths must lose nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace dust::obs {
namespace {

constexpr int kWriters = 4;
constexpr int kOpsPerWriter = 20000;

TEST(ObsConcurrency, RegistryUpdatesSurviveConcurrentScrapes) {
  set_enabled(true);
  MetricRegistry registry;
  // Pre-register so writers exercise the lock-free update path, not the
  // mutex-guarded registration path (the documented hot-loop contract).
  Counter& shared_counter = registry.counter("stress_shared_total");
  Histogram& shared_hist = registry.histogram("stress_shared_ms");
  for (int w = 0; w < kWriters; ++w)
    (void)registry.counter("stress_writer_" + std::to_string(w) + "_total");

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot scrape = registry.snapshot();
      const CounterSnapshot* total =
          scrape.find_counter("stress_shared_total");
      ASSERT_NE(total, nullptr);
      ASSERT_GE(total->value, last);  // counters are monotonic
      last = total->value;
      const NamedHistogramSnapshot* hist =
          scrape.find_histogram("stress_shared_ms");
      ASSERT_NE(hist, nullptr);
      ASSERT_LE(hist->count,
                static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &shared_counter, &shared_hist, w] {
      Counter& own =
          registry.counter("stress_writer_" + std::to_string(w) + "_total");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        shared_counter.inc();
        own.inc();
        shared_hist.observe(static_cast<double>(i % 128));
        registry.gauge("stress_gauge").set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  // Conservation: nothing lost despite the concurrent scrapes.
  const RegistrySnapshot scrape = registry.snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWriters) * kOpsPerWriter;
  EXPECT_EQ(scrape.find_counter("stress_shared_total")->value, expected);
  EXPECT_EQ(scrape.find_histogram("stress_shared_ms")->count, expected);
  EXPECT_DOUBLE_EQ(scrape.find_histogram("stress_shared_ms")->min, 0.0);
  EXPECT_DOUBLE_EQ(scrape.find_histogram("stress_shared_ms")->max, 127.0);
  for (int w = 0; w < kWriters; ++w)
    EXPECT_EQ(registry.counter("stress_writer_" + std::to_string(w) +
                               "_total")
                  .value(),
              static_cast<std::uint64_t>(kOpsPerWriter));
}

TEST(ObsConcurrency, FlightRecorderAbsorbsConcurrentWritersAndSnapshots) {
  set_enabled(true);
  FlightRecorder recorder(1024);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<FlightEvent> events = recorder.snapshot();
      // Snapshot skips in-flight slots but never returns garbage: events
      // come back seq-ordered with intact payloads.
      for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      for (const FlightEvent& event : events) {
        ASSERT_EQ(event.kind, FlightEventKind::kCustom);
        ASSERT_EQ(event.sim_ms, 7);
        ASSERT_STREQ(event.detail, "payload");
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < kOpsPerWriter; ++i)
        recorder.record(FlightEventKind::kCustom, 7, "payload");
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  const std::vector<FlightEvent> events = recorder.snapshot();
  EXPECT_EQ(events.size(), recorder.capacity());
  for (const FlightEvent& event : events)
    EXPECT_STREQ(event.detail, "payload");
}

}  // namespace
}  // namespace dust::obs
