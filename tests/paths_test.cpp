#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::graph {
namespace {

Graph diamond() {
  // 0-1, 0-2, 1-3, 2-3 plus the chord 1-2.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  return g;
}

TEST(BfsHops, LineGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BfsHops, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BfsHops, FatTreeDiameter) {
  const FatTree ft(4);
  // Edge switches in different pods are exactly 4 hops apart
  // (edge-agg-core-agg-edge).
  const auto dist = bfs_hops(ft.graph(), ft.edge_switch(0, 0));
  EXPECT_EQ(dist[ft.edge_switch(1, 0)], 4u);
  EXPECT_EQ(dist[ft.edge_switch(0, 1)], 2u);  // same pod via aggregation
  EXPECT_EQ(dist[ft.aggregation(0, 0)], 1u);
}

TEST(BfsHops, InvalidSourceThrows) {
  Graph g(2);
  EXPECT_THROW(bfs_hops(g, 5), std::out_of_range);
}

TEST(Dijkstra, PrefersCheapLongPath) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2);
  const EdgeId hop1 = g.add_edge(0, 1);
  const EdgeId hop2 = g.add_edge(1, 2);
  std::vector<double> cost(3);
  cost[direct] = 10.0;
  cost[hop1] = 1.0;
  cost[hop2] = 2.0;
  const ShortestPathTree tree = dijkstra(g, 0, cost);
  EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
  const Path path = tree.extract(g, 0, 2);
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(path.hops(), 2u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1);
  std::vector<double> cost(1, 1.0);
  (void)e;
  const ShortestPathTree tree = dijkstra(g, 0, cost);
  EXPECT_EQ(tree.distance[2], kInfiniteCost);
  EXPECT_TRUE(tree.extract(g, 0, 2).nodes.empty());
}

TEST(Dijkstra, NegativeCostThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  std::vector<double> cost{-1.0};
  EXPECT_THROW(dijkstra(g, 0, cost), std::invalid_argument);
}

TEST(Dijkstra, CostSizeMismatchThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  std::vector<double> cost;
  EXPECT_THROW(dijkstra(g, 0, cost), std::invalid_argument);
}

TEST(PathCost, SumsEdgeCosts) {
  Graph g = diamond();
  std::vector<double> cost{1, 2, 4, 8, 16};
  const auto paths = enumerate_simple_paths(g, 0, 3, 0);
  for (const Path& p : paths) {
    double expected = 0;
    for (EdgeId e : p.edges) expected += cost[e];
    EXPECT_DOUBLE_EQ(p.cost(cost), expected);
  }
}

TEST(Enumerate, DiamondAllPaths) {
  Graph g = diamond();
  const auto paths = enumerate_simple_paths(g, 0, 3, 0);
  // 0-1-3, 0-2-3, 0-1-2-3, 0-2-1-3.
  EXPECT_EQ(paths.size(), 4u);
  std::set<std::vector<NodeId>> node_seqs;
  for (const Path& p : paths) {
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.destination(), 3u);
    EXPECT_EQ(p.nodes.size(), p.edges.size() + 1);
    node_seqs.insert(p.nodes);
  }
  EXPECT_EQ(node_seqs.size(), 4u);  // all distinct
}

TEST(Enumerate, HopBoundFilters) {
  Graph g = diamond();
  EXPECT_EQ(enumerate_simple_paths(g, 0, 3, 2).size(), 2u);
  EXPECT_EQ(enumerate_simple_paths(g, 0, 3, 1).size(), 0u);
  EXPECT_EQ(enumerate_simple_paths(g, 0, 3, 3).size(), 4u);
}

TEST(Enumerate, MaxPathsCapStopsEarly) {
  Graph g = diamond();
  EXPECT_EQ(enumerate_simple_paths(g, 0, 3, 0, 2).size(), 2u);
}

TEST(Enumerate, SimplePathsNeverRevisit) {
  Graph g = diamond();
  for (const Path& p : enumerate_simple_paths(g, 0, 3, 0)) {
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size());
  }
}

TEST(CountPaths, MatchesEnumeration) {
  Graph g = diamond();
  EXPECT_EQ(count_simple_paths(g, 0, 3, 0), 4u);
  EXPECT_EQ(count_simple_paths(g, 0, 3, 2), 2u);
}

TEST(CountPaths, FatTreeInterPod) {
  const FatTree ft(4);
  // Between edge switches in different pods, the 4-hop paths go via one of
  // the 2 aggregations and then one of its 2 cores: 4 paths.
  EXPECT_EQ(count_simple_paths(ft.graph(), ft.edge_switch(0, 0),
                               ft.edge_switch(1, 0), 4),
            4u);
  // Same pod, 2 hops: one per aggregation.
  EXPECT_EQ(count_simple_paths(ft.graph(), ft.edge_switch(0, 0),
                               ft.edge_switch(0, 1), 2),
            2u);
}

TEST(ForEachSimplePath, VisitsMultipleTargets) {
  Graph g = diamond();
  std::set<NodeId> targets{1, 2};
  std::size_t count = 0;
  for_each_simple_path(
      g, 0, [&targets](NodeId v) { return targets.count(v) > 0; }, 2,
      [&count](const Path&) {
        ++count;
        return true;
      });
  // To node 1: {0-1}, {0-2-1}; to node 2: {0-2}, {0-1-2}.
  EXPECT_EQ(count, 4u);
}

TEST(ForEachSimplePath, CallbackCanAbort) {
  Graph g = diamond();
  std::size_t count = 0;
  for_each_simple_path(
      g, 0, [](NodeId) { return true; }, 0,
      [&count](const Path&) {
        ++count;
        return count < 3;
      });
  EXPECT_EQ(count, 3u);
}

TEST(HopBoundedMinCost, MatchesEnumerationOnDiamond) {
  Graph g = diamond();
  std::vector<double> cost{1, 5, 1, 1, 1};
  for (std::uint32_t bound : {1u, 2u, 3u, 0u}) {
    const auto dp = hop_bounded_min_cost(g, 0, cost, bound);
    for (NodeId v = 1; v < 4; ++v) {
      const auto paths = enumerate_simple_paths(g, 0, v, bound);
      double best = kInfiniteCost;
      for (const Path& p : paths) best = std::min(best, p.cost(cost));
      EXPECT_DOUBLE_EQ(dp[v], best) << "node " << v << " bound " << bound;
    }
  }
}

TEST(HopBoundedMinCost, ZeroMeansUnbounded) {
  Graph g(5);
  std::vector<double> cost;
  for (int i = 0; i < 4; ++i) {
    g.add_edge(i, i + 1);
    cost.push_back(1.0);
  }
  const auto dp = hop_bounded_min_cost(g, 0, cost, 0);
  EXPECT_DOUBLE_EQ(dp[4], 4.0);
  const auto bounded = hop_bounded_min_cost(g, 0, cost, 3);
  EXPECT_EQ(bounded[4], kInfiniteCost);
}

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: the DP evaluator equals exhaustive enumeration for every target
// and hop bound (this underpins the paper-faithful vs. fast Trmin claim).
TEST_P(RandomGraphSweep, DpEqualsEnumeration) {
  util::Rng rng(GetParam());
  const Graph g = make_random_connected(9, 8, rng);
  std::vector<double> cost(g.edge_count());
  for (double& c : cost) c = rng.uniform(0.1, 10.0);
  for (std::uint32_t bound : {1u, 2u, 3u, 5u, 0u}) {
    const auto dp = hop_bounded_min_cost(g, 0, cost, bound);
    for (NodeId v = 1; v < g.node_count(); ++v) {
      double best = kInfiniteCost;
      for (const Path& p : enumerate_simple_paths(g, 0, v, bound))
        best = std::min(best, p.cost(cost));
      if (best == kInfiniteCost)
        EXPECT_EQ(dp[v], kInfiniteCost);
      else
        EXPECT_NEAR(dp[v], best, 1e-9);
    }
  }
}

// Property: Dijkstra equals unbounded DP.
TEST_P(RandomGraphSweep, DijkstraEqualsUnboundedDp) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const Graph g = make_random_connected(30, 40, rng);
  std::vector<double> cost(g.edge_count());
  for (double& c : cost) c = rng.uniform(0.1, 10.0);
  const ShortestPathTree tree = dijkstra(g, 3, cost);
  const auto dp = hop_bounded_min_cost(g, 3, cost, 0);
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_NEAR(tree.distance[v], dp[v], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(KShortest, OrderedDistinctLoopless) {
  Graph g = diamond();
  std::vector<double> cost{1, 2, 4, 8, 16};
  const auto paths = k_shortest_paths(g, 0, 3, cost, 10);
  EXPECT_EQ(paths.size(), 4u);  // only 4 simple paths exist
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i - 1].cost(cost), paths[i].cost(cost));
  std::set<std::vector<NodeId>> distinct;
  for (const Path& p : paths) {
    distinct.insert(p.nodes);
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "loop found";
  }
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(KShortest, FirstMatchesDijkstra) {
  util::Rng rng(77);
  const Graph g = make_random_connected(15, 20, rng);
  std::vector<double> cost(g.edge_count());
  for (double& c : cost) c = rng.uniform(0.5, 5.0);
  const auto paths = k_shortest_paths(g, 0, 14, cost, 3);
  ASSERT_FALSE(paths.empty());
  const ShortestPathTree tree = dijkstra(g, 0, cost);
  EXPECT_NEAR(paths[0].cost(cost), tree.distance[14], 1e-9);
}

TEST(KShortest, KZeroEmpty) {
  Graph g = diamond();
  std::vector<double> cost(5, 1.0);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, cost, 0).empty());
}

TEST(KShortest, DisconnectedEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  std::vector<double> cost{1.0};
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, cost, 5).empty());
}

TEST(KShortest, MatchesEnumerationRanking) {
  util::Rng rng(88);
  const Graph g = make_random_connected(8, 6, rng);
  std::vector<double> cost(g.edge_count());
  for (double& c : cost) c = rng.uniform(0.5, 5.0);
  const NodeId dst = 7;
  auto all = enumerate_simple_paths(g, 0, dst, 0);
  std::sort(all.begin(), all.end(), [&cost](const Path& a, const Path& b) {
    return a.cost(cost) < b.cost(cost);
  });
  const std::size_t k = std::min<std::size_t>(4, all.size());
  const auto top = k_shortest_paths(g, 0, dst, cost, k);
  ASSERT_EQ(top.size(), k);
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_NEAR(top[i].cost(cost), all[i].cost(cost), 1e-9);
}

}  // namespace
}  // namespace dust::graph
