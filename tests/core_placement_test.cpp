#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

// The paper's illustrative topology (Fig. 4): S1 busy (node 0), S2 and S6
// offload candidates (nodes 1 and 5), 7 nodes / 7 edges, with routes
// r1={e1-e2}, r2={e1-e3-e4}, r3={e1-e3-e4-e7?-...}, r4={e1-e7}.
struct Fig4 {
  Nmdb nmdb;
  static Fig4 make() {
    graph::Graph g(7);
    g.add_edge(0, 3);  // e1
    g.add_edge(3, 1);  // e2
    g.add_edge(3, 4);  // e3
    g.add_edge(4, 1);  // e4
    g.add_edge(1, 2);  // e5
    g.add_edge(2, 6);  // e6
    g.add_edge(3, 5);  // e7
    net::NetworkState state(std::move(g));
    for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
      state.set_link(e, net::LinkState{1000.0, 1.0});
    state.set_node_utilization(0, 90.0);  // S1 busy: Cs = 10
    state.set_node_utilization(1, 40.0);  // S2 candidate: Cd = 20
    state.set_node_utilization(5, 55.0);  // S6 candidate: Cd = 5
    for (graph::NodeId v : {2u, 3u, 4u, 6u})
      state.set_node_utilization(v, 70.0);  // relays: neutral
    state.set_monitoring_data_mb(0, 100.0);
    return Fig4{Nmdb(std::move(state), Thresholds{})};
  }
};

TEST(Placement, Fig4SetsAndLoads) {
  Fig4 f = Fig4::make();
  const PlacementProblem p = build_placement_problem(f.nmdb, PlacementOptions{});
  EXPECT_EQ(p.busy, (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(p.candidates, (std::vector<graph::NodeId>{1, 5}));
  EXPECT_EQ(p.cs, (std::vector<double>{10.0}));
  EXPECT_EQ(p.cd, (std::vector<double>{20.0, 5.0}));
  EXPECT_DOUBLE_EQ(p.total_excess(), 10.0);
  EXPECT_DOUBLE_EQ(p.total_spare(), 25.0);
}

TEST(Placement, Fig4TrminValues) {
  Fig4 f = Fig4::make();
  const PlacementProblem p = build_placement_problem(f.nmdb, PlacementOptions{});
  // 100 Mb over 1000 Mbps links: 0.1 s per hop. Best S1->S2 = e1-e2 (0.2 s),
  // best S1->S6 = e1-e7 (0.2 s).
  EXPECT_NEAR(p.trmin_at(0, 0), 0.2, 1e-12);
  EXPECT_NEAR(p.trmin_at(0, 1), 0.2, 1e-12);
  EXPECT_GT(p.paths_explored, 0u);
}

TEST(Placement, MaxHopOneLeavesCandidatesUnreachable) {
  Fig4 f = Fig4::make();
  PlacementOptions options;
  options.max_hops = 1;
  const PlacementProblem p = build_placement_problem(f.nmdb, options);
  EXPECT_EQ(p.trmin_at(0, 0), solver::kInfinity);
  EXPECT_EQ(p.trmin_at(0, 1), solver::kInfinity);
}

TEST(Placement, DpAndEnumerationProduceSameProblem) {
  Fig4 f = Fig4::make();
  PlacementOptions enum_opt;
  PlacementOptions dp_opt;
  dp_opt.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementProblem a = build_placement_problem(f.nmdb, enum_opt);
  const PlacementProblem b = build_placement_problem(f.nmdb, dp_opt);
  ASSERT_EQ(a.trmin.size(), b.trmin.size());
  for (std::size_t i = 0; i < a.trmin.size(); ++i)
    EXPECT_NEAR(a.trmin[i], b.trmin[i], 1e-9);
}

TEST(Placement, ParallelTrminMatchesSerial) {
  util::Rng rng(3);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  PlacementOptions serial;
  serial.max_hops = 4;
  PlacementOptions parallel = serial;
  parallel.parallel_trmin = true;
  const PlacementProblem a = build_placement_problem(nmdb, serial);
  const PlacementProblem b = build_placement_problem(nmdb, parallel);
  ASSERT_EQ(a.trmin.size(), b.trmin.size());
  for (std::size_t i = 0; i < a.trmin.size(); ++i)
    EXPECT_DOUBLE_EQ(a.trmin[i], b.trmin[i]);
}

TEST(Placement, EmptyBusySetYieldsEmptyProblem) {
  net::NetworkState state(graph::make_ring(4));
  for (graph::NodeId v = 0; v < 4; ++v) state.set_node_utilization(v, 50.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const PlacementProblem p = build_placement_problem(nmdb, PlacementOptions{});
  EXPECT_TRUE(p.busy.empty());
  EXPECT_EQ(p.candidates.size(), 4u);
  EXPECT_TRUE(p.trmin.empty());
}

TEST(PlacementResult, AccountingHelpers) {
  PlacementResult r;
  r.assignments = {{0, 1, 5.0, 0.1}, {0, 2, 3.0, 0.2}, {7, 1, 2.0, 0.3}};
  EXPECT_DOUBLE_EQ(r.offloaded_total(), 10.0);
  EXPECT_DOUBLE_EQ(r.offloaded_from(0), 8.0);
  EXPECT_DOUBLE_EQ(r.offloaded_from(7), 2.0);
  EXPECT_DOUBLE_EQ(r.absorbed_by(1), 7.0);
  EXPECT_DOUBLE_EQ(r.absorbed_by(2), 3.0);
}

TEST(PlacementViolation, DetectsOverCapacity) {
  PlacementProblem p;
  p.busy = {0};
  p.candidates = {1};
  p.cs = {5.0};
  p.cd = {3.0};
  p.trmin = {0.1};
  PlacementResult r;
  r.assignments = {{0, 1, 5.0, 0.1}};  // exceeds Cd by 2
  EXPECT_NEAR(placement_violation(p, r), 2.0, 1e-9);
}

TEST(PlacementViolation, ZeroForExactSolution) {
  PlacementProblem p;
  p.busy = {0};
  p.candidates = {1, 2};
  p.cs = {5.0};
  p.cd = {3.0, 4.0};
  p.trmin = {0.1, 0.2};
  PlacementResult r;
  r.assignments = {{0, 1, 3.0, 0.1}, {0, 2, 2.0, 0.2}};
  EXPECT_NEAR(placement_violation(p, r), 0.0, 1e-9);
}

TEST(PlacementViolation, DetectsShortfallMismatch) {
  PlacementProblem p;
  p.busy = {0};
  p.candidates = {1};
  p.cs = {5.0};
  p.cd = {10.0};
  p.trmin = {0.1};
  PlacementResult r;
  r.assignments = {{0, 1, 3.0, 0.1}};
  r.unplaced = 0.0;  // claims complete but shipped only 3 of 5
  EXPECT_NEAR(placement_violation(p, r), 2.0, 1e-9);
  r.unplaced = 2.0;  // honest partial solution is consistent
  EXPECT_NEAR(placement_violation(p, r), 0.0, 1e-9);
}

}  // namespace
}  // namespace dust::core
