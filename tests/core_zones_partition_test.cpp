// Focused tests for the zone partitioner's growth/merge machinery: the
// dual seed-order selection and the fragment-merging repair pass.
#include <gtest/gtest.h>

#include <set>

#include "core/zones.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::core {
namespace {

std::size_t smallest_zone(const std::vector<Zone>& zones) {
  std::size_t best = static_cast<std::size_t>(-1);
  for (const Zone& zone : zones) best = std::min(best, zone.members.size());
  return best;
}

TEST(ZonePartition, FatTreeCap20PacksPerfectly) {
  // 8-k fat-tree (80 nodes): cap 20 admits a perfect 4-way split; the
  // partitioner must find it (id seed order packs tiers cleanly).
  const auto zones = partition_zones(graph::FatTree(8).graph(), 20);
  ASSERT_EQ(zones.size(), 4u);
  for (const Zone& zone : zones) EXPECT_EQ(zone.members.size(), 20u);
}

TEST(ZonePartition, FatTreeCap10AvoidsMassFragmentation) {
  // Cap 10 on the 8-k fat-tree: naive id-order growth strands ~40
  // singleton fragments; degree-order seeding plus merging must keep the
  // zone count near the ceil(80/10) = 8 ideal.
  const auto zones = partition_zones(graph::FatTree(8).graph(), 10);
  EXPECT_LE(zones.size(), 12u);
  std::size_t total = 0;
  for (const Zone& zone : zones) total += zone.members.size();
  EXPECT_EQ(total, 80u);
}

TEST(ZonePartition, MergeCoalescesLineFragments) {
  // A path graph partitions into consecutive runs; no fragment smaller than
  // half the cap should survive merging (its neighbour run always fits).
  const auto zones = partition_zones(graph::make_grid(1, 23), 5);
  std::size_t total = 0;
  for (const Zone& zone : zones) {
    EXPECT_LE(zone.members.size(), 5u);
    total += zone.members.size();
  }
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(zones.size(), 5u);  // ceil(23/5)
  EXPECT_GE(smallest_zone(zones), 3u);  // 23 = 5+5+5+5+3
}

TEST(ZonePartition, StarHubCannotFragment) {
  // Star with 12 leaves, cap 4: every zone except the hub's is grown from
  // leaves that only connect via the hub — fragments are unavoidable in
  // growth but every leaf zone must still be a connected singleton set.
  const graph::Graph star = graph::make_star(12);
  const auto zones = partition_zones(star, 4);
  std::set<graph::NodeId> seen;
  for (const Zone& zone : zones)
    for (graph::NodeId v : zone.members) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), 13u);
  for (const Zone& zone : zones) EXPECT_LE(zone.members.size(), 4u);
}

TEST(ZonePartition, RandomGraphsAlwaysCoverConnectedWithinCap) {
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::make_random_connected(60, 60, rng);
    for (std::size_t cap : {5u, 13u, 29u}) {
      const auto zones = partition_zones(g, cap);
      std::set<graph::NodeId> seen;
      for (const Zone& zone : zones) {
        ASSERT_FALSE(zone.members.empty());
        EXPECT_LE(zone.members.size(), cap);
        // Connectivity within the induced subgraph.
        std::set<graph::NodeId> members(zone.members.begin(),
                                        zone.members.end());
        std::vector<graph::NodeId> stack{zone.members[0]};
        std::set<graph::NodeId> reached{zone.members[0]};
        while (!stack.empty()) {
          const graph::NodeId node = stack.back();
          stack.pop_back();
          for (const graph::Adjacency& adj : g.neighbors(node)) {
            if (members.count(adj.neighbor) && !reached.count(adj.neighbor)) {
              reached.insert(adj.neighbor);
              stack.push_back(adj.neighbor);
            }
          }
        }
        EXPECT_EQ(reached.size(), zone.members.size());
        for (graph::NodeId v : zone.members)
          EXPECT_TRUE(seen.insert(v).second);
      }
      EXPECT_EQ(seen.size(), 60u);
    }
  }
}

}  // namespace
}  // namespace dust::core
