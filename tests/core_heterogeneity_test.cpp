// Heterogeneous platform factors (paper §IV-A: the homogeneity assumption
// "can be adjusted with a coefficient factor relating two endpoint platform
// capacities").
#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb star_scenario() {
  // Hub 0 busy (Cs = 18), two leaves as candidates (Cd = 5 each).
  net::NetworkState state(graph::make_star(2));
  state.set_node_utilization(0, 98.0);
  state.set_node_utilization(1, 55.0);
  state.set_node_utilization(2, 55.0);
  state.set_monitoring_data_mb(0, 10.0);
  return Nmdb(std::move(state), Thresholds{});
}

TEST(Heterogeneity, FactorValidation) {
  Nmdb nmdb = star_scenario();
  EXPECT_TRUE(nmdb.homogeneous());
  nmdb.set_platform_factor(1, 4.0);
  EXPECT_FALSE(nmdb.homogeneous());
  EXPECT_DOUBLE_EQ(nmdb.platform_factor(1), 4.0);
  EXPECT_THROW(nmdb.set_platform_factor(1, 0.0), std::invalid_argument);
  EXPECT_THROW(nmdb.set_platform_factor(1, -2.0), std::invalid_argument);
}

TEST(Heterogeneity, HomogeneousProblemHasUnitCoefficients) {
  Nmdb nmdb = star_scenario();
  const PlacementProblem p = build_placement_problem(nmdb, PlacementOptions{});
  EXPECT_FALSE(p.heterogeneous());
  for (std::size_t bi = 0; bi < p.busy.size(); ++bi)
    for (std::size_t cj = 0; cj < p.candidates.size(); ++cj)
      EXPECT_DOUBLE_EQ(p.capacity_coefficient(bi, cj), 1.0);
}

TEST(Heterogeneity, StrongerDestinationAbsorbsMore) {
  // Homogeneous: Cs = 18 > Cd total = 10 -> infeasible.
  Nmdb nmdb = star_scenario();
  EXPECT_EQ(OptimizationEngine().run(nmdb).status, solver::Status::kInfeasible);
  // A 4x-capable DPU at leaf 1: 18 units of hub load consume 18/4 = 4.5 of
  // leaf 1's 5 spare points -> now feasible on leaf 1 alone.
  nmdb.set_platform_factor(1, 4.0);
  const PlacementResult r = OptimizationEngine().run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.offloaded_from(0), 18.0, 1e-6);
  const PlacementProblem p = build_placement_problem(nmdb, PlacementOptions{});
  EXPECT_LT(placement_violation(p, r), 1e-6);
}

TEST(Heterogeneity, WeakerDestinationAbsorbsLess) {
  // Leaf capacities halved in effect: factor 0.5 means each unit of hub
  // load costs 2 units of leaf capacity -> only 5 of 18 can ship at most
  // (2.5 effective per leaf), so the exact model is infeasible and partial
  // mode ships 5.
  Nmdb nmdb = star_scenario();
  nmdb.set_platform_factor(1, 0.5);
  nmdb.set_platform_factor(2, 0.5);
  EXPECT_EQ(OptimizationEngine().run(nmdb).status, solver::Status::kInfeasible);
  OptimizerOptions options;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.offloaded_total(), 5.0, 1e-6);
  EXPECT_NEAR(r.unplaced, 13.0, 1e-6);
}

TEST(Heterogeneity, FactorOneMatchesHomogeneousSolver) {
  util::Rng rng(5);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.allow_partial = true;
  const PlacementResult homogeneous = OptimizationEngine(options).run(nmdb);
  // Equal non-unit factors everywhere: coefficients are still 1, so the
  // heterogeneous LP path must reproduce the transportation result.
  for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
    nmdb.set_platform_factor(v, 3.0);
  const PlacementResult scaled = OptimizationEngine(options).run(nmdb);
  ASSERT_EQ(scaled.status, homogeneous.status);
  EXPECT_NEAR(scaled.objective, homogeneous.objective,
              1e-6 * (1.0 + homogeneous.objective));
  EXPECT_NEAR(scaled.offloaded_total(), homogeneous.offloaded_total(), 1e-6);
}

class HeterogeneitySweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: heterogeneous solves are feasible w.r.t. factor-weighted
// capacities and never ship more than ΣCs.
TEST_P(HeterogeneitySweep, FactorWeightedFeasibility) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
    nmdb.set_platform_factor(v, rng.uniform(0.5, 4.0));
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.allow_partial = true;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  ASSERT_TRUE(r.optimal());
  const PlacementProblem p =
      build_placement_problem(nmdb, options.placement);
  EXPECT_LT(placement_violation(p, r), 1e-6);
  EXPECT_LE(r.offloaded_total(), nmdb.total_excess() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterogeneitySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace dust::core
