// Stress and adversarial cases for the solver suite: classic cycling
// examples, larger random cross-validation, and scaling pathologies.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "solver/branch_and_bound.hpp"
#include "solver/simplex.hpp"
#include "solver/transportation.hpp"
#include "util/rng.hpp"

namespace dust::solver {
namespace {

TEST(SimplexStress, BealesCyclingExample) {
  // Beale (1955): cycles forever under naive Dantzig pivoting without
  // anti-cycling. Optimum -0.05 at x = (1/25, 0, 1, 0).
  LinearProgram lp;
  const auto x1 = lp.add_variable(0, kInfinity, -0.75);
  const auto x2 = lp.add_variable(0, kInfinity, 150.0);
  const auto x3 = lp.add_variable(0, kInfinity, -0.02);
  const auto x4 = lp.add_variable(0, kInfinity, 6.0);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    Sense::kLessEqual, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    Sense::kLessEqual, 0.0);
  lp.add_constraint({{x3, 1.0}}, Sense::kLessEqual, 1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.values[x3], 1.0, 1e-9);
}

TEST(SimplexStress, KuhnCyclingExample) {
  // Another classic cycler (Kuhn). min -2a -3b + c + 12d with the standard
  // cycling rows; anti-cycling must terminate at the optimum.
  LinearProgram lp;
  const auto a = lp.add_variable(0, kInfinity, -2.0);
  const auto b = lp.add_variable(0, kInfinity, -3.0);
  const auto c = lp.add_variable(0, kInfinity, 1.0);
  const auto d = lp.add_variable(0, kInfinity, 12.0);
  lp.add_constraint({{a, -2.0}, {b, -9.0}, {c, 1.0}, {d, 9.0}},
                    Sense::kLessEqual, 0.0);
  lp.add_constraint({{a, 1.0 / 3.0}, {b, 1.0}, {c, -1.0 / 3.0}, {d, -2.0}},
                    Sense::kLessEqual, 0.0);
  lp.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}, {d, 1.0}},
                    Sense::kLessEqual, 1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_LT(s.objective, 0.0);
  EXPECT_LT(lp.max_violation(s.values), 1e-7);
}

TEST(SimplexStress, ManyRedundantConstraints) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.0);
  for (int i = 0; i < 200; ++i)
    lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 10.0 + (i % 7));
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.values[x], 10.0, 1e-9);
}

TEST(SimplexStress, WideRangeOfCoefficientMagnitudes) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1e-6);
  const auto y = lp.add_variable(0, kInfinity, -1e6);
  lp.add_constraint({{x, 1e-4}, {y, 1e4}}, Sense::kLessEqual, 1.0);
  const Solution s = solve_simplex(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  // All budget goes to y: y = 1e-4, objective -100.
  EXPECT_NEAR(s.objective, -100.0, 1e-6);
}

class BigTransportationSweep : public ::testing::TestWithParam<std::uint64_t> {
};

// Larger instances: the specialized solver must stay exact (simplex agrees)
// and feasible at 30x60 with mixed forbidden cells.
TEST_P(BigTransportationSweep, LargeInstancesStayExact) {
  util::Rng rng(GetParam());
  const std::size_t m = 30, n = 60;
  TransportationProblem p;
  double total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    p.supply.push_back(rng.uniform(0.5, 8.0));
    total += p.supply.back();
  }
  for (std::size_t j = 0; j < n; ++j)
    p.capacity.push_back(total / n + rng.uniform(0.1, 2.0));
  for (std::size_t c = 0; c < m * n; ++c)
    p.cost.push_back(rng.bernoulli(0.1) ? kInfinity : rng.uniform(0.05, 4.0));
  const TransportationResult r = solve_transportation(p);
  if (r.status != Status::kOptimal) {
    // Forbidden cells can genuinely block feasibility; simplex must agree.
    EXPECT_EQ(solve_simplex(to_linear_program(p)).status, Status::kInfeasible);
    return;
  }
  const Solution s = solve_simplex(to_linear_program(p));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, s.objective, 1e-4 * (1.0 + s.objective));
  // Row/column feasibility.
  for (std::size_t i = 0; i < m; ++i) {
    double shipped = 0;
    for (std::size_t j = 0; j < n; ++j) shipped += r.flow[i * n + j];
    EXPECT_NEAR(shipped, p.supply[i], 1e-6);
  }
  for (std::size_t j = 0; j < n; ++j) {
    double absorbed = 0;
    for (std::size_t i = 0; i < m; ++i) absorbed += r.flow[i * n + j];
    EXPECT_LE(absorbed, p.capacity[j] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigTransportationSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(BranchAndBoundStress, TwentyVariableKnapsack) {
  util::Rng rng(9);
  LinearProgram lp;
  std::vector<double> values, weights;
  for (int i = 0; i < 20; ++i) {
    values.push_back(rng.uniform(1.0, 10.0));
    weights.push_back(rng.uniform(1.0, 10.0));
    lp.add_variable(0, 1, -values.back(), true);
  }
  std::vector<std::pair<std::size_t, double>> terms;
  for (int i = 0; i < 20; ++i) terms.emplace_back(i, weights[i]);
  const double budget =
      std::accumulate(weights.begin(), weights.end(), 0.0) * 0.4;
  lp.add_constraint(std::move(terms), Sense::kLessEqual, budget);
  const Solution s = solve_branch_and_bound(lp);
  ASSERT_EQ(s.status, Status::kOptimal);
  // Sanity: integral, within budget, and better than the greedy solution.
  double weight = 0, value = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(s.values[i], std::round(s.values[i]), 1e-6);
    weight += weights[i] * s.values[i];
    value += values[i] * s.values[i];
  }
  EXPECT_LE(weight, budget + 1e-6);
  EXPECT_NEAR(-s.objective, value, 1e-6);
  EXPECT_GT(value, 0.0);
}

}  // namespace
}  // namespace dust::solver
