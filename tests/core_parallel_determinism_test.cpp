// Serial vs parallel_trmin determinism (DESIGN.md §13): the chunked
// pool-backed Trmin row fill must produce *bit-identical* placements to the
// serial fill at every worker count. Rows are disjoint, each worker reuses
// its own scratch, and per-chunk work tallies are reduced serially in chunk
// order — so not just the model but the solved assignments, the explored-path
// counters, and the truncation flag must match exactly.
//
// This binary carries the "sanitize" label: under ThreadSanitizer it doubles
// as a race check on the work-claiming cursor and the scratch reuse.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/optimizer.hpp"
#include "core/placement.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/rng.hpp"

namespace dust::core {
namespace {

void expect_same_problem(const PlacementProblem& a, const PlacementProblem& b) {
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.cs, b.cs);
  EXPECT_EQ(a.cd, b.cd);
  ASSERT_EQ(a.trmin.size(), b.trmin.size());
  for (std::size_t i = 0; i < a.trmin.size(); ++i)
    EXPECT_EQ(a.trmin[i], b.trmin[i]) << "trmin cell " << i;  // exact, not near
  EXPECT_EQ(a.paths_explored, b.paths_explored);
  EXPECT_EQ(a.truncated, b.truncated);
}

void expect_same_result(const PlacementResult& a, const PlacementResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.objective, b.objective);  // bit-identical costs => same pivots
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].from, b.assignments[i].from);
    EXPECT_EQ(a.assignments[i].to, b.assignments[i].to);
    EXPECT_EQ(a.assignments[i].amount, b.assignments[i].amount);
    EXPECT_EQ(a.assignments[i].trmin_seconds, b.assignments[i].trmin_seconds);
  }
}

struct Scenario {
  const char* name;
  Nmdb nmdb;
};

std::vector<Scenario> scenarios(std::uint64_t seed) {
  std::vector<Scenario> out;
  {
    util::Rng rng(seed);
    out.push_back({"fat-tree-k4",
                   Nmdb(net::make_random_state(graph::FatTree(4).graph(),
                                               net::LinkProfile{},
                                               net::NodeLoadProfile{}, rng),
                        Thresholds{})});
  }
  {
    util::Rng rng(seed);
    out.push_back({"random-48",
                   Nmdb(net::make_random_state(
                            graph::make_random_connected(48, 30, rng),
                            net::LinkProfile{}, net::NodeLoadProfile{}, rng),
                        Thresholds{})});
  }
  return out;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<net::EvaluatorMode> {};

// The headline contract: thread counts 1, 2, 8 all reproduce the serial
// build and the serial solve bit-for-bit, on both topology families.
TEST_P(ParallelDeterminism, SerialAndParallelBitIdentical) {
  for (Scenario& scenario : scenarios(71)) {
    PlacementOptions serial;
    serial.max_hops = 4;
    serial.evaluator = GetParam();
    const PlacementProblem reference =
        build_placement_problem(scenario.nmdb, serial);
    ASSERT_FALSE(reference.busy.empty()) << scenario.name;
    ASSERT_FALSE(reference.candidates.empty()) << scenario.name;

    OptimizerOptions solve_opt;
    solve_opt.placement = serial;
    solve_opt.allow_partial = true;
    const PlacementResult reference_solved =
        OptimizationEngine(solve_opt).run(scenario.nmdb);

    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(::testing::Message()
                   << scenario.name << " threads=" << threads);
      PlacementOptions parallel = serial;
      parallel.parallel_trmin = true;
      parallel.solver_threads = threads;
      expect_same_problem(reference,
                          build_placement_problem(scenario.nmdb, parallel));

      OptimizerOptions parallel_solve = solve_opt;
      parallel_solve.placement = parallel;
      expect_same_result(reference_solved,
                         OptimizationEngine(parallel_solve).run(scenario.nmdb));
    }
  }
}

// Repeated parallel builds are stable against scheduling: whichever worker
// claims whichever chunk, the outputs never wobble run-to-run.
TEST_P(ParallelDeterminism, RepeatedParallelBuildsAgree) {
  for (Scenario& scenario : scenarios(29)) {
    PlacementOptions options;
    options.max_hops = 4;
    options.evaluator = GetParam();
    options.parallel_trmin = true;
    options.solver_threads = 8;
    const PlacementProblem first =
        build_placement_problem(scenario.nmdb, options);
    for (int round = 0; round < 3; ++round)
      expect_same_problem(first, build_placement_problem(scenario.nmdb, options));
  }
}

INSTANTIATE_TEST_SUITE_P(Evaluators, ParallelDeterminism,
                         ::testing::Values(net::EvaluatorMode::kEnumerate,
                                           net::EvaluatorMode::kSharedFrontier),
                         [](const auto& info) {
                           return info.param == net::EvaluatorMode::kEnumerate
                                      ? "Enumerate"
                                      : "SharedFrontier";
                         });

}  // namespace
}  // namespace dust::core
