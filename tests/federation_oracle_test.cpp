// O8: sharded (federated) placement vs the single-manager optimum
// (DESIGN.md §16). Fat-tree pod cuts at k=4 and k=8, balanced cuts over
// random graphs, the bounded-HFR-gap property, and the bit-identical pin
// when the global optimum never crosses a domain boundary.
#include <gtest/gtest.h>

#include "check/federation_check.hpp"
#include "federation/partition.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"


namespace dust::check {
namespace {

/// Fat-trees have exponentially many equal-length paths; the exhaustive
/// enumerate evaluator is a non-starter there. The shared-frontier engine
/// is exact for Trmin and leaves every pair reachable (max_hops = 0), which
/// is the reachability precondition O8 declares.
core::PlacementOptions oracle_options() {
  core::PlacementOptions options;
  options.evaluator = net::EvaluatorMode::kSharedFrontier;
  return options;
}

core::Nmdb random_load_nmdb(const graph::Graph& graph, util::Rng& rng,
                            double busy_fraction) {
  net::NetworkState state(graph);
  for (graph::NodeId v = 0; v < graph.node_count(); ++v) {
    // Mostly comfortable candidates with distinct utilizations (unique
    // optima — ties would make the bit-identical comparison vacuous), a
    // sprinkle of busy nodes, a few neutral.
    const double roll = rng.uniform();
    double util;
    if (roll < busy_fraction)
      util = rng.uniform(82.0, 97.0);  // busy (Cmax = 80)
    else if (roll < busy_fraction + 0.15)
      util = rng.uniform(62.0, 78.0);  // neutral
    else
      util = rng.uniform(15.0, 58.0);  // candidate (COmax = 60)
    state.set_node_utilization(v, util);
    state.set_monitoring_data_mb(v, 5.0);
  }
  return core::Nmdb(std::move(state), core::Thresholds{});
}

TEST(FederationOracle, FatTreeK4TwoShards) {
  graph::FatTree topo(4);
  const auto partition = dust::federation::partition_fat_tree(topo, 2);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed);
    const core::Nmdb nmdb = random_load_nmdb(topo.graph(), rng, 0.25);
    const auto violations =
        check_federated_placement(nmdb, partition, oracle_options());
    for (const Violation& v : violations)
      ADD_FAILURE() << "seed " << seed << ": " << v.invariant << ": "
                    << v.detail;
  }
}

TEST(FederationOracle, FatTreeK8FourShards) {
  graph::FatTree topo(8);
  const auto partition = dust::federation::partition_fat_tree(topo, 4);
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    util::Rng rng(seed);
    const core::Nmdb nmdb = random_load_nmdb(topo.graph(), rng, 0.2);
    const auto violations =
        check_federated_placement(nmdb, partition, oracle_options());
    for (const Violation& v : violations)
      ADD_FAILURE() << "seed " << seed << ": " << v.invariant << ": "
                    << v.detail;
  }
}

TEST(FederationOracle, RandomGraphsBalancedCut) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    util::Rng rng(seed);
    const graph::Graph g = graph::make_random_connected(48, 100, rng);
    const auto partition = dust::federation::partition_balanced(g, 3);
    const core::Nmdb nmdb = random_load_nmdb(g, rng, 0.25);
    const auto violations =
        check_federated_placement(nmdb, partition, oracle_options());
    for (const Violation& v : violations)
      ADD_FAILURE() << "seed " << seed << ": " << v.invariant << ": "
                    << v.detail;
  }
}

TEST(FederationOracle, HfrGapStaysBoundedWithAmpleSpare) {
  // Spare-rich fleets: one delegation round must close most of the gap —
  // federated HFR may trail the optimum only by the declared stranding.
  graph::FatTree topo(4);
  const auto partition = dust::federation::partition_fat_tree(topo, 2);
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    util::Rng rng(seed);
    const core::Nmdb nmdb = random_load_nmdb(topo.graph(), rng, 0.15);
    const auto cmp = compare_federated_placement(nmdb, partition,
                                                 oracle_options());
    EXPECT_GE(cmp.hfr_gap_percent(), -1e-6) << "seed " << seed;
    // Every percent of gap must be stranding the model declared.
    const double gap_load = cmp.fed_unplaced -
                            (cmp.total_excess - cmp.single_placed);
    EXPECT_LE(gap_load, cmp.stranded_below_floor +
                            cmp.stranded_by_granularity + 1e-6)
        << "seed " << seed;
  }
}

TEST(FederationOracle, BitIdenticalWhenEveryBusyNodeStaysInDomain) {
  // All load and all spare live in shard 0; shard 1 is wall-to-wall
  // neutral (not busy, not a candidate). The global optimum then cannot
  // cross the cut, so O8 demands the sharded solves reproduce it exactly.
  // Distinct utilizations keep the optimum unique.
  graph::FatTree topo(4);
  const auto partition = dust::federation::partition_fat_tree(topo, 2);
  net::NetworkState state(topo.graph());
  double candidate_util = 25.0;
  for (graph::NodeId v : partition.members[0])
    state.set_node_utilization(v, candidate_util += 1.5);  // candidates
  double neutral_util = 62.0;
  for (graph::NodeId v : partition.members[1])
    state.set_node_utilization(v, neutral_util += 0.75);  // neutral band
  state.set_node_utilization(topo.edge_switch(0, 0), 88.0);  // busy, shard 0
  const core::Nmdb nmdb(std::move(state), core::Thresholds{});

  const auto cmp = compare_federated_placement(nmdb, partition,
                                               oracle_options());
  ASSERT_TRUE(cmp.single_stayed_in_domain);
  EXPECT_EQ(cmp.delegations_granted, 0u);
  EXPECT_NEAR(cmp.fed_local_objective, cmp.single.objective, 1e-9);
  EXPECT_NEAR(cmp.fed_placed, cmp.single_placed, 1e-9);
  EXPECT_TRUE(check_federated_placement(nmdb, partition,
                                        oracle_options())
                  .empty());
  // Single-shard partitions are trivially identical too.
  const auto whole = dust::federation::partition_fat_tree(topo, 1);
  EXPECT_TRUE(
      check_federated_placement(nmdb, whole, oracle_options()).empty());
}

}  // namespace
}  // namespace dust::check
