// Causal tracing primitives (obs/trace.hpp, obs/span.hpp) and the trace
// reassembly / Perfetto exporters built on them (obs/export.hpp).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace dust::obs {
namespace {

struct TraceIds : ::testing::Test {
  void SetUp() override {
    set_enabled(true);
    reset_trace_ids();
  }
};

TEST_F(TraceIds, NewTraceIsItsOwnRoot) {
  const TraceContext root = new_trace();
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_EQ(root.trace_id, root.span_id);  // a root names its own trace
}

TEST_F(TraceIds, ChildInheritsTraceWithFreshSpan) {
  const TraceContext root = new_trace();
  const TraceContext child = child_of(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  const TraceContext grandchild = child_of(child);
  EXPECT_EQ(grandchild.trace_id, root.trace_id);
  EXPECT_NE(grandchild.span_id, child.span_id);
}

TEST_F(TraceIds, ChildOfInvalidRootsANewTrace) {
  const TraceContext orphan = child_of(TraceContext{});
  EXPECT_TRUE(orphan.valid());
  EXPECT_EQ(orphan.trace_id, orphan.span_id);
}

TEST_F(TraceIds, IdsAreUniqueAndDeterministicAfterReset) {
  const std::uint64_t a = next_span_id();
  const std::uint64_t b = next_span_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  reset_trace_ids();
  EXPECT_EQ(next_span_id(), a);  // same allocation order after reset
}

struct TracedSpans : ::testing::Test {
  MetricRegistry registry;
  void SetUp() override {
    set_enabled(true);
    reset_trace_ids();
  }
};

TEST_F(TracedSpans, SpanWithOptionsRecordsIdentityAndTrack) {
  TraceContext ctx;
  {
    Span span(registry, "cycle", [] { return std::int64_t{42}; },
              SpanOptions{{}, "manager"});
    ctx = span.context();
    EXPECT_TRUE(ctx.valid());
  }
  const RegistrySnapshot scrape = registry.snapshot();
  ASSERT_EQ(scrape.spans.size(), 1u);
  const SpanRecord& record = scrape.spans.front();
  EXPECT_EQ(record.name, "cycle");
  EXPECT_EQ(record.track, "manager");
  EXPECT_EQ(record.trace_id, ctx.trace_id);
  EXPECT_EQ(record.span_id, ctx.span_id);
  EXPECT_EQ(record.parent_span_id, 0u);  // rooted a new trace
  EXPECT_EQ(record.sim_start_ms, 42);
  EXPECT_GE(record.wall_start_ms, 0.0);
}

TEST_F(TracedSpans, UntracedSpanCarriesNoIdentity) {
  {
    Span span(registry, "legacy");
    EXPECT_FALSE(span.context().valid());
  }
  const RegistrySnapshot scrape = registry.snapshot();
  ASSERT_EQ(scrape.spans.size(), 1u);
  EXPECT_EQ(scrape.spans.front().trace_id, 0u);
  EXPECT_EQ(scrape.spans.front().span_id, 0u);
}

TEST_F(TracedSpans, RecordInstantChainsParentToChild) {
  const TraceContext root =
      record_instant(registry, "stat", "client-0", TraceContext{}, 1000);
  const TraceContext child =
      record_instant(registry, "solve", "manager", root, 2000);
  EXPECT_EQ(child.trace_id, root.trace_id);

  const RegistrySnapshot scrape = registry.snapshot();
  ASSERT_EQ(scrape.spans.size(), 2u);
  const SpanRecord& stat = scrape.spans[0];
  const SpanRecord& solve = scrape.spans[1];
  EXPECT_EQ(stat.name, "stat");
  EXPECT_EQ(stat.sim_start_ms, 1000);
  EXPECT_EQ(stat.sim_duration_ms, 0);  // instants are points, not scopes
  EXPECT_EQ(stat.parent_span_id, 0u);
  EXPECT_EQ(solve.parent_span_id, stat.span_id);
  EXPECT_EQ(solve.trace_id, stat.trace_id);
  // Instants observe no histograms: zero durations carry no latency info.
  EXPECT_EQ(scrape.histograms.size(), 0u);
}

TEST_F(TracedSpans, DisabledInstrumentationRecordsNoSpans) {
  set_enabled(false);
  const TraceContext ctx =
      record_instant(registry, "stat", "client-0", TraceContext{}, 1000);
  EXPECT_FALSE(ctx.valid());
  {
    Span span(registry, "cycle", VirtualClock{}, SpanOptions{{}, "manager"});
    EXPECT_FALSE(span.context().valid());
  }
  set_enabled(true);
  EXPECT_TRUE(registry.snapshot().spans.empty());
}

struct TraceAssembly : ::testing::Test {
  MetricRegistry registry;
  void SetUp() override {
    set_enabled(true);
    reset_trace_ids();
  }
  /// Record the canonical offload chain as instants; returns the root.
  TraceContext record_offload_chain() {
    TraceContext ctx =
        record_instant(registry, "stat", "client-0", TraceContext{}, 0);
    const TraceContext root = ctx;
    ctx = record_instant(registry, "solve", "manager", ctx, 10);
    ctx = record_instant(registry, "offload_request", "manager", ctx, 10);
    ctx = record_instant(registry, "offload_ack", "client-0", ctx, 12);
    (void)record_instant(registry, "rep", "manager", ctx, 30);
    return root;
  }
};

TEST_F(TraceAssembly, GroupsSpansByTraceAndRendersTheChain) {
  const TraceContext first = record_offload_chain();
  const TraceContext second = record_offload_chain();
  // An untraced span must not join any tree.
  registry.record_span(SpanRecord{"noise", 1.0, 5, 0, "", -1.0, 0, 0, 0});

  const std::vector<TraceTree> traces =
      assemble_traces(registry.snapshot());
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, first.trace_id);
  EXPECT_EQ(traces[1].trace_id, second.trace_id);
  for (const TraceTree& trace : traces) {
    ASSERT_EQ(trace.spans.size(), 5u);
    EXPECT_EQ(trace.chain(), "stat>solve>offload_request>offload_ack>rep");
    ASSERT_NE(trace.find("offload_ack"), nullptr);
    EXPECT_EQ(trace.find("missing"), nullptr);
  }
}

TEST_F(TraceAssembly, TopoOrderHoldsEvenWhenChildrenRecordFirst) {
  // Manually record child before parent (out of order in the ring).
  const TraceContext root = new_trace();
  const TraceContext child = child_of(root);
  registry.record_span(SpanRecord{"child", 0.0, 20, 0, "t", -1.0,
                                  child.trace_id, child.span_id,
                                  root.span_id});
  registry.record_span(SpanRecord{"root", 0.0, 10, 0, "t", -1.0,
                                  root.trace_id, root.span_id, 0});
  const std::vector<TraceTree> traces =
      assemble_traces(registry.snapshot());
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].spans.size(), 2u);
  EXPECT_EQ(traces[0].spans[0].name, "root");
  EXPECT_EQ(traces[0].spans[1].name, "child");
  EXPECT_EQ(traces[0].chain(), "root>child");
}

TEST_F(TraceAssembly, PerfettoExportCarriesTracksEventsAndFlows) {
  (void)record_offload_chain();
  std::ostringstream os;
  write_perfetto(registry.snapshot(), os);
  const std::string json = os.str();

  // Envelope + per-track process metadata.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client-0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"manager\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sim-time\""), std::string::npos);
  // Complete events for the chain hops, with causal args.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"offload_request\""),
            std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\""), std::string::npos);
  // Flow arrows: the chain has parented spans, so both ends must appear.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
}  // namespace dust::obs
