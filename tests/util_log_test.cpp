#include "util/log.hpp"

#include <gtest/gtest.h>

namespace dust::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Log, ParseUnknownDefaultsToInfo) {
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  DUST_LOG_ERROR << "suppressed " << 42;
  DUST_LOG_INFO << "also suppressed";
}

TEST(Log, EmittingLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kTrace);
  DUST_LOG_TRACE << "trace message " << 1.5;
  DUST_LOG_WARN << "warn message";
}

}  // namespace
}  // namespace dust::util
