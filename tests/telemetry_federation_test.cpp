#include "telemetry/federation.hpp"

#include <gtest/gtest.h>

namespace dust::telemetry {
namespace {

MetricDescriptor gauge(const std::string& name) {
  return MetricDescriptor{name, "%", MetricKind::kGauge};
}

TEST(Federation, MembersManaged) {
  Federation fed;
  Tsdb a, b;
  fed.add_member("switch1", &a);
  fed.add_member("switch2", &b);
  EXPECT_EQ(fed.member_count(), 2u);
  EXPECT_EQ(fed.member_names(), (std::vector<std::string>{"switch1", "switch2"}));
  fed.remove_member("switch1");
  EXPECT_EQ(fed.member_count(), 1u);
}

TEST(Federation, NullMemberRejected) {
  Federation fed;
  EXPECT_THROW(fed.add_member("x", nullptr), std::invalid_argument);
}

TEST(Federation, QueryFansOut) {
  Federation fed;
  Tsdb a, b;
  const MetricId ma = a.register_metric(gauge("cpu"));
  const MetricId mb = b.register_metric(gauge("cpu"));
  a.append(ma, {100, 10.0});
  b.append(mb, {100, 30.0});
  b.append(mb, {200, 50.0});
  fed.add_member("n1", &a);
  fed.add_member("n2", &b);
  const auto result = fed.query("cpu", 0, 1000);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].node, "n1");
  EXPECT_EQ(result[0].samples.size(), 1u);
  EXPECT_EQ(result[1].samples.size(), 2u);
}

TEST(Federation, MembersWithoutMetricOmitted) {
  Federation fed;
  Tsdb a, b;
  const MetricId ma = a.register_metric(gauge("cpu"));
  a.append(ma, {100, 10.0});
  b.register_metric(gauge("memory"));
  fed.add_member("n1", &a);
  fed.add_member("n2", &b);
  EXPECT_EQ(fed.query("cpu", 0, 1000).size(), 1u);
}

TEST(Federation, AggregatePerNode) {
  Federation fed;
  Tsdb a, b;
  const MetricId ma = a.register_metric(gauge("cpu"));
  const MetricId mb = b.register_metric(gauge("cpu"));
  a.append(ma, {100, 10.0});
  a.append(ma, {200, 20.0});
  b.append(mb, {100, 40.0});
  fed.add_member("n1", &a);
  fed.add_member("n2", &b);
  const auto per_node = fed.aggregate_per_node("cpu", 0, 1000, Aggregation::kMean);
  ASSERT_EQ(per_node.size(), 2u);
  EXPECT_DOUBLE_EQ(per_node.at("n1"), 15.0);
  EXPECT_DOUBLE_EQ(per_node.at("n2"), 40.0);
}

TEST(Federation, GlobalAggregateWeightsSamples) {
  Federation fed;
  Tsdb a, b;
  const MetricId ma = a.register_metric(gauge("cpu"));
  const MetricId mb = b.register_metric(gauge("cpu"));
  a.append(ma, {100, 10.0});
  a.append(ma, {200, 10.0});
  a.append(ma, {300, 10.0});
  b.append(mb, {150, 50.0});
  fed.add_member("n1", &a);
  fed.add_member("n2", &b);
  // Mean over 4 samples = (30 + 50) / 4 = 20, not mean-of-means 30.
  EXPECT_DOUBLE_EQ(*fed.aggregate("cpu", 0, 1000, Aggregation::kMean), 20.0);
  EXPECT_DOUBLE_EQ(*fed.aggregate("cpu", 0, 1000, Aggregation::kMax), 50.0);
}

TEST(Federation, AggregateMissingMetricNullopt) {
  Federation fed;
  Tsdb a;
  fed.add_member("n1", &a);
  EXPECT_FALSE(fed.aggregate("nope", 0, 1000, Aggregation::kMean).has_value());
}

TEST(Federation, TotalStorageSumsMembers) {
  Federation fed;
  Tsdb a, b;
  const MetricId ma = a.register_metric(gauge("x"));
  for (int i = 0; i < 100; ++i) a.append(ma, {10LL * i, double(i)});
  fed.add_member("n1", &a);
  fed.add_member("n2", &b);
  EXPECT_EQ(fed.total_storage_bytes(), a.storage_bytes() + b.storage_bytes());
}

TEST(Federation, ReRegisterReplacesPointer) {
  Federation fed;
  Tsdb a, b;
  const MetricId mb = b.register_metric(gauge("cpu"));
  b.append(mb, {1, 99.0});
  fed.add_member("n", &a);
  fed.add_member("n", &b);
  EXPECT_EQ(fed.member_count(), 1u);
  EXPECT_EQ(fed.query("cpu", 0, 10).size(), 1u);
}

}  // namespace
}  // namespace dust::telemetry
