#include "solver/min_cost_flow.hpp"

#include <gtest/gtest.h>

#include "solver/transportation.hpp"
#include "util/rng.hpp"

namespace dust::solver {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow mcf(2);
  const auto arc = mcf.add_arc(0, 1, 5.0, 2.0);
  const auto r = mcf.solve(0, 1);
  EXPECT_NEAR(r.max_flow, 5.0, 1e-9);
  EXPECT_NEAR(r.total_cost, 10.0, 1e-9);
  EXPECT_NEAR(mcf.arc_flow(arc), 5.0, 1e-9);
}

TEST(MinCostFlow, PrefersCheaperParallelRoute) {
  // 0 -> 1 -> 3 (cost 2) and 0 -> 2 -> 3 (cost 5), caps 4 each, want 6.
  MinCostFlow mcf(4);
  const auto a1 = mcf.add_arc(0, 1, 4.0, 1.0);
  mcf.add_arc(1, 3, 4.0, 1.0);
  const auto a2 = mcf.add_arc(0, 2, 4.0, 2.0);
  mcf.add_arc(2, 3, 4.0, 3.0);
  const auto r = mcf.solve(0, 3, 6.0);
  EXPECT_NEAR(r.max_flow, 6.0, 1e-9);
  EXPECT_NEAR(mcf.arc_flow(a1), 4.0, 1e-9);  // cheap path saturated first
  EXPECT_NEAR(mcf.arc_flow(a2), 2.0, 1e-9);
  EXPECT_NEAR(r.total_cost, 4.0 * 2.0 + 2.0 * 5.0, 1e-9);
}

TEST(MinCostFlow, FlowLimitRespected) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 100.0, 1.0);
  const auto r = mcf.solve(0, 1, 7.0);
  EXPECT_NEAR(r.max_flow, 7.0, 1e-9);
}

TEST(MinCostFlow, DisconnectedZeroFlow) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 5.0, 1.0);
  const auto r = mcf.solve(0, 2);
  EXPECT_DOUBLE_EQ(r.max_flow, 0.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(MinCostFlow, RejectsNegativeInputs) {
  MinCostFlow mcf(2);
  EXPECT_THROW(mcf.add_arc(0, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mcf.add_arc(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(mcf.add_arc(0, 5, 1.0, 1.0), std::out_of_range);
}

TEST(MinCostFlow, ResidualRerouting) {
  // Classic example needing flow rerouting through the residual graph:
  // 0->1 (1, $1), 0->2 (1, $10), 1->3 (1, $10), 1->2 (1, $1), 2->3 (1, $1).
  // Max flow 2: optimal sends 0-1-2-3 and 0-2?-no cap... capacities of 1:
  // flow1: 0-1-2-3 cost 3. flow2: 0-2 full? 0->2 has cap 1, 2->3 cap 1 used.
  // So flow2 must go 0-2... 2->3 saturated → reroute: 0->2, 2->1 (residual),
  // 1->3: cost 10 - 1 + 10 = 19. Total = 22.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1.0, 1.0);
  mcf.add_arc(0, 2, 1.0, 10.0);
  mcf.add_arc(1, 3, 1.0, 10.0);
  mcf.add_arc(1, 2, 1.0, 1.0);
  mcf.add_arc(2, 3, 1.0, 1.0);
  const auto r = mcf.solve(0, 3);
  EXPECT_NEAR(r.max_flow, 2.0, 1e-9);
  EXPECT_NEAR(r.total_cost, 22.0, 1e-9);
}

class McfTransportationSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: MCMF on the bipartite formulation matches the transportation
// solver when the instance is feasible.
TEST_P(McfTransportationSweep, MatchesTransportation) {
  util::Rng rng(GetParam());
  const std::size_t m = 1 + rng.below(3);
  const std::size_t n = 1 + rng.below(4);
  TransportationProblem p;
  double total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    p.supply.push_back(rng.uniform(1.0, 5.0));
    total += p.supply.back();
  }
  for (std::size_t j = 0; j < n; ++j)
    p.capacity.push_back(total / n + rng.uniform(0.5, 3.0));
  for (std::size_t c = 0; c < m * n; ++c)
    p.cost.push_back(rng.uniform(0.1, 5.0));

  const TransportationResult expected = solve_transportation(p);
  ASSERT_EQ(expected.status, Status::kOptimal);

  MinCostFlow mcf(m + n + 2);
  const std::size_t source = m + n, sink = m + n + 1;
  for (std::size_t i = 0; i < m; ++i) mcf.add_arc(source, i, p.supply[i], 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      mcf.add_arc(i, m + j, kInfinity, p.cost[i * n + j]);
  for (std::size_t j = 0; j < n; ++j)
    mcf.add_arc(m + j, sink, p.capacity[j], 0.0);
  const auto r = mcf.solve(source, sink);
  EXPECT_NEAR(r.max_flow, total, 1e-6);
  EXPECT_NEAR(r.total_cost, expected.objective, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfTransportationSweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace dust::solver
