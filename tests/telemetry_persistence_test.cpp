// TSDB snapshot/restore: blocks stay compressed on the wire, restored
// databases keep accepting appends, corrupt input is rejected.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace dust::telemetry {
namespace {

TEST(BlockPersistence, EmptyBlockRoundTrips) {
  CompressedBlock block;
  std::stringstream buffer;
  block.serialize(buffer);
  const CompressedBlock restored = CompressedBlock::deserialize(buffer);
  EXPECT_EQ(restored.sample_count(), 0u);
  EXPECT_TRUE(restored.decode().empty());
}

TEST(BlockPersistence, DataAndAppendStateSurvive) {
  CompressedBlock block;
  for (int i = 0; i < 100; ++i) block.append({1000LL * i, 0.5 * i});
  std::stringstream buffer;
  block.serialize(buffer);
  CompressedBlock restored = CompressedBlock::deserialize(buffer);
  EXPECT_EQ(restored.decode(), block.decode());
  // Appends continue seamlessly after restore.
  restored.append({100000, 123.0});
  block.append({100000, 123.0});
  EXPECT_EQ(restored.decode(), block.decode());
  EXPECT_EQ(restored.compressed_bytes(), block.compressed_bytes());
}

TEST(BlockPersistence, RejectsCorruptHeader) {
  std::stringstream buffer("garbage-not-a-block");
  EXPECT_THROW(CompressedBlock::deserialize(buffer), std::runtime_error);
}

TEST(BlockPersistence, RejectsTruncatedPayload) {
  CompressedBlock block;
  for (int i = 0; i < 50; ++i) block.append({10LL * i, double(i)});
  std::stringstream buffer;
  block.serialize(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(CompressedBlock::deserialize(truncated), std::runtime_error);
}

TEST(TsdbPersistence, FullDatabaseRoundTrip) {
  Tsdb db;
  const MetricId cpu =
      db.register_metric({"cpu", "%", MetricKind::kGauge});
  const MetricId pkts =
      db.register_metric({"rx.packets", "pkts", MetricKind::kCounter});
  util::Rng rng(4);
  double total = 0;
  for (int i = 0; i < 3000; ++i) {  // spans multiple sealed blocks
    db.append(cpu, {100LL * i, rng.uniform(0, 100)});
    total += rng.uniform(0, 50);
    db.append(pkts, {100LL * i, total});
  }

  std::stringstream buffer;
  db.save(buffer);
  Tsdb restored = Tsdb::load(buffer);

  ASSERT_EQ(restored.metric_count(), 2u);
  ASSERT_TRUE(restored.find("cpu").has_value());
  ASSERT_TRUE(restored.find("rx.packets").has_value());
  EXPECT_EQ(restored.series(*restored.find("cpu")).descriptor().unit, "%");
  EXPECT_EQ(restored.series(*restored.find("rx.packets")).descriptor().kind,
            MetricKind::kCounter);

  // Same data, sample for sample.
  const auto original = db.query(cpu, 0, 1000000);
  const auto roundtrip = restored.query(*restored.find("cpu"), 0, 1000000);
  ASSERT_EQ(roundtrip.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(roundtrip[i].timestamp_ms, original[i].timestamp_ms);
    EXPECT_EQ(roundtrip[i].value, original[i].value);
  }
  // Aggregates agree, and appends continue.
  EXPECT_EQ(*restored.aggregate(*restored.find("cpu"), 0, 1000000,
                                Aggregation::kMean),
            *db.aggregate(cpu, 0, 1000000, Aggregation::kMean));
  restored.append(*restored.find("cpu"), {400000, 55.0});
  EXPECT_EQ(restored.series(*restored.find("cpu")).last()->value, 55.0);
}

TEST(TsdbPersistence, SnapshotIsCompressed) {
  Tsdb db;
  const MetricId id = db.register_metric({"m", "", MetricKind::kGauge});
  for (int i = 0; i < 5000; ++i) db.append(id, {1000LL * i, 42.0});
  std::stringstream buffer;
  db.save(buffer);
  // Raw would be 5000 * 16 bytes = 80 KB; constant series compresses hard.
  EXPECT_LT(buffer.str().size(), 10000u);
}

TEST(TsdbPersistence, EmptyDatabaseRoundTrips) {
  Tsdb db;
  std::stringstream buffer;
  db.save(buffer);
  Tsdb restored = Tsdb::load(buffer);
  EXPECT_EQ(restored.metric_count(), 0u);
}

TEST(TsdbPersistence, RejectsGarbage) {
  std::stringstream buffer("this is not a tsdb snapshot at all");
  EXPECT_THROW(Tsdb::load(buffer), std::runtime_error);
}

class PersistenceRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PersistenceRandomSweep, RandomSeriesRoundTrip) {
  util::Rng rng(GetParam());
  Tsdb db;
  const MetricId id = db.register_metric({"x", "", MetricKind::kGauge});
  std::int64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += static_cast<std::int64_t>(rng.below(10000));
    db.append(id, {t, rng.normal(0, 1e6)});
  }
  std::stringstream buffer;
  db.save(buffer);
  Tsdb restored = Tsdb::load(buffer);
  const auto a = db.query(id, 0, t);
  const auto b = restored.query(*restored.find("x"), 0, t);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dust::telemetry
