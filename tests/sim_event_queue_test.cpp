#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dust::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&order] { order.push_back(3); });
  sim.schedule(10, [&order] { order.push_back(1); });
  sim.schedule(20, [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&ran] { ++ran; });
  sim.schedule(20, [&ran] { ++ran; });
  sim.schedule(21, [&ran] { ++ran; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<TimeMs> fired;
  sim.schedule(10, [&] {
    fired.push_back(sim.now());
    sim.schedule(5, [&] { fired.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 15}));
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&ran] { ++ran; });
  sim.clear();
  sim.run();
  EXPECT_EQ(ran, 0);
}

TEST(PeriodicTask, FiresOnPeriod) {
  Simulator sim;
  std::vector<TimeMs> fired;
  PeriodicTask task(sim, 100, 50, [&fired](TimeMs t) { fired.push_back(t); });
  sim.run_until(300);
  EXPECT_EQ(fired, (std::vector<TimeMs>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTask, CancelStopsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 0, 10, [&count](TimeMs) { ++count; });
  sim.run_until(35);
  EXPECT_EQ(count, 4);  // t = 0, 10, 20, 30
  task.cancel();
  EXPECT_FALSE(task.active());
  sim.run_until(100);
  EXPECT_EQ(count, 4);
}

TEST(PeriodicTask, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 0, 10, [&count](TimeMs) { ++count; });
    sim.run_until(15);
  }
  sim.run_until(200);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, CancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(sim, 0, 10, [&](TimeMs) {
    if (++count == 3) handle->cancel();
  });
  handle = &task;
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, ZeroPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, 0, 0, [](TimeMs) {}), std::invalid_argument);
}

}  // namespace
}  // namespace dust::sim
