// Shared harness for forked-daemon integration tests: fork/exec a daemon
// binary, read its machine-readable stdout incrementally against a wall
// deadline, and reap it (SIGKILL on destruction so a failed assertion never
// leaks orphan processes). Used by wire_daemon_test (single-manager fleet)
// and federation_daemon_test (sharded fleet + failover).
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dust::daemon_harness {

inline std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A free TCP port: bind port 0, read the assignment back, close. Racy in
/// principle, fine for tests that must pre-agree on a port (a standby
/// re-binding its dead primary's address cannot use an ephemeral port).
inline std::uint16_t pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

// A forked daemon. Captured stdout is read incrementally (the manager's PORT
// line must be consumed while the process is still settling). The destructor
// SIGKILLs stragglers so a failed assertion never leaks orphan daemons.
class Daemon {
 public:
  Daemon(const char* binary, const std::vector<std::string>& args,
         bool capture_stdout) {
    int fds[2] = {-1, -1};
    if (capture_stdout) {
      if (pipe(fds) != 0) return;
    }
    pid_ = fork();
    if (pid_ == 0) {
      if (capture_stdout) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary));
      for (const std::string& arg : args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      execv(binary, argv.data());
      _exit(127);
    }
    if (capture_stdout) {
      close(fds[1]);
      out_ = fds[0];
    }
  }

  ~Daemon() {
    if (out_ >= 0) close(out_);
    if (pid_ > 0 && !reaped_) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] bool running() const { return pid_ > 0; }

  /// Next stdout line (without the newline), or false on EOF / deadline.
  bool read_line(std::string& line, std::int64_t deadline_ms) {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (eof_) return false;
      const std::int64_t remaining = deadline_ms - wall_ms();
      if (remaining <= 0) return false;
      pollfd pfd{out_, POLLIN, 0};
      const int ready = poll(&pfd, 1, static_cast<int>(remaining));
      if (ready <= 0) return false;
      char chunk[4096];
      const ssize_t n = read(out_, chunk, sizeof chunk);
      if (n <= 0) {
        eof_ = true;
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Blocks until the process exits; returns its exit code (or 128+signal).
  int wait_exit() {
    if (pid_ <= 0) return -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    reaped_ = true;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

 private:
  pid_t pid_ = -1;
  int out_ = -1;
  bool reaped_ = false;
  bool eof_ = false;
  std::string buffer_;
};

}  // namespace dust::daemon_harness
