#include "net/diagnosis.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::net {
namespace {

// Square 0-1-3 / 0-2-3 with uniform 1000 Mbps effective links.
NetworkState square_net() {
  graph::Graph g(4);
  g.add_edge(0, 1);  // e0
  g.add_edge(1, 3);  // e1
  g.add_edge(0, 2);  // e2
  g.add_edge(2, 3);  // e3
  NetworkState net(std::move(g));
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e)
    net.set_link(e, LinkState{1000.0, 1.0});
  return net;
}

graph::Path path_over(std::vector<graph::NodeId> nodes,
                      std::vector<graph::EdgeId> edges) {
  graph::Path p;
  p.nodes = std::move(nodes);
  p.edges = std::move(edges);
  return p;
}

TEST(Diagnosis, ExpectedTimeMatchesModel) {
  const NetworkState net = square_net();
  PathProbe probe{path_over({0, 1, 3}, {0, 1}), 0.0, 100.0};
  EXPECT_NEAR(expected_probe_seconds(net, probe), 0.2, 1e-12);
}

TEST(Diagnosis, NoDegradationNoSuspects) {
  const NetworkState net = square_net();
  std::vector<PathProbe> probes{
      {path_over({0, 1, 3}, {0, 1}), 0.21, 100.0},
      {path_over({0, 2, 3}, {2, 3}), 0.19, 100.0},
  };
  const Diagnosis d = localize_bottleneck(net, probes);
  EXPECT_FALSE(d.localized());
  EXPECT_EQ(d.healthy_probes, 2u);
  EXPECT_EQ(d.degraded_probes, 0u);
}

TEST(Diagnosis, HealthyProbeExoneratesSharedEdges) {
  // Both routes start at node 0 but only the 0-1-3 route is slow; the
  // healthy 0-2-3 probe exonerates nothing shared (disjoint), so both edges
  // of the slow route remain suspects — with e0/e1 tied.
  const NetworkState net = square_net();
  std::vector<PathProbe> probes{
      {path_over({0, 1, 3}, {0, 1}), 1.0, 100.0},   // 5x expected
      {path_over({0, 2, 3}, {2, 3}), 0.2, 100.0},   // healthy
  };
  const Diagnosis d = localize_bottleneck(net, probes);
  ASSERT_TRUE(d.localized());
  EXPECT_EQ(d.suspects.size(), 2u);
  EXPECT_NEAR(d.culprit().slowdown, 5.0, 1e-9);
}

TEST(Diagnosis, IntersectionPinpointsSharedSlowEdge) {
  // Line 0-1-2-3 plus alternates so probes overlap only on edge (1,2).
  graph::Graph g(5);
  const auto e01 = g.add_edge(0, 1);
  const auto e12 = g.add_edge(1, 2);
  const auto e23 = g.add_edge(2, 3);
  const auto e14 = g.add_edge(1, 4);
  const auto e42 = g.add_edge(4, 2);
  NetworkState net(std::move(g));
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e)
    net.set_link(e, LinkState{1000.0, 1.0});
  std::vector<PathProbe> probes{
      // Degraded probes crossing e12 from both sides.
      {path_over({0, 1, 2}, {e01, e12}), 1.0, 100.0},
      {path_over({1, 2, 3}, {e12, e23}), 1.0, 100.0},
      // Healthy probes exonerating e01 and e23 individually.
      {path_over({0, 1, 4}, {e01, e14}), 0.2, 100.0},
      {path_over({4, 2, 3}, {e42, e23}), 0.2, 100.0},
  };
  const Diagnosis d = localize_bottleneck(net, probes);
  ASSERT_TRUE(d.localized());
  EXPECT_EQ(d.suspects.size(), 1u);
  EXPECT_EQ(d.culprit().edge, e12);
  EXPECT_EQ(d.culprit().degraded_probes, 2u);
}

TEST(Diagnosis, ToleranceControlsSensitivity) {
  const NetworkState net = square_net();
  std::vector<PathProbe> probes{
      {path_over({0, 1, 3}, {0, 1}), 0.32, 100.0},  // 1.6x expected
  };
  DiagnosisOptions strict;
  strict.tolerance = 1.5;
  EXPECT_TRUE(localize_bottleneck(net, probes, strict).localized());
  DiagnosisOptions lenient;
  lenient.tolerance = 2.0;
  EXPECT_FALSE(localize_bottleneck(net, probes, lenient).localized());
}

TEST(Diagnosis, EndToEndWithRealSlowLink) {
  // Inject an actually slow link into a fat-tree, generate probes from the
  // *healthy* model, and check the localizer finds the injected edge.
  util::Rng rng(8);
  NetworkState net = make_random_state(graph::FatTree(4).graph(),
                                       LinkProfile{}, NodeLoadProfile{}, rng);
  NetworkState degraded = net;  // measured reality: one link 10x slower
  const graph::EdgeId slow_edge = 13;
  LinkState slow = degraded.link(slow_edge);
  slow.utilization = std::max(0.01, slow.utilization / 10.0);
  degraded.set_link(slow_edge, slow);

  // Probes: best hop-bounded paths between random pairs, "measured" on the
  // degraded network, expected on the healthy model.
  std::vector<PathProbe> probes;
  const std::vector<double> inv = net.inverse_bandwidth_costs();
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.below(net.node_count()));
    const auto dst = static_cast<graph::NodeId>(rng.below(net.node_count()));
    if (src == dst) continue;
    PathProbe probe;
    probe.path = graph::hop_bounded_path(net.graph(), src, dst, inv, 6);
    if (probe.path.nodes.empty()) continue;
    probe.data_mb = 50.0;
    probe.measured_seconds = expected_probe_seconds(degraded, probe);
    probes.push_back(std::move(probe));
  }
  const Diagnosis d = localize_bottleneck(net, probes);
  ASSERT_TRUE(d.localized());
  EXPECT_EQ(d.culprit().edge, slow_edge);
  EXPECT_GT(d.culprit().slowdown, 1.5);
}

}  // namespace
}  // namespace dust::net
