// Testbed-level integration: the Fig. 1 / Fig. 6 scenarios on the simulated
// HPE Aruba 8325 device model (8 cores, 16 GiB). These assert the calibrated
// operating points the benches report — local monitoring ~31% CPU / ~70%
// memory, offloaded ~15% / ~62%, monitoring module ~100% of a core with
// multi-hundred-percent spikes.
#include <gtest/gtest.h>

#include "sim/node.hpp"
#include "sim/overlay_traffic.hpp"
#include "telemetry/agent.hpp"
#include "util/stats.hpp"

namespace dust {
namespace {

sim::MonitoredNode make_switch(const std::string& name) {
  // Base: 15% CPU for switching/bridging; 62% of 16 GiB for NOS + tables.
  return sim::MonitoredNode(name, sim::NodeResources{8, 16384.0}, 15.0,
                            0.62 * 16384.0);
}

struct RunStats {
  util::RunningStats device_cpu;
  util::RunningStats monitor_cores;
  util::RunningStats memory;
};

RunStats run_local_monitoring(int seconds, std::uint64_t seed) {
  sim::MonitoredNode node = make_switch("dut");
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  sim::OverlayTraffic traffic{sim::OverlayTrafficProfile{}};
  util::Rng rng(seed);
  RunStats stats;
  for (int t = 0; t < seconds; ++t) {
    const sim::TrafficTick tick = traffic.next(rng);
    const sim::TickStats s =
        node.tick(1000LL * t, 1000, tick.rx_mbps, tick.tx_mbps, rng);
    stats.device_cpu.add(s.device_cpu_percent);
    stats.monitor_cores.add(s.monitor_cpu_cores);
    stats.memory.add(s.memory_percent);
  }
  return stats;
}

TEST(TestbedFig1, MonitoringModuleAveragesAboutOneCore) {
  const RunStats stats = run_local_monitoring(600, 42);
  // "around 100% average" — our calibration lands ~1.3-1.45 cores.
  EXPECT_GT(stats.monitor_cores.mean(), 0.9);
  EXPECT_LT(stats.monitor_cores.mean(), 1.8);
}

TEST(TestbedFig1, SpikesReachSeveralHundredPercent) {
  const RunStats stats = run_local_monitoring(2000, 43);
  // "spiking to as high as 600%" — max must exceed 400% of one core and can
  // not exceed the 8-core ceiling.
  EXPECT_GT(stats.monitor_cores.max(), 4.0);
  EXPECT_LE(stats.monitor_cores.max(), 8.0);
}

TEST(TestbedFig6, LocalOperatingPointMatchesPaper) {
  const RunStats stats = run_local_monitoring(600, 44);
  // Local monitoring: ~31% device CPU, ~70% memory.
  EXPECT_NEAR(stats.device_cpu.mean(), 31.0, 5.0);
  EXPECT_NEAR(stats.memory.mean(), 70.0, 3.0);
}

TEST(TestbedFig6, OffloadRestoresBaseline) {
  sim::MonitoredNode origin = make_switch("busy");
  sim::MonitoredNode destination("server", sim::NodeResources{16, 32768.0},
                                 20.0, 8000.0);
  for (auto& agent : telemetry::standard_agents()) origin.add_local_agent(agent);

  sim::OverlayTraffic traffic{sim::OverlayTrafficProfile{}};
  util::Rng rng(45);
  util::RunningStats local_cpu, local_mem;
  for (int t = 0; t < 300; ++t) {
    const auto tick = traffic.next(rng);
    const auto s = origin.tick(1000LL * t, 1000, tick.rx_mbps, tick.tx_mbps, rng);
    local_cpu.add(s.device_cpu_percent);
    local_mem.add(s.memory_percent);
  }

  // Offload all ten agents (DUST placement outcome).
  auto agents = origin.remove_local_agents();
  const std::size_t moved = agents.size();
  for (auto& agent : agents) destination.add_remote_agent("busy", agent);
  origin.set_offloaded_agent_count(moved);

  util::RunningStats offloaded_cpu, offloaded_mem, dest_cores;
  for (int t = 300; t < 600; ++t) {
    const auto tick = traffic.next(rng);
    const auto s = origin.tick(1000LL * t, 1000, tick.rx_mbps, tick.tx_mbps, rng);
    offloaded_cpu.add(s.device_cpu_percent);
    offloaded_mem.add(s.memory_percent);
    telemetry::DeviceSnapshot snap;
    snap.timestamp_ms = 1000LL * t;
    snap.rx_mbps = tick.rx_mbps;
    snap.tx_mbps = tick.tx_mbps;
    destination.observe_remote("busy", snap, rng);
    dest_cores.add(
        destination.tick(1000LL * t, 1000, 1000.0, 0.0, rng).monitor_cpu_cores);
  }

  // Paper: CPU 31% -> 15% (52% relative), memory 70% -> 62% (12% relative).
  EXPECT_NEAR(offloaded_cpu.mean(), 15.0, 2.0);
  EXPECT_NEAR(offloaded_mem.mean(), 62.0, 2.0);
  const double cpu_saving =
      (local_cpu.mean() - offloaded_cpu.mean()) / local_cpu.mean();
  EXPECT_GT(cpu_saving, 0.40);  // "up to 50%" / 52% reported
  const double mem_saving =
      (local_mem.mean() - offloaded_mem.mean()) / local_mem.mean();
  EXPECT_GT(mem_saving, 0.08);
  // The workload didn't vanish: the destination now pays for it
  // (homogeneity assumption).
  EXPECT_GT(dest_cores.mean(), 0.9);
}

TEST(TestbedFig6, MonitoringMemoryIsAboutOnePointTwoGiB) {
  sim::MonitoredNode node = make_switch("dut");
  for (auto& agent : telemetry::standard_agents()) node.add_local_agent(agent);
  util::Rng rng(46);
  sim::TickStats last{};
  for (int t = 0; t < 60; ++t)
    last = node.tick(1000LL * t, 1000, 20000.0, 0.0, rng);
  // "retaining around 1.2 GiB memory usage" for monitoring workloads.
  EXPECT_NEAR(last.monitor_memory_mib, 1280.0, 100.0);
}

}  // namespace
}  // namespace dust
