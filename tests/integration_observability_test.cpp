// End-to-end observability: run the Fig. 4 scenario over the simulated
// transport, sample telemetry into a Tsdb, then scrape the global metric
// registry and check that every instrumented layer reported activity —
// placement solve latency, per-message-type protocol counters, transport
// drops, and agent ingestion.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/tsdb.hpp"

namespace dust {
namespace {

/// The paper's illustrative 7-node network (Fig. 4): busy switch S1 (node 0),
/// offload candidates S2 (1) and S6 (5), relays in between.
net::NetworkState make_fig4_state() {
  graph::Graph g(7);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 6);
  g.add_edge(3, 5);
  net::NetworkState state(std::move(g));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net::LinkState{.bandwidth_mbps = 10000.0,
                                     .utilization = 0.5});
  state.set_node_utilization(0, 93.0);
  state.set_node_utilization(1, 42.0);
  state.set_node_utilization(5, 52.0);
  for (graph::NodeId v : {2u, 3u, 4u, 6u}) state.set_node_utilization(v, 70.0);
  state.set_monitoring_data_mb(0, 80.0);
  return state;
}

struct Fig4Observability : ::testing::Test {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  std::unique_ptr<core::DustManager> manager;
  std::vector<std::unique_ptr<core::DustClient>> clients;

  void SetUp() override {
    obs::set_enabled(true);
    obs::MetricRegistry::global().reset();

    core::ManagerConfig config;
    config.update_interval_ms = 1000;
    config.placement_period_ms = 5000;
    config.keepalive_timeout_ms = 4000;
    config.keepalive_check_period_ms = 1000;
    manager = std::make_unique<core::DustManager>(
        sim, transport, core::Nmdb(make_fig4_state(), core::Thresholds{}),
        config);
    for (graph::NodeId v = 0; v < 7; ++v) {
      clients.push_back(std::make_unique<core::DustClient>(
          sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 1000},
          util::Rng(100 + v)));
    }
    clients[0]->set_reported_state(93.0, 80.0, 10);
    clients[1]->set_reported_state(42.0, 5.0, 10);
    clients[5]->set_reported_state(52.0, 5.0, 10);
    for (graph::NodeId v : {2u, 3u, 4u, 6u})
      clients[v]->set_reported_state(70.0, 5.0, 10);
    for (auto& client : clients) client->start();
    manager->start();
  }
};

TEST_F(Fig4Observability, ScrapeReportsActivityFromEveryLayer) {
  // Run long enough for handshakes, STATs, and two placement cycles.
  sim.run_until(12000);
  ASSERT_GE(manager->active_offload_count(), 1u);
  ASSERT_GT(clients[0]->offloaded_agent_count(), 0u);

  // QoS under congestion: the busy node streams telemetry (kLow) to its
  // offload destinations while the network is congested — it must be shed.
  transport.set_congested(true);
  telemetry::DeviceSnapshot snapshot;
  snapshot.timestamp_ms = sim.now();
  snapshot.device_cpu_percent = 93.0;
  snapshot.rx_mbps = 9000.0;
  clients[0]->publish_snapshot(snapshot);
  sim.run_until(sim.now() + 1000);
  transport.set_congested(false);

  // Telemetry layer: a monitoring agent ingesting into a Tsdb.
  telemetry::Tsdb db;
  telemetry::MonitorAgent agent("system.cpu.memory",
                                telemetry::AgentCostModel{}, 1000);
  agent.bind(db);
  util::Rng rng(3);
  for (int tick = 0; tick < 5; ++tick) {
    snapshot.timestamp_ms += 1000;
    agent.sample(snapshot, db, rng);
  }

  const obs::RegistrySnapshot scrape = obs::MetricRegistry::global().snapshot();

  // Placement solve latency histogram recorded at least one cycle.
  const obs::NamedHistogramSnapshot* solve_ms =
      scrape.find_histogram("dust_core_placement_solve_ms");
  ASSERT_NE(solve_ms, nullptr);
  EXPECT_GT(solve_ms->count, 0u);

  // Per-message-type protocol counters.
  const obs::CounterSnapshot* rx_stat =
      scrape.find_counter("dust_core_rx_stat_total");
  ASSERT_NE(rx_stat, nullptr);
  EXPECT_GT(rx_stat->value, 0u);
  EXPECT_EQ(rx_stat->value, manager->stats_received());
  const obs::CounterSnapshot* offload_req =
      scrape.find_counter("dust_core_tx_offload_request_total");
  ASSERT_NE(offload_req, nullptr);
  EXPECT_GT(offload_req->value, 0u);
  const obs::CounterSnapshot* rx_capable =
      scrape.find_counter("dust_core_rx_offload_capable_total");
  ASSERT_NE(rx_capable, nullptr);
  EXPECT_EQ(rx_capable->value, 7u);  // one handshake per client

  // Transport drops: the congested kLow telemetry stream was shed.
  const obs::CounterSnapshot* dropped =
      scrape.find_counter("dust_sim_transport_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->value, 0u);
  const obs::CounterSnapshot* dropped_congestion =
      scrape.find_counter("dust_sim_transport_dropped_congestion_total");
  ASSERT_NE(dropped_congestion, nullptr);
  EXPECT_GT(dropped_congestion->value, 0u);

  // Telemetry ingestion.
  const obs::CounterSnapshot* samples =
      scrape.find_counter("dust_telemetry_agent_samples_total");
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value, 5u);
  const obs::CounterSnapshot* appends =
      scrape.find_counter("dust_telemetry_tsdb_appends_total");
  ASSERT_NE(appends, nullptr);
  EXPECT_EQ(appends->value, 15u);  // 3 series per agent sample

  // Solver layer fed the placement cycles.
  const obs::CounterSnapshot* solves =
      scrape.find_counter("dust_solver_solves_total");
  ASSERT_NE(solves, nullptr);
  EXPECT_GT(solves->value, 0u);

  // Spans: each placement cycle left a trace record with virtual timing.
  // (Protocol hops now record instant spans too, so the cycle span is no
  // longer necessarily last — find it.)
  ASSERT_FALSE(scrape.spans.empty());
  const obs::SpanRecord* cycle_span = nullptr;
  for (const obs::SpanRecord& span : scrape.spans)
    if (span.name == "dust_core_placement_cycle") cycle_span = &span;
  ASSERT_NE(cycle_span, nullptr);
  EXPECT_GE(cycle_span->sim_start_ms, 0);

  // NMDB staleness was observed against sim time.
  const obs::NamedHistogramSnapshot* staleness =
      scrape.find_histogram("dust_core_nmdb_staleness_ms");
  ASSERT_NE(staleness, nullptr);
  EXPECT_GT(staleness->count, 0u);

  // The scrape exports cleanly in all three formats.
  std::ostringstream prom;
  obs::write_prometheus(scrape, prom);
  EXPECT_NE(prom.str().find("dust_core_placement_solve_ms_bucket"),
            std::string::npos);
  std::ostringstream jsonl;
  obs::write_jsonl(scrape, jsonl);
  EXPECT_NE(jsonl.str().find("dust_sim_transport_dropped_total"),
            std::string::npos);
}

TEST_F(Fig4Observability, DisabledInstrumentationRecordsNothing) {
  obs::set_enabled(false);
  sim.run_until(12000);
  obs::set_enabled(true);
  const obs::RegistrySnapshot scrape = obs::MetricRegistry::global().snapshot();
  const obs::CounterSnapshot* rx_stat =
      scrape.find_counter("dust_core_rx_stat_total");
  ASSERT_NE(rx_stat, nullptr);  // registered at construction...
  EXPECT_EQ(rx_stat->value, 0u);  // ...but never incremented while disabled
  const obs::NamedHistogramSnapshot* solve_ms =
      scrape.find_histogram("dust_core_placement_solve_ms");
  ASSERT_NE(solve_ms, nullptr);
  EXPECT_EQ(solve_ms->count, 0u);
}

}  // namespace
}  // namespace dust
