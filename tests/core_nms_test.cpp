#include "core/nms.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"

namespace dust::core {
namespace {

struct Fixture : ::testing::Test {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(1)};
  DustManager manager{sim, transport, make_nmdb(), ManagerConfig{}};
  telemetry::Tsdb db;
  telemetry::MetricId cpu =
      db.register_metric({"cpu", "%", telemetry::MetricKind::kGauge});
  NetworkMonitorService nms{manager};

  static Nmdb make_nmdb() {
    net::NetworkState state(graph::make_ring(4));
    state.set_node_utilization(0, 90.0);  // busy already
    state.set_node_utilization(1, 40.0);  // candidate
    state.set_node_utilization(2, 70.0);
    state.set_node_utilization(3, 70.0);
    state.set_monitoring_data_mb(0, 10.0);
    return Nmdb(std::move(state), Thresholds{});
  }

  telemetry::AlertRule overload_rule() {
    return {"cpu-overload", "cpu", telemetry::Comparison::kAbove, 80.0, 0};
  }
};

TEST_F(Fixture, WatchValidation) {
  EXPECT_THROW(nms.watch_node(0, nullptr, overload_rule()),
               std::invalid_argument);
  nms.watch_node(0, &db, overload_rule());
  EXPECT_EQ(nms.watched_count(), 1u);
  EXPECT_THROW(static_cast<void>(nms.state(5)), std::out_of_range);
}

TEST_F(Fixture, ManualTriggerRunsPlacement) {
  EXPECT_EQ(manager.placement_cycles(), 0u);
  nms.trigger_manual();
  EXPECT_EQ(manager.placement_cycles(), 1u);
  EXPECT_EQ(nms.triggers(), 1u);
  // Node 0 was already busy, so the cycle created an offload.
  EXPECT_GE(manager.active_offload_count(), 1u);
}

TEST_F(Fixture, FiringAlertTriggersPlacement) {
  nms.watch_node(0, &db, overload_rule());
  db.append(cpu, {1000, 50.0});
  EXPECT_EQ(nms.evaluate(1000), 0u);  // below threshold: no trigger
  EXPECT_EQ(manager.placement_cycles(), 0u);
  db.append(cpu, {2000, 95.0});
  nms.evaluate(2000);  // fires -> placement
  EXPECT_EQ(manager.placement_cycles(), 1u);
  EXPECT_EQ(nms.state(0), telemetry::AlertState::kFiring);
}

TEST_F(Fixture, SteadyFiringDoesNotRetrigger) {
  nms.watch_node(0, &db, overload_rule());
  db.append(cpu, {1000, 95.0});
  nms.evaluate(1000);
  ASSERT_EQ(manager.placement_cycles(), 1u);
  db.append(cpu, {2000, 96.0});
  nms.evaluate(2000);  // still firing, no new transition
  EXPECT_EQ(manager.placement_cycles(), 1u);
  // Recover, then breach again: a fresh Firing transition re-triggers.
  db.append(cpu, {3000, 10.0});
  nms.evaluate(3000);
  db.append(cpu, {4000, 95.0});
  nms.evaluate(4000);
  EXPECT_EQ(manager.placement_cycles(), 2u);
}

TEST_F(Fixture, MultipleWatchedNodesOneCyclePerEvaluate) {
  telemetry::Tsdb db2;
  const auto cpu2 =
      db2.register_metric({"cpu", "%", telemetry::MetricKind::kGauge});
  nms.watch_node(0, &db, overload_rule());
  nms.watch_node(2, &db2, overload_rule());
  db.append(cpu, {1000, 95.0});
  db2.append(cpu2, {1000, 95.0});
  nms.evaluate(1000);  // both fire; still just one placement cycle
  EXPECT_EQ(manager.placement_cycles(), 1u);
}

}  // namespace
}  // namespace dust::core
