#include "core/routes.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

net::NetworkState square_net() {
  // 0-1-3 and 0-2-3: two disjoint 2-hop routes from 0 to 3.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  net::NetworkState state(std::move(g));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net::LinkState{1000.0, 1.0});
  return state;
}

TEST(Routes, PrimaryAchievesTrmin) {
  net::NetworkState state = square_net();
  state.set_link(0, net::LinkState{1000.0, 0.5});  // make 0-1-3 slower
  state.set_monitoring_data_mb(0, 100.0);
  Assignment a{0, 3, 5.0, 0.0};
  // Trmin via 0-2-3: 0.1 + 0.1 = 0.2 s for 100 Mb.
  a.trmin_seconds = 0.2;
  const auto routes = resolve_routes(state, std::vector<Assignment>{a});
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].primary.nodes, (std::vector<graph::NodeId>{0, 2, 3}));
  EXPECT_NEAR(routes[0].primary_seconds, 0.2, 1e-12);
  EXPECT_NEAR(routes[0].primary_seconds, a.trmin_seconds, 1e-9);
}

TEST(Routes, BackupIsEdgeDisjoint) {
  net::NetworkState state = square_net();
  state.set_monitoring_data_mb(0, 100.0);
  Assignment a{0, 3, 5.0, 0.2};
  RouteOptions options;
  options.with_backup = true;
  const auto routes = resolve_routes(state, std::vector<Assignment>{a}, options);
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_TRUE(routes[0].has_backup());
  std::set<graph::EdgeId> primary(routes[0].primary.edges.begin(),
                                  routes[0].primary.edges.end());
  for (graph::EdgeId e : routes[0].backup.edges) EXPECT_EQ(primary.count(e), 0u);
  EXPECT_EQ(routes[0].backup.destination(), 3u);
  EXPECT_GT(routes[0].backup_seconds, 0.0);
}

TEST(Routes, NoBackupOnBridge) {
  // Path graph 0-1-2: only one route, no disjoint backup possible.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  net::NetworkState state(std::move(g));
  state.set_monitoring_data_mb(0, 10.0);
  Assignment a{0, 2, 1.0, 0.0};
  RouteOptions options;
  options.with_backup = true;
  const auto routes = resolve_routes(state, std::vector<Assignment>{a}, options);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_FALSE(routes[0].has_backup());
  EXPECT_EQ(routes[0].primary.hops(), 2u);
}

TEST(Routes, HopBoundRespected) {
  net::NetworkState state = square_net();
  state.set_monitoring_data_mb(0, 10.0);
  Assignment a{0, 3, 1.0, 0.0};
  RouteOptions options;
  options.max_hops = 1;
  const auto routes = resolve_routes(state, std::vector<Assignment>{a}, options);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0].primary.nodes.empty());  // unreachable in 1 hop
}

class RoutesSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: for real placements, every resolved primary route exists, stays
// within the hop bound, connects the right endpoints, and reproduces the
// assignment's Trmin cost.
TEST_P(RoutesSweep, ResolvedRoutesMatchPlacement) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions opt;
  opt.placement.max_hops = 6;
  opt.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  opt.allow_partial = true;
  const PlacementResult placement = OptimizationEngine(opt).run(nmdb);
  RouteOptions route_options;
  route_options.max_hops = 6;
  route_options.with_backup = true;
  const auto routes =
      resolve_routes(nmdb.network(), placement.assignments, route_options);
  ASSERT_EQ(routes.size(), placement.assignments.size());
  for (const ResolvedRoute& route : routes) {
    ASSERT_FALSE(route.primary.nodes.empty());
    EXPECT_EQ(route.primary.source(), route.assignment.from);
    EXPECT_EQ(route.primary.destination(), route.assignment.to);
    EXPECT_LE(route.primary.hops(), 6u);
    EXPECT_NEAR(route.primary_seconds, route.assignment.trmin_seconds,
                1e-9 * (1.0 + route.assignment.trmin_seconds));
    // Consecutive path nodes are really adjacent via the stated edge.
    for (std::size_t i = 0; i < route.primary.edges.size(); ++i) {
      const graph::Edge& edge =
          nmdb.network().graph().edge(route.primary.edges[i]);
      const graph::NodeId a = route.primary.nodes[i];
      const graph::NodeId b = route.primary.nodes[i + 1];
      EXPECT_TRUE((edge.a == a && edge.b == b) || (edge.a == b && edge.b == a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutesSweep, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dust::core
