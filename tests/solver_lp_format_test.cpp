#include "solver/lp_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dust::solver {
namespace {

std::string render(const LinearProgram& lp) {
  std::ostringstream os;
  write_lp_format(os, lp, "test");
  return os.str();
}

TEST(LpFormat, SectionsPresent) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 5, 2.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 3.0);
  const std::string out = render(lp);
  EXPECT_NE(out.find("Minimize"), std::string::npos);
  EXPECT_NE(out.find("Subject To"), std::string::npos);
  EXPECT_NE(out.find("Bounds"), std::string::npos);
  EXPECT_NE(out.find("End"), std::string::npos);
  EXPECT_NE(out.find("2 x0"), std::string::npos);
  EXPECT_NE(out.find("c0: x0 <= 3"), std::string::npos);
  EXPECT_NE(out.find("x0 <= 5"), std::string::npos);
}

TEST(LpFormat, NamedVariablesUsed) {
  LinearProgram lp;
  lp.add_variable(0, kInfinity, 1.0, false, "x_busy_dest");
  const std::string out = render(lp);
  EXPECT_NE(out.find("x_busy_dest"), std::string::npos);
  EXPECT_EQ(out.find("x0"), std::string::npos);
}

TEST(LpFormat, SensesRendered) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 0.5);
  lp.add_constraint({{x, 1.0}}, Sense::kEqual, 0.7);
  const std::string out = render(lp);
  EXPECT_NE(out.find("<= 1"), std::string::npos);
  EXPECT_NE(out.find(">= 0.5"), std::string::npos);
  EXPECT_NE(out.find("= 0.7"), std::string::npos);
}

TEST(LpFormat, NegativeCoefficientsAndSigns) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1.5);
  const auto y = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 2.0}, {y, -3.0}}, Sense::kLessEqual, 4.0);
  const std::string out = render(lp);
  EXPECT_NE(out.find("- 1.5 x0"), std::string::npos);
  EXPECT_NE(out.find("2 x0 - 3 x1"), std::string::npos);
}

TEST(LpFormat, FreeAndFixedBounds) {
  LinearProgram lp;
  lp.add_variable(-kInfinity, kInfinity, 1.0);  // free
  lp.add_variable(4.0, 4.0, 1.0);               // fixed
  lp.add_variable(-kInfinity, 7.0, 1.0);        // upper only
  const std::string out = render(lp);
  EXPECT_NE(out.find("x0 free"), std::string::npos);
  EXPECT_NE(out.find("x1 = 4"), std::string::npos);
  EXPECT_NE(out.find("-inf <= x2 <= 7"), std::string::npos);
}

TEST(LpFormat, IntegerSection) {
  LinearProgram lp;
  lp.add_variable(0, 10, 1.0, /*integer=*/true);
  lp.add_variable(0, 10, 1.0, /*integer=*/false);
  const std::string out = render(lp);
  const std::size_t general = out.find("General");
  ASSERT_NE(general, std::string::npos);
  EXPECT_NE(out.find("x0", general), std::string::npos);
}

TEST(LpFormat, NoIntegerSectionWhenPureLp) {
  LinearProgram lp;
  lp.add_variable(0, 10, 1.0);
  EXPECT_EQ(render(lp).find("General"), std::string::npos);
}

}  // namespace
}  // namespace dust::solver
