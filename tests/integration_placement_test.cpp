// Cross-module integration on the paper's evaluation topology (4-k fat-tree):
// random scenarios through NMDB -> placement -> optimizer/heuristic, checking
// the relationships the evaluation section relies on.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "core/zones.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

Nmdb scenario(std::uint64_t seed, std::uint32_t k = 4) {
  util::Rng rng(seed);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  return Nmdb(std::move(state), Thresholds{});
}

class ScenarioSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Fig. 7's premise: when ΣCs <= ΣCd and the hop bound is generous, the
// optimization is feasible; when ΣCs > ΣCd it cannot be.
TEST_P(ScenarioSweep, FeasibilityMatchesCapacityBalance) {
  Nmdb nmdb = scenario(GetParam());
  OptimizerOptions options;
  options.placement.max_hops = 8;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  if (nmdb.total_excess() <= nmdb.total_spare()) {
    EXPECT_TRUE(r.optimal());
  } else {
    EXPECT_EQ(r.status, solver::Status::kInfeasible);
  }
}

// Fig. 8/10's premise: tightening max-hop never improves (and usually
// worsens) the objective, because it removes routes.
TEST_P(ScenarioSweep, ObjectiveMonotoneInMaxHop) {
  Nmdb nmdb = scenario(GetParam() ^ 0x11);
  double previous = -1.0;
  for (std::uint32_t hops : {8u, 6u, 4u, 2u}) {
    OptimizerOptions options;
    options.placement.max_hops = hops;
    options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    const PlacementResult r = OptimizationEngine(options).run(nmdb);
    if (!r.optimal()) break;  // at some point routes run out — fine
    if (previous >= 0) {
      EXPECT_GE(r.objective, previous - 1e-9);
    }
    previous = r.objective;
  }
}

// Fig. 9's premise: heuristic success is a subset of optimization success.
TEST_P(ScenarioSweep, HeuristicSuccessImpliesOptimizationSuccess) {
  Nmdb nmdb = scenario(GetParam() ^ 0x22);
  const HeuristicResult h = HeuristicEngine().run(nmdb);
  if (!h.complete() || h.busy_count == 0) GTEST_SKIP();
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  EXPECT_TRUE(r.optimal());
}

// The heuristic is strictly cheaper to run than the enumerating optimizer.
TEST_P(ScenarioSweep, HeuristicFasterThanEnumeratingOptimizer) {
  Nmdb nmdb = scenario(GetParam() ^ 0x33, 8);
  const HeuristicResult h = HeuristicEngine().run(nmdb);
  OptimizerOptions options;
  options.placement.max_hops = 4;  // keep the test quick
  const PlacementResult r = OptimizationEngine(options).run(nmdb);
  if (h.busy_count == 0) GTEST_SKIP();
  EXPECT_LT(h.solve_seconds, r.build_seconds + r.solve_seconds);
}

// Zoned optimization (paper's ≤80-node-zone recommendation) completes and
// never does better than the global optimum.
TEST_P(ScenarioSweep, ZonedVersusGlobal) {
  Nmdb nmdb = scenario(GetParam() ^ 0x44);
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementResult global = OptimizationEngine(options).run(nmdb);
  const ZonedResult zoned = optimize_by_zones(nmdb, 10, options);
  if (!global.optimal() || zoned.unplaced > 1e-9) GTEST_SKIP();
  EXPECT_GE(zoned.objective, global.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

// Δ_io sanity (Eq. 5): threshold sets with Δ_io >= 2 produce far fewer
// infeasible instances than Δ_io < 1 across a batch of random scenarios.
TEST(DeltaIo, HigherDeltaReducesInfeasibleRate) {
  Thresholds generous;  // Δ = (60-10)/(100-80) = 2.5
  Thresholds stingy;    // Δ = (30-10)/(100-60) = 0.5
  stingy.c_max = 60.0;
  stingy.co_max = 30.0;
  EXPECT_GT(generous.delta_io(), 2.0);
  EXPECT_LT(stingy.delta_io(), 1.0);

  auto infeasible_count = [](const Thresholds& thresholds) {
    int infeasible = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      util::Rng rng(seed * 7 + 1);
      net::NetworkState state = net::make_random_state(
          graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{},
          rng);
      Nmdb nmdb(std::move(state), thresholds);
      OptimizerOptions options;
      options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
      const PlacementResult r = OptimizationEngine(options).run(nmdb);
      if (!r.optimal()) ++infeasible;
    }
    return infeasible;
  };
  EXPECT_LT(infeasible_count(generous), infeasible_count(stingy));
}

}  // namespace
}  // namespace dust::core
