// The fleet snapshot codec and aggregator (DESIGN.md §15): delta encoding
// against acked baselines, the shed-reply ack protocol, the hot-tick clean
// path, fleet merge/reject semantics, node-labelled queries, cross-process
// trace stitching, and decoder robustness (every truncation rejected, bit
// flips never crash — the payload has no CRC of its own; the wire frame
// carrying it does).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/aggregator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace dust::obs {
namespace {

/// Encode + decode, asserting both directions succeed.
SnapshotDelta roundtrip(SnapshotEncoder& encoder, std::int64_t now_ms,
                        std::vector<std::uint8_t>& buffer) {
  EXPECT_TRUE(encoder.encode(now_ms, buffer));
  SnapshotDelta delta;
  EXPECT_TRUE(decode_snapshot(buffer.data(), buffer.size(), delta));
  return delta;
}

TEST(SnapshotCodec, FullSnapshotRoundTripsEveryMetricKind) {
  MetricRegistry registry;
  registry.counter("ticks_total").inc(7);
  registry.gauge("depth").set(3.25);
  Histogram& hist = registry.histogram("latency_ms");
  hist.observe(1.0);
  hist.observe(64.0);
  record_instant(registry, "work", "node-x", {}, 500);

  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;
  const SnapshotDelta delta = roundtrip(encoder, 1234, buffer);

  EXPECT_EQ(delta.seq, 1u);
  EXPECT_EQ(delta.base_seq, 0u);
  EXPECT_TRUE(delta.full);
  EXPECT_EQ(delta.source_now_ms, 1234);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].delta, 7u);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 3.25);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count_delta, 2u);
  EXPECT_EQ(delta.histograms[0].sum_delta, 65.0);
  ASSERT_EQ(delta.spans.size(), 1u);
  EXPECT_EQ(delta.spans[0].name, "work");
  EXPECT_EQ(delta.spans[0].track, "node-x");
  // Every emitted metric carries its definition in a full snapshot.
  EXPECT_EQ(delta.defs.size(), 3u);
}

TEST(SnapshotCodec, CleanRegistryEncodesNothingAndLeavesBufferAlone) {
  MetricRegistry registry;
  registry.counter("ticks_total");  // registered but never touched
  registry.gauge("depth");
  SnapshotEncoder encoder(registry);

  std::vector<std::uint8_t> buffer = {0xAA, 0xBB};
  EXPECT_FALSE(encoder.encode(0, buffer));
  // The hot-tick contract: no frame, no buffer churn, no seq burn.
  EXPECT_EQ(buffer, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(encoder.last_seq(), 0u);

  // After a change is encoded and acked, the registry reads clean again.
  registry.counter("ticks_total").inc();
  EXPECT_TRUE(encoder.encode(0, buffer));
  encoder.ack(encoder.last_seq());
  buffer = {0xCC};
  EXPECT_FALSE(encoder.encode(0, buffer));
  EXPECT_EQ(buffer, (std::vector<std::uint8_t>{0xCC}));
}

TEST(SnapshotCodec, UnackedDeltasAreCumulativeNeverDoubleApplied) {
  MetricRegistry registry;
  Counter& ticks = registry.counter("ticks_total");
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;

  ticks.inc(5);
  const SnapshotDelta first = roundtrip(encoder, 0, buffer);
  EXPECT_EQ(first.counters[0].delta, 5u);

  // The reply carrying `first` was shed: no ack arrives. More churn, then a
  // re-encode — the delta must restate everything since the *acked*
  // baseline (zero), not since the unacked attempt.
  ticks.inc(3);
  const SnapshotDelta second = roundtrip(encoder, 0, buffer);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(second.base_seq, 0u);
  EXPECT_TRUE(second.full);
  EXPECT_EQ(second.counters[0].delta, 8u);

  // Applying only the surviving snapshot yields the true total.
  Aggregator aggregator;
  EXPECT_EQ(aggregator.apply("n", second, 0),
            Aggregator::ApplyResult::kApplied);
  EXPECT_EQ(aggregator.counter_value("n", "ticks_total"), 8u);

  // Ack promotes the baseline: the next delta carries only new movement.
  encoder.ack(second.seq);
  ticks.inc(2);
  const SnapshotDelta third = roundtrip(encoder, 0, buffer);
  EXPECT_EQ(third.base_seq, second.seq);
  EXPECT_FALSE(third.full);
  EXPECT_EQ(third.counters[0].delta, 2u);
  EXPECT_TRUE(third.defs.empty()) << "defs were acked, ids suffice";
  EXPECT_EQ(aggregator.apply("n", third, 0),
            Aggregator::ApplyResult::kApplied);
  EXPECT_EQ(aggregator.counter_value("n", "ticks_total"), 10u);
}

TEST(SnapshotCodec, StaleAndUnknownAcksAreIgnored) {
  MetricRegistry registry;
  Counter& ticks = registry.counter("ticks_total");
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;

  ticks.inc();
  roundtrip(encoder, 0, buffer);          // seq 1
  encoder.ack(7);                         // never sent: ignored
  encoder.ack(0);                         // zero: ignored
  ticks.inc();
  const SnapshotDelta delta = roundtrip(encoder, 0, buffer);  // seq 2
  EXPECT_TRUE(delta.full) << "no valid ack, baseline must still be zero";
  EXPECT_EQ(delta.counters[0].delta, 2u);
  encoder.ack(1);  // stale (seq_ is already 2): ignored
  ticks.inc();
  EXPECT_TRUE(roundtrip(encoder, 0, buffer).full);
}

TEST(SnapshotAggregator, BaselineMismatchRejectsAndFullRecovers) {
  MetricRegistry registry;
  Counter& ticks = registry.counter("ticks_total");
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;
  Aggregator aggregator;

  ticks.inc(4);
  const SnapshotDelta full = roundtrip(encoder, 0, buffer);
  ASSERT_EQ(aggregator.apply("n", full, 100), Aggregator::ApplyResult::kApplied);
  encoder.ack(full.seq);

  // A delta diffed against seq 1 reaches an aggregator that (say, after a
  // restart) never applied it: reject, nothing double-counted.
  Aggregator restarted;
  ticks.inc(1);
  const SnapshotDelta delta = roundtrip(encoder, 0, buffer);
  EXPECT_EQ(delta.base_seq, full.seq);
  EXPECT_EQ(restarted.apply("n", delta, 200),
            Aggregator::ApplyResult::kRejected);
  EXPECT_EQ(restarted.counter_value("n", "ticks_total"), 0u);
  const FleetNodeStatus* status = restarted.status("n");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->snapshots_rejected, 1u);

  // Recovery: the scraper requests a full snapshot.
  encoder.reset();
  const SnapshotDelta refull = roundtrip(encoder, 0, buffer);
  EXPECT_TRUE(refull.full);
  EXPECT_EQ(restarted.apply("n", refull, 300),
            Aggregator::ApplyResult::kApplied);
  EXPECT_EQ(restarted.counter_value("n", "ticks_total"), 5u);
}

TEST(SnapshotAggregator, DeltaReferencingUnknownIdIsRejected) {
  SnapshotDelta delta;
  delta.seq = 5;
  delta.base_seq = 0;
  delta.full = true;
  delta.counters.push_back({42, 1});  // id 42 was never defined
  Aggregator aggregator;
  EXPECT_EQ(aggregator.apply("n", delta, 0),
            Aggregator::ApplyResult::kRejected);
}

TEST(SnapshotAggregator, FleetQueriesMergeAcrossNodes) {
  Aggregator aggregator;
  std::vector<std::uint8_t> buffer;
  const auto feed = [&](const std::string& node, std::uint64_t ticks,
                        double depth, double latency) {
    MetricRegistry registry;
    registry.counter("ticks_total").inc(ticks);
    registry.gauge("depth").set(depth);
    registry.histogram("latency_ms").observe(latency);
    SnapshotEncoder encoder(registry);
    const SnapshotDelta delta = roundtrip(encoder, 0, buffer);
    ASSERT_EQ(aggregator.apply(node, delta, 1000),
              Aggregator::ApplyResult::kApplied);
  };
  feed("a", 10, 2.0, 1.0);
  feed("b", 32, 5.0, 900.0);

  EXPECT_EQ(aggregator.counter_value("a", "ticks_total"), 10u);
  EXPECT_EQ(aggregator.fleet_counter_total("ticks_total"), 42u);
  EXPECT_EQ(aggregator.fleet_gauge_sum("depth"), 7.0);
  EXPECT_EQ(aggregator.fleet_gauge_max("depth"), 5.0);
  const HistogramSnapshot merged = aggregator.fleet_histogram("latency_ms");
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.sum, 901.0);
  EXPECT_GT(merged.quantile(0.99), 100.0) << "node b's tail must survive";

  EXPECT_EQ(aggregator.staleness_ms("a", 1500), 500);
  EXPECT_EQ(aggregator.staleness_ms("never-seen", 1500), -1);

  // The node label lands on every exported series.
  std::ostringstream prom;
  aggregator.write_prometheus(prom);
  EXPECT_NE(prom.str().find("ticks_total{node=\"a\"} 10"), std::string::npos);
  EXPECT_NE(prom.str().find("ticks_total{node=\"b\"} 32"), std::string::npos);
}

TEST(SnapshotAggregator, StitchesOneTraceAcrossProcesses) {
  // Two registries model two processes. The root span lives in "mgr"; the
  // child — parented on the root's context — is recorded in "worker". Only
  // after both snapshots merge does the aggregator hold the whole chain.
  MetricRegistry mgr_registry;
  MetricRegistry worker_registry;
  const TraceContext root =
      record_instant(mgr_registry, "solve", "manager", {}, 10);
  record_instant(worker_registry, "ingest", "collector", root, 20);

  Aggregator aggregator;
  std::vector<std::uint8_t> buffer;
  SnapshotEncoder mgr_encoder(mgr_registry);
  SnapshotEncoder worker_encoder(worker_registry);
  ASSERT_EQ(aggregator.apply("mgr", roundtrip(mgr_encoder, 0, buffer), 0),
            Aggregator::ApplyResult::kApplied);
  ASSERT_EQ(
      aggregator.apply("worker", roundtrip(worker_encoder, 0, buffer), 0),
      Aggregator::ApplyResult::kApplied);

  const std::vector<TraceTree> traces =
      assemble_traces(aggregator.trace_snapshot());
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].spans.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, root.trace_id);
  EXPECT_EQ(traces[0].chain(), "solve>ingest");
  // Tracks carry the node prefix so Perfetto shows one lane per process.
  EXPECT_EQ(traces[0].spans[0].track, "mgr/manager");
  EXPECT_EQ(traces[0].spans[1].track, "worker/collector");
}

TEST(SnapshotAggregator, SpanDedupSurvivesFullResync) {
  MetricRegistry registry;
  record_instant(registry, "once", "t", {}, 1);
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;
  Aggregator aggregator;
  ASSERT_EQ(aggregator.apply("n", roundtrip(encoder, 0, buffer), 0),
            Aggregator::ApplyResult::kApplied);
  EXPECT_EQ(aggregator.span_count(), 1u);
  // The ack was lost; the responder resets and re-sends everything. The
  // span stream must not duplicate.
  encoder.reset();
  ASSERT_EQ(aggregator.apply("n", roundtrip(encoder, 0, buffer), 0),
            Aggregator::ApplyResult::kApplied);
  EXPECT_EQ(aggregator.span_count(), 1u);
}

TEST(SnapshotAggregator, IngestLocalMirrorsTheRemotePath) {
  MetricRegistry registry;
  registry.counter("ticks_total").inc(3);
  Aggregator aggregator;
  aggregator.ingest_local("me", registry, 50);
  EXPECT_EQ(aggregator.counter_value("me", "ticks_total"), 3u);
  // Nothing changed: the second ingest is a no-op, not a new snapshot.
  const std::uint64_t seq = aggregator.status("me")->applied_seq;
  aggregator.ingest_local("me", registry, 60);
  EXPECT_EQ(aggregator.status("me")->applied_seq, seq);
  registry.counter("ticks_total").inc();
  aggregator.ingest_local("me", registry, 70);
  EXPECT_EQ(aggregator.counter_value("me", "ticks_total"), 4u);
  EXPECT_GT(aggregator.status("me")->applied_seq, seq);
}

TEST(SnapshotAggregator, WriteTopRendersEverySection) {
  Aggregator aggregator;
  MetricRegistry registry;
  registry.counter("ticks_total").inc(9);
  registry.gauge("depth").set(1.0);
  registry.histogram("latency_ms").observe(2.0);
  aggregator.ingest_local("node-z", registry, 100);
  std::ostringstream out;
  aggregator.write_top(out, 150);
  const std::string text = out.str();
  EXPECT_NE(text.find("node-z"), std::string::npos);
  EXPECT_NE(text.find("ticks_total"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
  EXPECT_NE(text.find("latency_ms"), std::string::npos);
}

TEST(SnapshotFuzz, EveryTruncationIsRejected) {
  MetricRegistry registry;
  registry.counter("a_total").inc(3);
  registry.gauge("g").set(2.5);
  registry.histogram("h").observe(7.0);
  record_instant(registry, "s", "t", {}, 5);
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(encoder.encode(0, buffer));

  SnapshotDelta delta;
  for (std::size_t len = 0; len < buffer.size(); ++len)
    EXPECT_FALSE(decode_snapshot(buffer.data(), len, delta))
        << "decoder accepted a " << len << "-byte prefix of "
        << buffer.size();
}

TEST(SnapshotFuzz, BitFlipsNeverCrashAndStructuralDamageIsRejected) {
  MetricRegistry registry;
  registry.counter("a_total").inc(3);
  registry.histogram("h").observe(7.0);
  SnapshotEncoder encoder(registry);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(encoder.encode(0, buffer));

  // No CRC at this layer (the wire frame has one), so a value-field flip
  // may legitimately decode; the property is memory safety plus rejection
  // of structural damage. Flips in the 4-byte header (version/flags/
  // reserved) must always reject: version != 1, unknown flag bits, and
  // nonzero reserved words are all structural.
  SnapshotDelta delta;
  for (std::size_t bit = 0; bit < buffer.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupt = buffer;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const bool ok = decode_snapshot(corrupt.data(), corrupt.size(), delta);
    if (bit < 32) EXPECT_FALSE(ok) << "header bit " << bit;
  }
}

TEST(SnapshotFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(0x0B5);
  SnapshotDelta delta;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> garbage(rng.below(2048));
    for (std::uint8_t& byte : garbage)
      byte = static_cast<std::uint8_t>(rng());
    decode_snapshot(garbage.data(), garbage.size(), delta);  // must not crash
  }
}

}  // namespace
}  // namespace dust::obs
