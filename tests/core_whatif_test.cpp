// apply_assignments (what-if operator) plus targeted coverage of manager
// bookkeeping paths and the transport registration-token semantics.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"

namespace dust::core {
namespace {

TEST(WhatIf, MovesUtilizationBothWays) {
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 40.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  const Assignment a{0, 1, 10.0, 0.1};
  apply_assignments(nmdb, std::vector<Assignment>{a});
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(0), 80.0);
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(1), 50.0);
}

TEST(WhatIf, PlatformFactorWeightsArrivingLoad) {
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 40.0);
  Nmdb nmdb(std::move(state), Thresholds{});
  nmdb.set_platform_factor(1, 4.0);  // destination is 4x as capable
  const Assignment a{0, 1, 10.0, 0.1};
  apply_assignments(nmdb, std::vector<Assignment>{a});
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(0), 80.0);
  EXPECT_DOUBLE_EQ(nmdb.network().node_utilization(1), 42.5);  // +10/4
}

class WhatIfSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Applying an exact optimal plan leaves no busy nodes and crosses no
// candidate over COmax — the whole point of the model.
TEST_P(WhatIfSweep, OptimalPlanClearsAllOverload) {
  util::Rng rng(GetParam());
  net::NetworkState state = net::make_random_state(
      graph::FatTree(4).graph(), net::LinkProfile{}, net::NodeLoadProfile{}, rng);
  Nmdb nmdb(std::move(state), Thresholds{});
  OptimizerOptions options;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  const PlacementResult result = OptimizationEngine(options).run(nmdb);
  if (!result.optimal()) GTEST_SKIP();
  const auto candidates_before = nmdb.candidate_nodes();
  apply_assignments(nmdb, result.assignments);
  for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
    EXPECT_LE(nmdb.network().node_utilization(v),
              nmdb.thresholds(v).c_max + 1e-6)
        << "node " << v << " still overloaded";
  for (graph::NodeId o : candidates_before)
    EXPECT_LE(nmdb.network().node_utilization(o),
              nmdb.thresholds(o).co_max + 1e-6)
        << "destination " << o << " overloaded by the plan";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhatIfSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- targeted manager paths ---

TEST(ManagerBookkeeping, RejectedAckDropsRelationship) {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 40.0);
  state.set_monitoring_data_mb(0, 10.0);
  DustManager manager(sim, transport, Nmdb(std::move(state), Thresholds{}),
                      ManagerConfig{});
  manager.run_placement_cycle();
  ASSERT_EQ(manager.active_offload_count(), 1u);
  const std::uint64_t request = manager.active_offloads()[0].request_id;
  // Busy client refuses.
  transport.send(client_endpoint(0), manager_endpoint(),
                 Message{OffloadAckMsg{request, 0, false}});
  sim.run();
  EXPECT_EQ(manager.active_offload_count(), 0u);
  EXPECT_EQ(manager.nmdb().role(1), NodeRole::kOffloadCandidate);  // unhosted
}

TEST(ManagerBookkeeping, TinyAssignmentsFiltered) {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 80.4);  // Cs = 0.4 < default 1.0 minimum
  state.set_node_utilization(1, 40.0);
  state.set_monitoring_data_mb(0, 10.0);
  DustManager manager(sim, transport, Nmdb(std::move(state), Thresholds{}),
                      ManagerConfig{});
  EXPECT_EQ(manager.run_placement_cycle(), 0u);
  EXPECT_EQ(manager.active_offload_count(), 0u);
}

TEST(ManagerBookkeeping, DuplicatePairNotRecreated) {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  net::NetworkState state(graph::make_star(1));
  state.set_node_utilization(0, 90.0);
  state.set_node_utilization(1, 40.0);
  state.set_monitoring_data_mb(0, 10.0);
  DustManager manager(sim, transport, Nmdb(std::move(state), Thresholds{}),
                      ManagerConfig{});
  EXPECT_EQ(manager.run_placement_cycle(), 1u);
  // Same NMDB state (no STAT update): the pair exists, nothing new created.
  EXPECT_EQ(manager.run_placement_cycle(), 0u);
  EXPECT_EQ(manager.active_offload_count(), 1u);
}

// --- transport token semantics ---

TEST(TransportTokens, StaleTokenCannotUnregisterSuccessor) {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  int first_hits = 0, second_hits = 0;
  const std::uint64_t first = transport.register_endpoint(
      "shared", [&first_hits](const sim::Envelope&) { ++first_hits; });
  transport.register_endpoint(
      "shared", [&second_hits](const sim::Envelope&) { ++second_hits; });
  transport.unregister_endpoint("shared", first);  // stale: must be a no-op
  EXPECT_TRUE(transport.has_endpoint("shared"));
  transport.send("x", "shared", 1);
  sim.run();
  EXPECT_EQ(first_hits, 0);
  EXPECT_EQ(second_hits, 1);
}

TEST(TransportTokens, CurrentTokenUnregisters) {
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  const std::uint64_t token =
      transport.register_endpoint("e", [](const sim::Envelope&) {});
  transport.unregister_endpoint("e", token);
  EXPECT_FALSE(transport.has_endpoint("e"));
}

TEST(TransportTokens, ReplacedClientKeepsEndpointAlive) {
  // The destructor-ordering hazard that motivated tokens: constructing a
  // replacement client before the old one is destroyed must leave the new
  // registration intact.
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));
  auto first = std::make_unique<DustClient>(sim, transport, 7, ClientConfig{},
                                            util::Rng(1));
  first = std::make_unique<DustClient>(sim, transport, 7, ClientConfig{},
                                       util::Rng(2));
  EXPECT_TRUE(transport.has_endpoint(client_endpoint(7)));
}

}  // namespace
}  // namespace dust::core
