// Forked federated-fleet integration (DESIGN.md §16): two shard daemons
// (examples/federation_daemon), a standby for shard 0, and two client
// daemons over real loopback TCP, on the shared demo fleet
// (federation/demo_fleet.hpp — 12-node ring, 6/6 split).
//
// The run must show all three acceptance properties end to end:
//
//   1. Cross-domain delegation: shard 0's local solve absorbs 8 % on node 1
//      and delegates the residual 7 % to shard 1, which grants node 6 —
//      exact amounts pinned bit-for-bit on both sides of the wire.
//   2. Failover: the shard-0 primary is killed mid-run; the standby detects
//      silence, re-binds the same port, bumps the epoch to 2, the clients
//      re-home (all 6 in-domain nodes STAT to the new primary), and the
//      placement is rebuilt bit-identically — zero placements lost.
//   3. Epoch fencing: no surviving shard accepts a stale-epoch frame, and
//      nobody loses a destination to a keepalive failure.
//
// These cover the federation invariants for this scenario: placements only
// onto offload-capable in-domain/granted nodes with positive spare (the
// amounts match the masked per-shard optimum), delegated amounts conserved
// across the wire (bit-equal on origin and granting shard), epoch
// monotonicity (takeover lands at exactly seen+1), and no delegation
// double-booking (each side ends with exactly its own half of the
// relationship).
#include <bit>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "daemon_harness.hpp"
#include "federation/demo_fleet.hpp"

#ifndef DUST_FEDERATION_DAEMON_BIN
#error "DUST_FEDERATION_DAEMON_BIN must point at the federation_daemon binary"
#endif
#ifndef DUST_CLIENT_DAEMON_BIN
#error "DUST_CLIENT_DAEMON_BIN must point at the client_daemon binary"
#endif

namespace dust {
namespace {

using daemon_harness::Daemon;
using daemon_harness::pick_port;
using daemon_harness::wall_ms;

/// (busy, destination, amount-bits, flavor).
using FedAssign = std::tuple<unsigned, unsigned, std::uint64_t, std::string>;

struct ShardReport {
  std::uint16_t port = 0;
  long reporting = -1;
  std::uint64_t started_epoch = 0;
  std::uint64_t takeover_epoch = 0;
  bool silent = false;
  std::set<FedAssign> assigns;        ///< every ASSIGN ever printed
  std::set<FedAssign> final_assigns;  ///< FINAL_ASSIGN set at exit
  std::uint64_t delegations_confirmed_live = 0;  ///< latest DELEGATION line
  std::map<std::string, long> fed;    ///< FED key=value fields
  long final_offloads = -1;
  long keepalive_failures = -1;
};

void parse_line(const std::string& line, ShardReport& report) {
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag == "PORT") {
    in >> report.port;
  } else if (tag == "REPORTING") {
    std::string field;
    in >> field;
    report.reporting = std::stol(field.substr(field.find('=') + 1));
  } else if (tag == "SILENT") {
    report.silent = true;
  } else if (tag == "STARTED" || tag == "TAKEOVER") {
    std::string field;
    while (in >> field)
      if (field.rfind("epoch=", 0) == 0)
        (tag == "STARTED" ? report.started_epoch : report.takeover_epoch) =
            std::stoull(field.substr(6));
  } else if (tag == "ASSIGN" || tag == "FINAL_ASSIGN") {
    unsigned busy = 0;
    unsigned destination = 0;
    std::string hex;
    std::string flavor;
    in >> busy >> destination >> hex >> flavor;
    (tag == "ASSIGN" ? report.assigns : report.final_assigns)
        .emplace(busy, destination, std::stoull(hex, nullptr, 16), flavor);
  } else if (tag == "DELEGATION") {
    std::string field;
    in >> field;
    report.delegations_confirmed_live =
        std::stoull(field.substr(field.find('=') + 1));
  } else if (tag == "FED" || tag == "FINAL") {
    std::string field;
    while (in >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const long value = std::stol(field.substr(eq + 1));
      if (tag == "FED") report.fed[key] = value;
      if (key == "offloads") report.final_offloads = value;
      if (key == "keepalive_failures") report.keepalive_failures = value;
    }
  }
}

/// Drain every remaining line (until EOF or deadline) into `report`.
void drain(Daemon& daemon, ShardReport& report, std::int64_t deadline_ms) {
  std::string line;
  while (daemon.read_line(line, deadline_ms)) parse_line(line, report);
}

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

TEST(FederationDaemon, FailoverMidRunReplacesPrimaryWithoutLosingPlacements) {
  // The demo fleet's expected placement (see federation/demo_fleet.hpp):
  // node 0 (excess 15) absorbs 8 locally on node 1 and delegates 7 to
  // shard 1's node 6.
  const FedAssign kLocal{0, 1, bits(8.0), "local"};
  const FedAssign kDelegatedOrigin{0, 6, bits(7.0), "ext-dest"};
  const FedAssign kDelegatedGrant{0, 6, bits(7.0), "ext-origin"};

  // The standby re-binds the primary's port, so both must agree on it
  // before launch — ephemeral ports won't do.
  const std::uint16_t port0 = pick_port();
  const std::uint16_t port1 = pick_port();
  ASSERT_NE(port0, 0);
  ASSERT_NE(port1, 0);
  const std::string hub0 = "127.0.0.1:" + std::to_string(port0);
  const std::string hub1 = "127.0.0.1:" + std::to_string(port1);

  // Clients load the shared scenario from a file, like any real fleet.
  const std::string scenario_path =
      std::string(::testing::TempDir()) + "federation_demo_fleet.scn";
  {
    std::ofstream out(scenario_path);
    ASSERT_TRUE(out.good());
    out << federation::demo_fleet_scenario_text();
  }

  const std::string run_ms = "16000";
  Daemon shard1(DUST_FEDERATION_DAEMON_BIN,
                {"--shard", "1", "--port", std::to_string(port1), "--peer",
                 "0=" + hub0, "--run-ms", run_ms, "--cycle-ms", "500",
                 "--digest-ms", "300"},
                true);
  Daemon primary0(DUST_FEDERATION_DAEMON_BIN,
                  {"--shard", "0", "--port", std::to_string(port0), "--peer",
                   "1=" + hub1, "--observer", "dust-fed-0-standby",
                   "--run-ms", run_ms, "--cycle-ms", "500", "--digest-ms",
                   "300", "--die-at-ms", "6000"},
                  true);
  Daemon standby0(DUST_FEDERATION_DAEMON_BIN,
                  {"--shard", "0", "--port", std::to_string(port0),
                   "--standby", hub0, "--peer", "1=" + hub1, "--run-ms",
                   run_ms, "--cycle-ms", "500", "--digest-ms", "300",
                   "--silence-ms", "1500"},
                  true);
  Daemon clients0(DUST_CLIENT_DAEMON_BIN,
                  {"--port", std::to_string(port0), "--nodes", "0,1,2,3,4,5",
                   "--scenario", scenario_path, "--manager",
                   "dust-manager-shard0", "--run-ms", run_ms},
                  false);
  Daemon clients1(DUST_CLIENT_DAEMON_BIN,
                  {"--port", std::to_string(port1), "--nodes",
                   "6,7,8,9,10,11", "--scenario", scenario_path, "--manager",
                   "dust-manager-shard1", "--run-ms", run_ms},
                  false);
  ASSERT_TRUE(shard1.running());
  ASSERT_TRUE(primary0.running());
  ASSERT_TRUE(standby0.running());
  ASSERT_TRUE(clients0.running());
  ASSERT_TRUE(clients1.running());

  const std::int64_t deadline = wall_ms() + 40000;

  // --- phase 1: the original primary delegates, then dies ----------------
  ShardReport primary0_report;
  drain(primary0, primary0_report, deadline);  // reads until its _Exit(7)
  EXPECT_EQ(primary0.wait_exit(), 7);
  EXPECT_EQ(primary0_report.started_epoch, 1u);
  EXPECT_EQ(primary0_report.reporting, 6);
  // Both halves of the placement existed before the crash — the delegated
  // 7 % crossed the domain cut and was confirmed by shard 1.
  EXPECT_TRUE(primary0_report.assigns.count(kLocal) == 1)
      << "local 8% on node 1 missing before the crash";
  EXPECT_TRUE(primary0_report.assigns.count(kDelegatedOrigin) == 1)
      << "delegated 7% toward node 6 missing before the crash";
  EXPECT_GE(primary0_report.delegations_confirmed_live, 1u);

  // --- phase 2: the standby takes over and the fleet re-converges --------
  ShardReport standby_report;
  drain(standby0, standby_report, deadline);
  EXPECT_EQ(standby0.wait_exit(), 0);
  EXPECT_TRUE(standby_report.silent) << "standby never saw primary silence";
  EXPECT_EQ(standby_report.port, port0) << "standby re-bound a different port";
  // Epoch monotonicity: the takeover lands at exactly seen+1.
  EXPECT_EQ(standby_report.takeover_epoch, 2u);
  // Client re-home: all 6 in-domain nodes STATed to the new primary (its
  // NMDB starts blank — only re-homed clients can fill it).
  EXPECT_EQ(standby_report.reporting, 6);
  // Zero placements lost: the rebuilt placement is bit-identical.
  const std::set<FedAssign> expected_shard0{kLocal, kDelegatedOrigin};
  EXPECT_EQ(standby_report.final_assigns, expected_shard0);
  EXPECT_EQ(standby_report.final_offloads, 2);
  EXPECT_EQ(standby_report.keepalive_failures, 0);
  EXPECT_EQ(standby_report.fed["takeovers"], 1);
  EXPECT_EQ(standby_report.fed["epoch"], 2);
  EXPECT_GE(standby_report.fed["confirmed"], 1);
  EXPECT_EQ(standby_report.fed["stale"], 0);

  // --- phase 3: the surviving peer granted both epochs, fenced cleanly ---
  ShardReport shard1_report;
  drain(shard1, shard1_report, deadline);
  EXPECT_EQ(shard1.wait_exit(), 0);
  EXPECT_EQ(shard1_report.reporting, 6);
  // The grant existed under epoch 1, was dropped on the epoch-2 handoff,
  // and re-granted to the new primary — amount bit-equal both times.
  EXPECT_TRUE(shard1_report.assigns.count(kDelegatedGrant) == 1);
  EXPECT_EQ(shard1_report.final_assigns,
            std::set<FedAssign>{kDelegatedGrant});
  EXPECT_EQ(shard1_report.final_offloads, 1);
  EXPECT_GE(shard1_report.fed["granted"], 2);
  EXPECT_EQ(shard1_report.fed["rejected"], 0);
  // No stale-epoch frame was ever accepted; none even arrived at shard 1
  // (the dead primary stopped talking, and its successor fenced upward).
  EXPECT_EQ(shard1_report.fed["stale"], 0);
  EXPECT_EQ(shard1_report.keepalive_failures, 0);
}

}  // namespace
}  // namespace dust
