// Keepalive flapping, hysteresis, and Nmdb-staleness behavior
// (DESIGN.md §14, satellite of the byzantine attack axis):
//   - keepalive_miss_threshold > 1 forgives short partitions that historical
//     declare-on-first-miss would have turned into replica substitutions;
//   - a genuinely dead destination still gets replaced;
//   - an oscillating (flapping) destination must not thrash replica
//     substitution once trust weighting excludes it;
//   - the watchdog's trust-collapse rule fires on the distrusted-node gauge.
#include <memory>

#include <gtest/gtest.h>

#include "check/attacks.hpp"
#include "check/runner.hpp"
#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "obs/watchdog.hpp"

namespace dust::core {
namespace {

struct Harness {
  sim::Simulator sim;
  sim::Transport transport{sim, util::Rng(7)};
  std::unique_ptr<DustManager> manager;
  std::vector<std::unique_ptr<DustClient>> clients;

  explicit Harness(std::uint32_t n, ManagerConfig config) {
    net::NetworkState state(graph::make_ring(n));
    for (graph::NodeId v = 0; v < n; ++v) {
      state.set_node_utilization(v, 70.0);
      state.set_monitoring_data_mb(v, 10.0);
    }
    manager = std::make_unique<DustManager>(
        sim, transport, Nmdb(std::move(state), Thresholds{}), config);
    for (graph::NodeId v = 0; v < n; ++v) {
      clients.push_back(std::make_unique<DustClient>(
          sim, transport, v, ClientConfig{.keepalive_interval_ms = 1000},
          util::Rng(100 + v)));
      clients.back()->set_reported_state(70.0, 10.0, 10);
    }
  }

  static ManagerConfig fast_config() {
    ManagerConfig config;
    config.update_interval_ms = 1000;
    config.placement_period_ms = 5000;
    config.keepalive_timeout_ms = 4000;
    config.keepalive_check_period_ms = 1000;
    return config;
  }

  void start_all() {
    for (auto& client : clients) client->start();
    manager->start();
  }

  void make_offload_setup() {
    clients[0]->set_reported_state(90.0, 10.0, 10);  // busy
    clients[1]->set_reported_state(40.0, 5.0, 10);   // candidate (nearest)
    clients[2]->set_reported_state(40.0, 5.0, 10);   // replica candidate
  }
};

TEST(KeepaliveHysteresis, ShortPartitionIsForgiven) {
  ManagerConfig config = Harness::fast_config();
  config.keepalive_miss_threshold = 3;
  Harness h(5, config);
  h.start_all();
  h.make_offload_setup();
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const graph::NodeId first_dest = h.manager->active_offloads()[0].destination;

  // Partition the manager just past the keepalive timeout: the overdue
  // streak reaches at most 2 checks, then a fresh keepalive resets it.
  h.sim.schedule_at(12000,
                    [&] { h.transport.set_partitioned("dust-manager", true); });
  h.sim.schedule_at(15800, [&] {
    h.transport.set_partitioned("dust-manager", false);
  });
  h.sim.run_until(30000);
  EXPECT_EQ(h.manager->keepalive_failures(), 0u)
      << "hysteresis must forgive a partition shorter than "
         "miss_threshold consecutive overdue checks";
  EXPECT_EQ(h.clients[0]->reps_received(), 0u);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  EXPECT_EQ(h.manager->active_offloads()[0].destination, first_dest);
}

TEST(KeepaliveHysteresis, SustainedSilenceStillFails) {
  ManagerConfig config = Harness::fast_config();
  config.keepalive_miss_threshold = 3;
  Harness h(5, config);
  h.start_all();
  h.make_offload_setup();
  h.sim.run_until(10000);
  ASSERT_GE(h.manager->active_offload_count(), 1u);
  const graph::NodeId first_dest = h.manager->active_offloads()[0].destination;

  h.sim.schedule_at(12000,
                    [&] { h.clients[first_dest]->set_failed(true); });
  h.sim.run_until(30000);
  EXPECT_GE(h.manager->keepalive_failures(), 1u);
  const auto offloads = h.manager->active_offloads();
  ASSERT_GE(offloads.size(), 1u);
  EXPECT_NE(offloads[0].destination, first_dest);
}

TEST(KeepaliveHysteresis, DefaultThresholdKeepsHistoricalTiming) {
  // threshold 1 == declare on the first overdue check; the pre-existing
  // protocol tests pin the exact substitution timing, this pins the default.
  EXPECT_EQ(ManagerConfig{}.keepalive_miss_threshold, 1);
}

TEST(FlapThrash, TrustWeightingStopsReplicaThrash) {
  // A flapping destination oscillates between quarantined and re-announced.
  // Trust-blind, every up-transition invites the next placement cycle to
  // re-offload onto it — replica substitution thrashes. Trust-weighted, two
  // keepalive failures push trust to 0.36 < 0.5 and the flapper stays out.
  using check::AttackKind;
  using check::TopologyKind;
  const check::ScenarioSpec spec = check::make_attack_spec(
      AttackKind::kKeepaliveFlap, TopologyKind::kFatTree);
  const check::TrustComparison comparison =
      check::compare_trust_placement(spec);
  EXPECT_TRUE(comparison.trusted.passed())
      << comparison.trusted.violations.front().detail;
  // The blind manager keeps believing the flapper; the trusted one writes
  // it off after the second failure, so it stops failing keepalives.
  EXPECT_GE(comparison.blind.keepalive_failures, 2u);
  EXPECT_LE(comparison.trusted.keepalive_failures,
            comparison.blind.keepalive_failures);
  EXPECT_LT(comparison.trusted.min_trust, 0.5);
  // And the stable placement delivers more.
  EXPECT_GT(comparison.trusted.delivered_fraction(),
            comparison.blind.delivered_fraction());
}

TEST(TrustCollapseWatchdog, AlertsOnDistrustedNodes) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  registry.gauge("dust_core_distrusted_nodes").set(0.0);
  obs::WatchdogConfig config;
  config.distrusted_nodes_limit = 0.0;
  obs::Watchdog watchdog(registry, config);
  ASSERT_TRUE(watchdog.evaluate(0).empty());  // priming pass

  registry.gauge("dust_core_distrusted_nodes").set(2.0);
  const std::vector<obs::Alert> alerts = watchdog.evaluate(1000);
  bool fired = false;
  for (const obs::Alert& alert : alerts)
    if (alert.rule == "trust-collapse") {
      fired = true;
      EXPECT_DOUBLE_EQ(alert.value, 2.0);
    }
  EXPECT_TRUE(fired);

  // Disabled rule stays silent.
  obs::WatchdogConfig off;
  off.check_trust_collapse = false;
  obs::Watchdog silent(registry, off);
  silent.evaluate(0);
  for (const obs::Alert& alert : silent.evaluate(1000))
    EXPECT_NE(alert.rule, "trust-collapse");
}

}  // namespace
}  // namespace dust::core
