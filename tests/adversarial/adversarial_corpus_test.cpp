// Replayable repro corpus (tests/corpus/*.scn): every corpus file is an
// annotated dust::check scenario with a byzantine attack script. Each ctest
// run re-parses and re-runs every file, checking that
//   - the parse round-trips exactly (dump(parse(text)) == text),
//   - the run is deterministic (two runs, identical placement digests),
//   - the trust-weighted run holds every invariant, and
//   - trust weighting still beats trust-blind on the captured attack.
// Regenerate with DUST_REGEN_CORPUS=1 (writes into the source tree).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/attacks.hpp"
#include "check/runner.hpp"

namespace dust::check {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() { return fs::path(DUST_SOURCE_DIR) / "tests" / "corpus"; }

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  if (!fs::exists(corpus_dir())) return files;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus_dir()))
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, RegenerateWhenRequested) {
  if (std::getenv("DUST_REGEN_CORPUS") == nullptr)
    GTEST_SKIP() << "set DUST_REGEN_CORPUS=1 to rewrite tests/corpus/";
  fs::create_directories(corpus_dir());
  const struct {
    const char* name;
    AttackKind kind;
  } repros[] = {
      {"capacity_lie_fat_tree.scn", AttackKind::kCapacityLie},
      {"blackhole_fat_tree.scn", AttackKind::kBlackhole},
      {"keepalive_flap_fat_tree.scn", AttackKind::kKeepaliveFlap},
  };
  for (const auto& repro : repros) {
    const ScenarioSpec spec =
        make_attack_spec(repro.kind, TopologyKind::kFatTree);
    std::ofstream out(corpus_dir() / repro.name);
    out << "# repro: " << to_string(repro.kind)
        << " attack — trust-blind placement keeps feeding the attacker;\n"
           "# trust-weighted placement must detect and route around it.\n";
    dump_scenario(out, spec);
  }
}

TEST(Corpus, EveryFileReplaysDeterministically) {
  const std::vector<fs::path> files = corpus_files();
  ASSERT_FALSE(files.empty())
      << "tests/corpus is empty — run with DUST_REGEN_CORPUS=1 first";
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::string text = read_file(file);

    // Exact parse round-trip: everything after the leading free-comment
    // block must survive dump(parse(...)) bit-for-bit.
    std::istringstream in(text);
    const ScenarioSpec spec = parse_scenario_spec(in);
    const std::string round_tripped = dump_scenario(spec);
    EXPECT_NE(text.find(round_tripped), std::string::npos)
        << "dump(parse(file)) no longer matches the stored corpus file";
    ASSERT_FALSE(spec.attacks.empty()) << "corpus repro lost its attack";

    RunOptions options;
    options.trust_weighting = true;
    const RunReport first = run_scenario(spec, options);
    const RunReport second = run_scenario(spec, options);
    EXPECT_TRUE(first.passed()) << first.violations.front().detail;
    EXPECT_EQ(first.placement_digest, second.placement_digest)
        << "corpus replay is not deterministic";
    EXPECT_EQ(first.violations.size(), second.violations.size());

    // The captured attack must still be one trust weighting defeats.
    const TrustComparison comparison = compare_trust_placement(spec);
    EXPECT_GT(comparison.trusted.delivered_fraction(),
              comparison.blind.delivered_fraction());
  }
}

}  // namespace
}  // namespace dust::check
