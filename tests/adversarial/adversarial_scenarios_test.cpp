// Tentpole oracles for the byzantine attack axis (DESIGN.md §14):
//   O7  trust-weighted placement strictly improves delivered samples over
//       trust-blind under every attack kind, on fat-tree and random
//       topologies;
//   I7  a node proven byzantine for k consecutive cycles receives no new
//       offloads (checked inside run_scenario, asserted here via passed());
//   I8  trust-blind and trust-weighted runs are bit-identical (equal
//       placement digests) when no attack fires;
// plus a 100-seed generated adversarial sweep that must stay violation-free
// and a wall-clock-budgeted fuzz loop (DUST_FUZZ_MS) for the check-long
// target.
#include <chrono>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "check/attacks.hpp"
#include "check/runner.hpp"

namespace dust::check {
namespace {

struct O7Case {
  AttackKind kind;
  TopologyKind topology;
};

class TrustImprovement : public ::testing::TestWithParam<O7Case> {};

TEST_P(TrustImprovement, TrustWeightingStrictlyImprovesDelivery) {
  const O7Case param = GetParam();
  const ScenarioSpec spec = make_attack_spec(param.kind, param.topology);
  const TrustComparison comparison = compare_trust_placement(spec);

  // Both runs must be internally sound: the attack degrades delivery, it
  // must never corrupt the protocol or the placement invariants.
  EXPECT_TRUE(comparison.blind.passed())
      << comparison.blind.violations.front().detail;
  EXPECT_TRUE(comparison.trusted.passed())
      << comparison.trusted.violations.front().detail;

  // The attack must actually bite in the blind run...
  EXPECT_LT(comparison.blind.delivered_fraction(), 1.0);
  // ...and trust weighting must strictly recover delivery (O7).
  EXPECT_GT(comparison.trusted.delivered_fraction(),
            comparison.blind.delivered_fraction());
  EXPECT_TRUE(check_trust_improvement(comparison).empty());

  // The trusted run caught the attacker: its trust decayed below 1.
  EXPECT_LT(comparison.trusted.min_trust, 1.0);
  // The blind run never touches trust state.
  EXPECT_EQ(comparison.blind.trust_evictions, 0u);
  EXPECT_DOUBLE_EQ(comparison.blind.min_trust, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, TrustImprovement,
    ::testing::Values(
        O7Case{AttackKind::kCapacityLie, TopologyKind::kFatTree},
        O7Case{AttackKind::kCapacityLie, TopologyKind::kRandomRegular},
        O7Case{AttackKind::kBlackhole, TopologyKind::kFatTree},
        O7Case{AttackKind::kBlackhole, TopologyKind::kRandomRegular},
        O7Case{AttackKind::kKeepaliveFlap, TopologyKind::kFatTree},
        O7Case{AttackKind::kKeepaliveFlap, TopologyKind::kRandomRegular}),
    [](const ::testing::TestParamInfo<O7Case>& info) {
      std::string name = to_string(info.param.kind);
      name += "_";
      name += to_string(info.param.topology);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(TrustNeutrality, AttackFreeRunsAreBitIdentical) {
  // I8: on benign generated scenarios the trust machinery must be perfectly
  // invisible — same busy sets, same candidates, same assignments, same
  // objective bits, every cycle.
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    const ScenarioSpec spec = generate_scenario(seed);
    ASSERT_TRUE(spec.attacks.empty());
    const std::vector<Violation> violations = check_trust_neutrality(spec);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front().detail;
  }
}

TEST(TrustNeutrality, RejectsSpecsWithAttacks) {
  ScenarioSpec spec = generate_scenario(1);
  AttackScript attack;
  attack.node = 0;
  spec.attacks.push_back(attack);
  EXPECT_FALSE(check_trust_neutrality(spec).empty());
}

class AdversarialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversarialSweep, GeneratedAttackScenarioHoldsAllInvariants) {
  GeneratorOptions generator;
  generator.attack_events = 2;
  const ScenarioSpec spec = generate_scenario(GetParam(), generator);
  ASSERT_FALSE(spec.attacks.empty());
  RunOptions options;
  options.trust_weighting = true;
  const RunReport report = run_scenario(spec, options);
  EXPECT_TRUE(report.passed())
      << "seed " << GetParam() << ": " << report.violations.front().invariant
      << " — " << report.violations.front().detail;
}

// 100 seeded adversarial scenarios, zero I1-I8 violations (acceptance bar).
INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialSweep,
                         ::testing::Range<std::uint64_t>(1, 101));

TEST(AdversarialFuzz, BudgetedExploration) {
  // Wall-clock-budgeted deep fuzz for the check-long target: keeps drawing
  // fresh adversarial seeds until DUST_FUZZ_MS (default 2000 ms) runs out.
  std::int64_t budget_ms = 2000;
  if (const char* env = std::getenv("DUST_FUZZ_MS"); env != nullptr)
    budget_ms = std::strtoll(env, nullptr, 10);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t seed = 0x10000;
  std::size_t runs = 0;
  while (std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < budget_ms) {
    GeneratorOptions generator;
    generator.attack_events = 1 + (seed % 3);
    const ScenarioSpec spec = generate_scenario(seed, generator);
    RunOptions options;
    options.trust_weighting = (seed % 2) == 0;
    const RunReport report = run_scenario(spec, options);
    ASSERT_TRUE(report.passed())
        << "seed " << seed << ": " << report.violations.front().invariant
        << " — " << report.violations.front().detail;
    ++seed;
    ++runs;
  }
  EXPECT_GE(runs, 1u);
}

}  // namespace
}  // namespace dust::check
