// Generator portability pins for the attack axis:
//   - attack generation is additive: enabling attack_events must not perturb
//     any draw the benign generator already makes (loads, agents, churn,
//     faults, deaths stay bit-identical);
//   - dump -> parse_scenario_spec round-trips every field including the
//     attack script;
//   - a cross-seed golden file (tests/golden/adversarial_generator.golden)
//     pins the generator's exact output across toolchains and libstdc++
//     versions — the generator uses only dust::util::Rng primitives, never
//     std::uniform_*, so the stream is implementation-independent.
// Regenerate the golden with DUST_REGEN_GOLDEN=1 after intentional changes.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/scenario.hpp"

namespace dust::check {
namespace {

namespace fs = std::filesystem;

fs::path golden_path() {
  return fs::path(DUST_SOURCE_DIR) / "tests" / "golden" /
         "adversarial_generator.golden";
}

std::string golden_payload() {
  // Three seeds spanning both topologies, benign and adversarial.
  std::ostringstream out;
  for (std::uint64_t seed : {3ULL, 19ULL, 64ULL}) {
    GeneratorOptions adversarial;
    adversarial.attack_events = 2;
    out << dump_scenario(generate_scenario(seed));
    out << dump_scenario(generate_scenario(seed, adversarial));
  }
  return out.str();
}

TEST(AdversarialGenerator, AttackDrawsDoNotPerturbBenignFields) {
  for (std::uint64_t seed : {2ULL, 11ULL, 42ULL}) {
    GeneratorOptions adversarial;
    adversarial.attack_events = 3;
    const ScenarioSpec benign = generate_scenario(seed);
    const ScenarioSpec attacked = generate_scenario(seed, adversarial);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_TRUE(benign.attacks.empty());
    EXPECT_FALSE(attacked.attacks.empty());
    // Every pre-existing draw must be untouched by the trailing attack draws.
    EXPECT_EQ(benign.topology, attacked.topology);
    EXPECT_EQ(benign.node_count, attacked.node_count);
    EXPECT_EQ(benign.load, attacked.load);
    EXPECT_EQ(benign.data_mb, attacked.data_mb);
    EXPECT_EQ(benign.agents, attacked.agents);
    EXPECT_EQ(benign.capable, attacked.capable);
    EXPECT_EQ(benign.platform_factor, attacked.platform_factor);
    EXPECT_EQ(benign.churn.size(), attacked.churn.size());
    EXPECT_EQ(benign.deaths.size(), attacked.deaths.size());
    EXPECT_EQ(benign.faults.size(), attacked.faults.size());
    EXPECT_EQ(benign.duration_ms, attacked.duration_ms);
  }
}

TEST(AdversarialGenerator, GenerationIsDeterministic) {
  GeneratorOptions options;
  options.attack_events = 2;
  EXPECT_EQ(dump_scenario(generate_scenario(5, options)),
            dump_scenario(generate_scenario(5, options)));
}

TEST(AdversarialGenerator, DumpParseRoundTripsAttacks) {
  GeneratorOptions options;
  options.attack_events = 2;
  for (std::uint64_t seed : {4ULL, 13ULL, 77ULL}) {
    const ScenarioSpec spec = generate_scenario(seed, options);
    ASSERT_FALSE(spec.attacks.empty());
    std::istringstream in(dump_scenario(spec));
    const ScenarioSpec parsed = parse_scenario_spec(in);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_EQ(parsed.attacks.size(), spec.attacks.size());
    for (std::size_t i = 0; i < spec.attacks.size(); ++i) {
      EXPECT_EQ(parsed.attacks[i].at_ms, spec.attacks[i].at_ms);
      EXPECT_EQ(parsed.attacks[i].node, spec.attacks[i].node);
      EXPECT_EQ(parsed.attacks[i].kind, spec.attacks[i].kind);
      EXPECT_DOUBLE_EQ(parsed.attacks[i].magnitude, spec.attacks[i].magnitude);
      EXPECT_EQ(parsed.attacks[i].period_ms, spec.attacks[i].period_ms);
      EXPECT_EQ(parsed.attacks[i].down_ms, spec.attacks[i].down_ms);
    }
    EXPECT_EQ(dump_scenario(parsed), dump_scenario(spec));
  }
}

TEST(AdversarialGenerator, CrossSeedGoldenPin) {
  const std::string payload = golden_payload();
  if (std::getenv("DUST_REGEN_GOLDEN") != nullptr) {
    fs::create_directories(golden_path().parent_path());
    std::ofstream out(golden_path());
    out << payload;
    return;
  }
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — run once with DUST_REGEN_GOLDEN=1 to create it";
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_EQ(payload, stored.str())
      << "generator output drifted from the committed golden; if the drift "
         "is intentional regenerate with DUST_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace dust::check
